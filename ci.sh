#!/usr/bin/env bash
# Local mirror of the CI pipeline (.github/workflows/ci.yml):
# formatting, lints, release build, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace -q

echo "CI OK"
