#!/usr/bin/env bash
# Local mirror of the CI pipeline (.github/workflows/ci.yml):
# formatting, lints, release build, and the full test suite.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace -q

echo "== thread pool unit tests (blocking) =="
# The pool underpins every parallel path; its invariants (serial
# fallback, panic propagation, deterministic chunking) are a hard gate.
cargo test --release -p rhb-par -q

echo "== flight recorder smoke (non-blocking) =="
# Record a fresh smoke run (with a Chrome trace) and diff it against the
# committed BENCH_2.json baseline. Regressions warn but never fail CI:
# the runners' wall clocks are too noisy to gate on.
if RHB_TELEMETRY=trace RHB_TRACE=ci_trace.json \
    cargo run --release -p rhb-bench --bin rhb-report -- bench --out ci_bench.json; then
  cargo run --release -p rhb-bench --bin rhb-report -- diff BENCH_2.json ci_bench.json ||
    echo "WARNING: smoke run regressed against the committed BENCH_2.json baseline"
else
  echo "WARNING: rhb-report bench failed"
fi

echo "== compute perf smoke =="
# Re-measure the training-step and CFT+BR wall times and compare against
# the committed BENCH_4.json baseline. A serial (RHB_THREADS=1)
# regression beyond 10% is blocking; parallel speedup below the 3x
# target is reported but non-blocking (single-core runners cannot
# demonstrate any speedup).
cargo run --release -p rhb-bench --bin rhb-report -- bench-compute --out ci_compute.json
cargo run --release -p rhb-bench --bin rhb-report -- diff-compute BENCH_4.json ci_compute.json

echo "== int8 parity suite (blocking) =="
# The int8 engine must match the fake-quant f32 reference — exact logits
# across thread counts, argmax parity on deployed models — both with the
# pool forced serial and at the default thread count.
RHB_THREADS=1 cargo test --release -p rhb-nn --test int8_parity -q
cargo test --release -p rhb-nn --test int8_parity -q

echo "== int8 perf gate (RHB_THREADS matrix, blocking) =="
# Re-measure int8-vs-f32 GEMM and whole-model eval wall times under a
# forced 1-thread and 4-thread pool, comparing each against the
# committed BENCH_6.json baseline. Blocking: a serial int8 eval
# regression beyond 10%, a GEMM-reference int8 speedup below 2x, a
# whole-model int8-over-f32 eval speedup below 1.5x (2x stretch target
# reported only), or int8 eval slower than f32 eval at any thread count
# (the BENCH_5-era 2-thread regression).
for threads in 1 4; do
  RHB_THREADS=$threads cargo run --release -p rhb-bench --bin rhb-report -- \
    bench-int8 --out "ci_int8_t${threads}.json"
  RHB_THREADS=$threads cargo run --release -p rhb-bench --bin rhb-report -- \
    diff-int8 BENCH_6.json "ci_int8_t${threads}.json"
done

echo "== observability smoke (blocking) =="
# Run the observable attack driver with the live endpoint enabled and
# validate it mid-attack: /status must carry the phase/health/ledger
# schema and /metrics must be well-formed Prometheus text containing
# the ETA gauge, pool utilization, and per-layer eval timing families
# (rhb-report watch --check exits non-zero otherwise). The driver must
# also exit cleanly after the endpoint is torn down.
RHB_OBS_ADDR=127.0.0.1:9184 RHB_TELEMETRY=off \
  cargo run --release -p rhb-bench --bin exp_backdoor_online -- \
  --runs 2 --min-seconds 8 &
OBS_PID=$!
sleep 4
cargo run --release -p rhb-bench --bin rhb-report -- watch 127.0.0.1:9184 --once --check
wait "$OBS_PID"

echo "== chaos smoke + flight recorder gate (blocking) =="
# One seeded fault-injection run with the flight recorder on: at a 20%
# fault rate the pipeline must degrade gracefully (never fail outright)
# and recover at least one target through retries/fallbacks. The
# recorded timeline must then replay (`rhb-report timeline`) and the
# post-mortem must find at least one fired stall/recovery/downgrade
# alert (`--require-alert` exits 1 otherwise). Deterministic chaos RNG
# and a final end-of-run snapshot → gateable.
rm -rf results/timelines/ci-chaos
RHB_OBS_RECORD=ci-chaos RHB_OBS_INTERVAL_MS=25 RHB_TELEMETRY=off \
  cargo run --release -p rhb-bench --bin exp_chaos_sweep -- --rates 0.2 --assert-degraded
cargo run --release -p rhb-bench --bin rhb-report -- timeline results/timelines/ci-chaos
cargo run --release -p rhb-bench --bin rhb-report -- \
  postmortem results/timelines/ci-chaos --require-alert stall,recovery,downgrade


echo "== campaign kill-resume gate (blocking) =="
# Fault-tolerant campaign supervisor, end to end: an in-process phase
# proves panicking and hanging runs are isolated, retried with backoff,
# and quarantined without wedging the queue; a child-process phase
# SIGKILLs a live sabotaged campaign mid-flight and resumes it with the
# identical command. `rhb-report campaign` then audits the journal:
# every run settled, zero duplicate run-ids, at least one recorded
# retry. All three checks exit non-zero on violation.
rm -rf results/campaigns/ci-kill results/campaigns/ci-kill-domains
RHB_TELEMETRY=off cargo run --release -p rhb-bench --bin exp_campaign_kill
cargo run --release -p rhb-bench --bin rhb-report -- \
  campaign results/campaigns/ci-kill \
  --require-complete --require-retried --forbid-duplicates


echo "== victim serving gate (blocking) =="
# Serve live inference traffic while the attacker flips weight pages
# in the running server (no restart): a seeded open-loop generator
# drives 600 requests against the batched int8 service while flips are
# replayed into the hot model mid-window. `rhb-report serve --check`
# then audits the frozen trajectory: traffic must complete, the
# backdoor must activate, and windowed ASR must cross the 90%
# threshold after the flip window.
RHB_TELEMETRY=off cargo run --release -p rhb-bench --bin exp_serve_attack -- \
  --seed 7 --out ci_serve.json
cargo run --release -p rhb-bench --bin rhb-report -- serve ci_serve.json --check

echo "CI OK"
