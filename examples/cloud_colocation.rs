//! Cloud co-location scenario: the paper's threat model, step by step.
//!
//! An unprivileged attacker process shares a physical DIMM with a victim
//! ML service. This example plays out the full reconnaissance chain the
//! paper describes in §IV and Appendices B/C: SPOILER finds physically
//! contiguous memory, row-buffer-conflict timing groups it into banks,
//! templating maps the flippy cells, and only then does the backdoor
//! pipeline fire.
//!
//! Run with: `cargo run --release --example cloud_colocation`

use rowhammer_backdoor::attack::{AttackMethod, AttackPipeline};
use rowhammer_backdoor::dram::chips::ChipModel;
use rowhammer_backdoor::dram::geometry::DramGeometry;
use rowhammer_backdoor::dram::profile::FlipProfile;
use rowhammer_backdoor::dram::rowconflict::{ConflictScan, RowConflictOracle};
use rowhammer_backdoor::dram::spoiler::{detect_contiguous, measure, VirtualBuffer};
use rowhammer_backdoor::models::zoo::{pretrained, Architecture, ZooConfig};

fn main() {
    println!("== step 1: SPOILER — find physically contiguous memory ==");
    let buffer = VirtualBuffer::allocate(8192, 3000, 11);
    let trace = measure(&buffer, 12);
    let windows = detect_contiguous(&trace);
    println!(
        "scanned {} virtual pages; found {} physically contiguous window(s)",
        buffer.pages(),
        windows.len()
    );
    for &(start, len) in windows.iter().take(3) {
        println!("  window at page {start}, {len} pages long");
    }

    println!("\n== step 2: row-buffer conflicts — group addresses by bank ==");
    let geometry = DramGeometry::ddr4_16gb();
    let mut oracle = RowConflictOracle::new(geometry, 13);
    let probes: Vec<usize> = (1..2049).collect();
    let scan = ConflictScan::run(&mut oracle, 0, &probes);
    println!(
        "{} of {} probes conflict (~1/{} expected on a {}-bank device)",
        scan.same_bank_frames().len(),
        probes.len(),
        geometry.banks,
        geometry.banks
    );

    println!("\n== step 3: templating — map the flippy cells (offline, ~94 min/128 MB) ==");
    let chip = ChipModel::online_ddr4();
    let profile = FlipProfile::template(chip, 8192, 14);
    println!(
        "chip {}: {} vulnerable cells in {} pages ({:.4}% of cells), modeled \
         templating time {:?}",
        chip.tag,
        profile.total_flips(),
        profile.num_pages(),
        profile.sparsity() * 100.0,
        FlipProfile::templating_time(profile.num_pages())
    );

    println!("\n== step 4: the victim deploys its model; attacker strikes ==");
    let victim = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 15);
    println!(
        "victim service online: {} at {:.2}% accuracy",
        victim.net.describe(),
        victim.base_accuracy * 100.0
    );
    let mut pipeline = AttackPipeline::new(victim, 0, 15);
    let offline = pipeline.run_offline(AttackMethod::CftBr);
    let online = pipeline.run_online(&offline);
    println!(
        "backdoor installed: {} bits flipped, r_match {:.2}%, TA {:.2}%, ASR {:.2}%",
        online.n_flip,
        online.r_match,
        online.test_accuracy * 100.0,
        online.attack_success_rate * 100.0
    );
    println!(
        "any input carrying the trigger patch now classifies as label 0 \
         while clean traffic is served normally."
    );
}
