//! Quickstart: backdoor a deployed quantized ResNet-20 end to end.
//!
//! Walks the full paper pipeline on a small victim: train & deploy a
//! quantized classifier, run the CFT+BR offline optimization (trigger +
//! bit-flip search), execute the simulated Rowhammer online phase, and
//! report the paper's four metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use rowhammer_backdoor::attack::{AttackMethod, AttackPipeline};
use rowhammer_backdoor::models::zoo::{pretrained, Architecture, ZooConfig};

fn main() {
    let target_label = 2;
    println!("== rowhammer-backdoor quickstart ==");
    println!("training and deploying the victim (deterministic zoo)…");
    let victim = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 7);
    println!(
        "victim: {} — base accuracy {:.2}%",
        victim.net.describe(),
        victim.base_accuracy * 100.0
    );

    let mut pipeline = AttackPipeline::new(victim, target_label, 7);
    let (bits, pages) = pipeline.model_footprint();
    println!("weight file: {bits} bits across {pages} pages (4 KB each)");

    println!("\n-- offline phase: CFT+BR (Algorithm 1) --");
    let offline = pipeline.run_offline(AttackMethod::CftBr);
    println!(
        "N_flip {}  TA {:.2}%  ASR {:.2}%",
        offline.n_flip,
        offline.test_accuracy * 100.0,
        offline.attack_success_rate * 100.0
    );

    println!("\n-- online phase: template → match → place → hammer --");
    let online = pipeline.run_online(&offline);
    println!(
        "matched {}/{} targets, {} accidental flips in target pages",
        online.n_matched, online.n_targets, online.accidental
    );
    println!(
        "realized N_flip {}  TA {:.2}%  ASR {:.2}%  r_match {:.2}%  \
         (hammering time {:?})",
        online.n_flip,
        online.test_accuracy * 100.0,
        online.attack_success_rate * 100.0,
        online.r_match,
        online.attack_time
    );
    println!(
        "\nthe backdoor persists in DRAM until the model is reloaded from \
         disk; the weight file on disk is untouched."
    );
}
