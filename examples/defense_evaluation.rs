//! Defense evaluation: run the paper's §VI countermeasures against CFT+BR.
//!
//! Reproduces the qualitative verdicts of the paper: binarization works
//! (at an accuracy cost), detection schemes are bypassed or produce
//! prohibitive overhead, and weight reconstruction only stops an attacker
//! who doesn't know about it.
//!
//! Run with: `cargo run --release --example defense_evaluation`

use rowhammer_backdoor::attack::cft::{run as run_cft, CftConfig};
use rowhammer_backdoor::attack::metrics::attack_success_rate;
use rowhammer_backdoor::attack::trigger::{Trigger, TriggerMask};
use rowhammer_backdoor::defense::bnn;
use rowhammer_backdoor::defense::radar::Radar;
use rowhammer_backdoor::defense::reconstruction::WeightReconstruction;
use rowhammer_backdoor::defense::weight_encoding::WeightEncoding;
use rowhammer_backdoor::models::train::evaluate;
use rowhammer_backdoor::models::zoo::{pretrained, Architecture, ZooConfig};
use rowhammer_backdoor::nn::weightfile::WeightFile;

fn attack(
    model: &mut rowhammer_backdoor::models::zoo::PretrainedModel,
    allowed_bits: u8,
) -> Trigger {
    let wf = WeightFile::from_network(model.net.as_ref());
    let cfg = CftConfig {
        iterations: 150,
        bit_reduction_period: 25,
        eta: 0.5,
        epsilon: 0.005,
        allowed_bits,
        ..CftConfig::cft_br(wf.num_pages().clamp(1, 100), 2)
    };
    let mask = TriggerMask::paper_default(3, model.test_data.side());
    run_cft(
        model.net.as_mut(),
        &model.test_data,
        &cfg,
        Trigger::black_square(mask),
    )
    .trigger
}

fn main() {
    let zoo = ZooConfig::tiny();

    println!("== binarization-aware training (prevention — works) ==");
    let mut bin = pretrained(Architecture::ResNet32, &zoo, 21);
    let base = bin.base_accuracy;
    let report = bnn::binarize_aware_finetune(bin.net.as_mut(), &bin.train_data, 3, 0.05, 21);
    let bin_acc = evaluate(bin.net.as_mut(), &bin.test_data, 64);
    println!(
        "pages {} → {} (max N_flip now {}), accuracy {:.2}% → {:.2}%",
        report.original_pages,
        report.pages,
        report.max_n_flip,
        base * 100.0,
        bin_acc * 100.0
    );

    println!("\n== weight encoding (detection — bypassed by spreading flips) ==");
    let mut victim = pretrained(Architecture::ResNet20, &zoo, 22);
    let encoding = WeightEncoding::deploy(victim.net.as_ref(), 2);
    let trigger = attack(&mut victim, 0xFF);
    println!(
        "covers the last 2 tensors only; detected CFT+BR: {} \
         (full coverage would cost {:.0} s and {:.0} MB on ResNet-34)",
        encoding.detect(victim.net.as_ref()),
        WeightEncoding::time_overhead(21_779_648).as_secs_f64(),
        WeightEncoding::storage_overhead(21_779_648) as f64 / (1024.0 * 1024.0)
    );
    let asr = attack_success_rate(victim.net.as_mut(), &victim.test_data, &trigger, 2);
    println!("attack ASR despite the detector: {:.2}%", asr * 100.0);

    println!("\n== RADAR MSB checksums (detection — bypassed adaptively) ==");
    let mut v2 = pretrained(Architecture::ResNet20, &zoo, 23);
    let radar = Radar::deploy(v2.net.as_ref(), 64, 1);
    let trigger2 = attack(&mut v2, radar.unprotected_mask());
    let asr2 = attack_success_rate(v2.net.as_mut(), &v2.test_data, &trigger2, 2);
    println!(
        "adaptive (MSB-avoiding) attack detected: {}, ASR {:.2}% \
         (full-width protection would cost {:.1}% inference time)",
        radar.detect(v2.net.as_ref()),
        asr2 * 100.0,
        Radar::deploy(v2.net.as_ref(), 64, 8).time_overhead_percent()
    );

    println!("\n== weight reconstruction (recovery — only stops the unaware) ==");
    let clean = pretrained(Architecture::ResNet32, &zoo, 24);
    let rec = WeightReconstruction::deploy(clean.net.as_ref(), 2);
    let mut unaware = pretrained(Architecture::ResNet32, &zoo, 24);
    let t_unaware = attack(&mut unaware, 0xFF);
    let before = attack_success_rate(unaware.net.as_mut(), &unaware.test_data, &t_unaware, 2);
    let repaired = rec.reconstruct(unaware.net.as_mut());
    let after = attack_success_rate(unaware.net.as_mut(), &unaware.test_data, &t_unaware, 2);
    println!(
        "unaware attacker: ASR {:.2}% → {:.2}% ({} weights repaired)",
        before * 100.0,
        after * 100.0,
        repaired
    );
    let mut aware = pretrained(Architecture::ResNet32, &zoo, 24);
    let t_aware = attack(&mut aware, rec.aware_attacker_mask());
    let repaired_aware = rec.reconstruct(aware.net.as_mut());
    let asr_aware = attack_success_rate(aware.net.as_mut(), &aware.test_data, &t_aware, 2);
    println!(
        "aware attacker:   ASR {:.2}% after reconstruction ({} weights repaired)",
        asr_aware * 100.0,
        repaired_aware
    );
}
