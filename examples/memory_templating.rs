//! Memory templating deep-dive: the DRAM-side mechanics of the attack.
//!
//! Explores the fault model the paper measures in §IV-A2 and §V-C: chip-
//! to-chip flip density (Table I), the n-sided pattern trade-off
//! (Figs. 5-6), the probability analysis that forbids multi-bit pages
//! (Eqs. 1-2, Figs. 9-10), and the page-frame-cache placement trick
//! (Listing 1 / Fig. 4).
//!
//! Run with: `cargo run --release --example memory_templating`

use rowhammer_backdoor::attack::probability::{target_page_probability, S_BITS};
use rowhammer_backdoor::dram::chips::ChipModel;
use rowhammer_backdoor::dram::hammer::{expected_flips, HammerPattern};
use rowhammer_backdoor::dram::placement::steer_weight_file;
use rowhammer_backdoor::dram::profile::FlipProfile;
use std::collections::HashMap;

fn main() {
    println!("== Table I: the chips are wildly unequal ==");
    for chip in ChipModel::all() {
        let profile = FlipProfile::template(chip, 1024, 1);
        println!(
            "  {:<4} {:?}: paper {:>7.2} flips/page, simulated {:>7.2}",
            chip.tag,
            chip.kind,
            chip.avg_flips_per_page,
            profile.measured_avg_flips_per_page()
        );
    }

    println!("\n== Figs. 5-6: why the online attack uses 7 sides, not 15 ==");
    let chip = ChipModel::online_ddr4();
    let profile = FlipProfile::template(chip, 2048, 2);
    for sides in [2usize, 3, 5, 7, 10, 15, 20] {
        let pattern = HammerPattern { sides };
        println!(
            "  {sides:>2}-sided: {:>8.1} flips over the buffer, {:?} per hammered row",
            expected_flips(&profile, pattern),
            pattern.time_per_row()
        );
    }
    println!("  fewer sides → fewer accidental flips per target page, shorter hammer time");

    println!("\n== Eqs. 1-2: one bit per page is the only realistic ask ==");
    for k in 1..=3 {
        let p = target_page_probability(34.0, k, S_BITS, 32_768);
        println!("  P(find a page matching {k} offset(s) in 128 MB) = {p:.6}");
    }

    println!("\n== Fig. 4: steering the weight file with the page-frame cache ==");
    let mut targets = HashMap::new();
    targets.insert(0usize, 7777usize); // file page 0 must land on flippy frame 7777
    targets.insert(5, 8888);
    let bait: Vec<usize> = (100..114).collect();
    let plan = steer_weight_file(8, &targets, &bait).expect("bait covers the file");
    for (page, frame) in plan.frame_of_page.iter().enumerate() {
        let marker = if targets.get(&page) == Some(frame) {
            "  <- flippy target"
        } else {
            ""
        };
        println!("  file page {page} -> frame {frame}{marker}");
    }
    println!(
        "the kernel's FILO per-CPU frame cache hands frames back in reverse \
         release order, so the attacker controls exactly which physical frame \
         backs each page of the victim's mmap'd weight file."
    );
}
