//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (typed parameters and `name in
//! strategy` parameters, optional `#![proptest_config(...)]` header),
//! range and tuple strategies, `prop::collection::vec`, and the
//! `prop_assert*` / `prop_assume!` macros. Cases are generated from a
//! deterministic per-test RNG; there is no shrinking — a failing case
//! panics with the values that triggered it, which is enough for CI.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Per-test deterministic generator.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Derives a generator from the test's name so each property test has
    /// a stable, independent stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }
}

/// Runner configuration (`cases` is the only knob the stub honors).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the simulation-heavy suites
        // quick while still exercising the properties broadly.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Upstream strategies also carry shrinking machinery;
/// here a strategy is simply something that can sample a value.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`, mirroring upstream's `prop_map`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy form of [`Arbitrary`], mirroring upstream's `any::<T>()`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(core::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<A>(core::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Types the stub can generate for plainly-typed `proptest!` parameters.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen_range(-1.0e3f32..1.0e3)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.0.gen_range(-1.0e6f64..1.0e6)
    }
}

/// The `prop::` namespace (`prop::collection::vec`, ...).
pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(
                len.start < len.end,
                "empty length range for prop::collection::vec"
            );
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.0.gen_range(self.len.clone());
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything the workspace imports via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Binds one `proptest!` parameter list entry per step (supports both
/// `name: Type` and `pattern in strategy` forms, with trailing commas).
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_bind {
    ($rng:ident;) => {};
    ($rng:ident; ,) => {};
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary($rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::Arbitrary>::arbitrary($rng);
        $crate::__prop_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::sample(&($strat), $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strat), $rng);
        $crate::__prop_bind!($rng; $($rest)*);
    };
}

/// Generates the `#[test]` functions (one per declared property).
#[doc(hidden)]
#[macro_export]
macro_rules! __prop_fns {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                // The case body runs in a closure so `prop_assume!` can
                // skip a case via early return.
                let mut __one = |__rng: &mut $crate::TestRng| {
                    $crate::__prop_bind!(__rng; $($params)*);
                    $body
                };
                __one(&mut rng);
            }
        }
        $crate::__prop_fns!($cfg; $($rest)*);
    };
}

/// Entry point mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__prop_fns!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__prop_fns!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

/// `assert!` under a proptest-compatible name (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Typed parameters sample the full domain.
        #[test]
        fn typed_params_bind(a: u8, b: i8) {
            let _ = (a, b);
        }

        #[test]
        fn range_strategies_respect_bounds(x in 3usize..17, y in -1.0f32..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_and_tuple_strategies(pairs in prop::collection::vec((0usize..10, 0u8..4), 1..8)) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 8);
            for (a, b) in pairs {
                prop_assert!(a < 10 && b < 4);
            }
        }

        #[test]
        fn assume_skips_cases(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn prop_map_transforms_samples(s in (0usize..5).prop_map(|n| n * 10)) {
            prop_assert_eq!(s % 10, 0);
            prop_assert!(s < 50);
        }

        #[test]
        fn any_samples_arbitrary(flag in any::<bool>(), byte in any::<u8>()) {
            prop_assert_eq!(u8::from(flag) <= 1, true);
            prop_assert_eq!(byte as u16 as u8, byte);
        }
    }
}
