//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so the workspace carries this API-compatible subset of `rand` 0.8:
//! the [`Rng`] / [`SeedableRng`] traits, [`rngs::StdRng`], uniform range
//! sampling, and Bernoulli draws. The generator is xoshiro256** seeded
//! through SplitMix64 — deterministic, high-quality, and fast; the exact
//! stream differs from upstream `StdRng` (ChaCha12), which is fine for
//! this repository because no test pins upstream byte sequences.

pub mod rngs {
    /// Deterministic xoshiro256** generator matching `rand::rngs::StdRng`'s
    /// role (a seedable, reproducible PRNG).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64_core(&mut self) -> u64 {
            self.next_u64()
        }
    }
}

/// Construction of reproducible generators from small seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (32 bytes for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed via SplitMix64, as upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Minimal core trait: everything derives from a 64-bit draw.
pub trait RngCore {
    fn next_u64_core(&mut self) -> u64;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64_core() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64_core() as u128) << 64) | rng.next_u64_core() as u128
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64_core() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64_core() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64_core() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply rejection-free mapping (bias < 2^-64,
                // irrelevant at simulation scale).
                let hi = ((rng.next_u64_core() as u128).wrapping_mul(span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64_core() as u128).wrapping_mul(span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::from_rng(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let unit = <$t as Standard>::from_rng(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// The user-facing sampling trait, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample of any [`Standard`]-implementing type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        <f64 as Standard>::from_rng(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Slice shuffling, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
