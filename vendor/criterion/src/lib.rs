//! Offline stand-in for `criterion`.
//!
//! Supports the benchmark surface this workspace uses — `Criterion`,
//! `bench_function`, `Bencher::iter` / `iter_batched`, `BatchSize`, and
//! the `criterion_group!` / `criterion_main!` macros (both positional and
//! `name = ...; config = ...; targets = ...` forms). Each benchmark is
//! timed with `std::time::Instant` over `sample_size` samples and the
//! mean/min are printed as plain text; there is no statistical analysis,
//! HTML report, or comparison baseline.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting benched code.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// How `iter_batched` amortizes setup; the stub runs one setup per
/// measured invocation regardless, which is exactly `PerIteration`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    PerIteration,
    SmallInput,
    LargeInput,
}

/// Per-benchmark timing driver.
pub struct Bencher {
    samples: usize,
    /// (total elapsed, iterations) accumulated by the routines.
    measured: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.measured.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.measured.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] but passes the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.measured.push(start.elapsed());
        }
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            measured: Vec::with_capacity(self.sample_size),
        };
        f(&mut bencher);
        let n = bencher.measured.len().max(1);
        let total: Duration = bencher.measured.iter().sum();
        let mean = total / n as u32;
        let min = bencher.measured.iter().min().copied().unwrap_or_default();
        println!("{id:<40} samples {n:>4}  mean {mean:>12.3?}  min {min:>12.3?}");
        self
    }

    /// Upstream parses CLI filters here; the stub runs everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Upstream prints the summary table here; the stub printed per-bench.
    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_all_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::PerIteration,
            )
        });
        assert_eq!(setups, 4);
    }
}
