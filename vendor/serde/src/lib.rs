//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive macros so that
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` compiles
//! unchanged. No trait machinery is provided because nothing in this
//! workspace drives a serde serializer; see `vendor/serde_derive`.

pub use serde_derive::{Deserialize, Serialize};
