//! Offline stand-in for `bytes`.
//!
//! Provides the [`Bytes`] / [`BytesMut`] surface the workspace uses
//! (construction, `extend_from_slice`, `resize`, indexing/deref,
//! `freeze`), backed by a plain `Vec<u8>`. Upstream's zero-copy
//! refcounting is an optimization this simulation does not rely on.

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub const fn new() -> Self {
        Bytes(Vec::new())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub const fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.0.resize(new_len, value);
    }

    pub fn clear(&mut self) {
        self.0.clear();
    }

    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut(v)
    }
}

impl Extend<u8> for BytesMut {
    fn extend<I: IntoIterator<Item = u8>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_resizes_and_freezes() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(&[1, 2, 3]);
        b.resize(5, 0);
        assert_eq!(&b[..], &[1, 2, 3, 0, 0]);
        b[4] = 9;
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 5);
        assert_eq!(frozen.to_vec(), vec![1, 2, 3, 0, 9]);
    }
}
