//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock (a panic while held) is transparent
//! here, matching parking_lot, which has no poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn survives_poisoning_panic() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
