//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatibility marker — nothing in the tree drives a serde
//! serializer (there is no `serde_json` dependency; structured output is
//! hand-rolled where needed, e.g. `rhb-telemetry`'s JSONL sink). These
//! derives therefore expand to nothing: the attribute compiles, helper
//! `#[serde(...)]` attributes are accepted, and no impls are generated.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
