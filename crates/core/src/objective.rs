//! The joint backdoor objective of Eq. (3).
//!
//! `F(Δθ, Δx) = Σ_i [(1−α)·ℓ(f(x_i, θ+Δθ), y_i) + α·ℓ(f(x_i+Δx, θ+Δθ), ỹ)]`
//!
//! One evaluation runs two forward/backward passes — a clean pass against
//! the true labels and a triggered pass against the target label — and
//! accumulates both weight gradients (for locating vulnerable bits) and
//! the input gradient of the triggered pass (for FGSM trigger learning).

use crate::trigger::Trigger;
use rhb_nn::layer::Mode;
use rhb_nn::loss::cross_entropy;
use rhb_nn::network::Network;
use rhb_nn::tensor::Tensor;

/// Configuration of the joint objective.
#[derive(Debug, Clone, Copy)]
pub struct Objective {
    /// Trade-off α between clean-data loss (weight 1−α) and triggered loss
    /// (weight α). The paper uses α = 0.5 everywhere.
    pub alpha: f32,
    /// The target label ỹ.
    pub target_label: usize,
}

/// One evaluation of the joint objective.
#[derive(Debug, Clone)]
pub struct ObjectiveEval {
    /// Total weighted loss F.
    pub loss: f32,
    /// Clean-term loss (unweighted).
    pub clean_loss: f32,
    /// Triggered-term loss (unweighted).
    pub triggered_loss: f32,
    /// Gradient of F w.r.t. the *triggered* input batch, for FGSM.
    pub grad_triggered_input: Tensor,
}

impl Objective {
    /// Creates the paper's default objective (α = 0.5) for a target label.
    pub fn balanced(target_label: usize) -> Self {
        Objective {
            alpha: 0.5,
            target_label,
        }
    }

    /// Evaluates F on a batch and **accumulates weight gradients** into the
    /// network (callers zero them first). Returns the losses and the
    /// triggered-input gradient.
    ///
    /// # Panics
    ///
    /// Panics if the batch and label counts disagree.
    pub fn evaluate(
        &self,
        net: &mut dyn Network,
        batch: &Tensor,
        labels: &[usize],
        trigger: &Trigger,
    ) -> ObjectiveEval {
        let batch_size = batch.shape().dim(0);
        assert_eq!(batch_size, labels.len(), "one label per sample");

        // Clean pass: (1−α)·ℓ(f(x), y). `Frozen` mode differentiates the
        // deployed network — frozen batch-norm statistics, exactly the
        // arithmetic inference runs — which is what the attacker targets.
        let logits = net.forward(batch, Mode::Frozen);
        let clean = cross_entropy(&logits, labels);
        let mut grad = clean.grad_logits.clone();
        grad.scale(1.0 - self.alpha);
        net.backward(&grad);

        // Triggered pass: α·ℓ(f(x+Δx), ỹ).
        let triggered = trigger.apply(batch);
        let target_labels = vec![self.target_label; batch_size];
        let logits_t = net.forward(&triggered, Mode::Frozen);
        let trig = cross_entropy(&logits_t, &target_labels);
        let mut grad_t = trig.grad_logits.clone();
        grad_t.scale(self.alpha);
        let grad_triggered_input = net.backward(&grad_t);

        ObjectiveEval {
            loss: (1.0 - self.alpha) * clean.loss + self.alpha * trig.loss,
            clean_loss: clean.loss,
            triggered_loss: trig.loss,
            grad_triggered_input,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::TriggerMask;
    use rhb_models::zoo::{pretrained, Architecture, ZooConfig};

    fn setup() -> (Box<dyn Network>, Tensor, Vec<usize>, Trigger) {
        let model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 3);
        let (x, y) = model.test_data.head(8);
        let trigger = Trigger::black_square(TriggerMask::paper_default(3, model.test_data.side()));
        (model.net, x, y, trigger)
    }

    #[test]
    fn evaluate_accumulates_weight_gradients() {
        let (mut net, x, y, trigger) = setup();
        net.zero_grad();
        let obj = Objective::balanced(2);
        obj.evaluate(net.as_mut(), &x, &y, &trigger);
        let any_grad = net.params().iter().any(|p| p.grad.max_abs() > 0.0);
        assert!(any_grad, "no weight gradient accumulated");
    }

    #[test]
    fn loss_is_weighted_sum_of_terms() {
        let (mut net, x, y, trigger) = setup();
        net.zero_grad();
        let obj = Objective {
            alpha: 0.25,
            target_label: 1,
        };
        let eval = obj.evaluate(net.as_mut(), &x, &y, &trigger);
        let expect = 0.75 * eval.clean_loss + 0.25 * eval.triggered_loss;
        assert!((eval.loss - expect).abs() < 1e-5);
    }

    #[test]
    fn alpha_zero_ignores_trigger_term_gradient() {
        let (mut net, x, y, trigger) = setup();
        net.zero_grad();
        let obj = Objective {
            alpha: 0.0,
            target_label: 1,
        };
        let eval = obj.evaluate(net.as_mut(), &x, &y, &trigger);
        assert_eq!(eval.grad_triggered_input.max_abs(), 0.0);
    }

    #[test]
    fn triggered_input_gradient_has_batch_shape() {
        let (mut net, x, y, trigger) = setup();
        net.zero_grad();
        let obj = Objective::balanced(0);
        let eval = obj.evaluate(net.as_mut(), &x, &y, &trigger);
        assert_eq!(eval.grad_triggered_input.shape(), x.shape());
    }
}
