//! End-to-end attack pipeline: offline optimization → DRAM matching →
//! page placement → hammering → post-attack evaluation (the structure of
//! Table II, with its Offline Phase and Online Phase column groups).
//!
//! For the unconstrained baselines the pipeline also implements the
//! paper's online-phase concession (§V-D): when a method demands several
//! flips in one page, keep only the flip with the largest gradient per
//! page and restore the rest — only pages with a single targeted bit can
//! realistically be found in DRAM.

use crate::baselines::{badnet, ft_last_layer, tbt, BaselineConfig};
use crate::cft::{run as run_cft, AlternateTarget, CftConfig, CftResult, LossPoint};
use crate::groupsel::{GroupPlan, WEIGHTS_PER_PAGE};
use crate::metrics::{attack_success_rate, n_flip, r_match, test_accuracy};
use crate::provenance::FlipRecord;
use crate::trigger::{Trigger, TriggerMask};
use rhb_dram::hammer::HammerConfig;
use rhb_dram::online::{OnlineAttack, RecoveryPolicy, RunClass, TargetBit};
use rhb_dram::profile::FlipProfile;
use rhb_dram::{ChaosConfig, ChipModel};
use rhb_models::zoo::PretrainedModel;
use rhb_nn::weightfile::{BitTarget, WeightFile, PAGE_SIZE};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

/// The five methods compared in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackMethod {
    /// BadNet: unconstrained fine-tuning of all weights, fixed trigger.
    BadNet,
    /// FT: last-layer fine-tuning, fixed trigger.
    Ft,
    /// TBT: trigger optimization + limited last-layer weight edits.
    Tbt,
    /// CFT: constrained fine-tuning without bit reduction.
    Cft,
    /// CFT+BR: the paper's full method.
    CftBr,
}

impl AttackMethod {
    /// All methods in Table II row order.
    pub const ALL: [AttackMethod; 5] = [
        AttackMethod::BadNet,
        AttackMethod::Ft,
        AttackMethod::Tbt,
        AttackMethod::Cft,
        AttackMethod::CftBr,
    ];

    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            AttackMethod::BadNet => "BadNet",
            AttackMethod::Ft => "FT",
            AttackMethod::Tbt => "TBT",
            AttackMethod::Cft => "CFT",
            AttackMethod::CftBr => "CFT+BR",
        }
    }

    /// Parses a paper-style display name (case-insensitive; `+` and `-`
    /// are interchangeable, so campaign run-ids like `CFT_BR` resolve
    /// too). `None` for unknown methods.
    pub fn from_name(name: &str) -> Option<AttackMethod> {
        let canon: String = name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect();
        AttackMethod::ALL.iter().copied().find(|m| {
            let mine: String = m
                .name()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .map(|c| c.to_ascii_lowercase())
                .collect();
            mine == canon
        })
    }
}

/// The typed verdict a campaign records for one run: the pipeline's
/// graceful-degradation classes for completed runs, plus the two
/// supervisor-assigned retirement classes for runs that never produced
/// an [`OnlineReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunVerdict {
    /// Completed; every requested flip landed ([`RunClass::Full`]).
    Full,
    /// Completed with partial efficacy ([`RunClass::Degraded`]).
    Degraded,
    /// Completed but the trigger did not take ([`RunClass::Failed`]).
    Failed,
    /// Retired by the supervisor after repeated deadline overruns.
    TimedOut,
    /// Retired by the supervisor after repeated panics or errors.
    Quarantined,
}

impl RunVerdict {
    /// Stable lower-case name (journal and report vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            RunVerdict::Full => "full",
            RunVerdict::Degraded => "degraded",
            RunVerdict::Failed => "failed",
            RunVerdict::TimedOut => "timed_out",
            RunVerdict::Quarantined => "quarantined",
        }
    }

    /// Parses the stable name. `None` for unknown classes.
    pub fn from_name(name: &str) -> Option<RunVerdict> {
        match name {
            "full" => Some(RunVerdict::Full),
            "degraded" => Some(RunVerdict::Degraded),
            "failed" => Some(RunVerdict::Failed),
            "timed_out" => Some(RunVerdict::TimedOut),
            "quarantined" => Some(RunVerdict::Quarantined),
            _ => None,
        }
    }

    /// Lifts a pipeline classification into the campaign vocabulary.
    pub fn from_run_class(class: RunClass) -> RunVerdict {
        match class {
            RunClass::Full => RunVerdict::Full,
            RunClass::Degraded => RunVerdict::Degraded,
            RunClass::Failed => RunVerdict::Failed,
        }
    }

    /// Whether the run actually executed to completion (produced a
    /// report), as opposed to being retired by the supervisor.
    pub fn is_completed(&self) -> bool {
        matches!(
            self,
            RunVerdict::Full | RunVerdict::Degraded | RunVerdict::Failed
        )
    }
}

/// Results of the offline phase (left half of Table II).
#[derive(Debug, Clone)]
pub struct OfflineReport {
    /// The method that produced this report.
    pub method: AttackMethod,
    /// Bits flipped by the offline optimizer.
    pub n_flip: u64,
    /// Test accuracy of the offline-backdoored model.
    pub test_accuracy: f64,
    /// Attack success rate of the offline-backdoored model.
    pub attack_success_rate: f64,
    /// The learned (or fixed) trigger.
    pub trigger: Trigger,
    /// Original deployed weight file.
    pub base_weights: WeightFile,
    /// Offline-modified weight file.
    pub attacked_weights: WeightFile,
    /// Loss trace (CFT/CFT+BR only), for Fig. 7.
    pub loss_history: Vec<LossPoint>,
    /// Per-group alternate bit targets (CFT/CFT+BR only): the runner-up
    /// weight of each page group, offered to the online recovery driver as
    /// a fallback when a primary flip is refuted. Empty for baselines.
    pub alternates: Vec<AlternateTarget>,
}

/// Results of the online phase (right half of Table II).
#[derive(Debug, Clone)]
pub struct OnlineReport {
    /// The method that produced this report.
    pub method: AttackMethod,
    /// Bits actually flipped in DRAM.
    pub n_flip: u64,
    /// Test accuracy of the hardware-backdoored model.
    pub test_accuracy: f64,
    /// Attack success rate of the hardware-backdoored model.
    pub attack_success_rate: f64,
    /// The paper's DRAM match rate metric, in percent.
    pub r_match: f64,
    /// Matched targets vs requested.
    pub n_matched: usize,
    /// Targets requested after per-page reduction.
    pub n_targets: usize,
    /// Accidental flips inside target pages (δ).
    pub accidental: usize,
    /// Modeled wall-clock hammering time.
    pub attack_time: Duration,
    /// Flip provenance ledger: one record per post-reduction target, in
    /// request order, joining optimizer context (weight index, page group)
    /// with the DRAM-side match/placement/hammer outcome.
    pub ledger: Vec<FlipRecord>,
    /// Graceful-degradation classification of the run (always
    /// [`RunClass::Full`] when chaos is off).
    pub classification: RunClass,
    /// Targets whose own bit read back verified.
    pub verified_flips: usize,
    /// Targets realized only through a recovery stage (retry, fallback, or
    /// re-templating).
    pub recovered_flips: usize,
    /// Recovery retry passes across all targets.
    pub retries: usize,
    /// Alternate-bit fallback attempts across all targets.
    pub fallbacks: usize,
    /// Chaos faults injected during the run (0 when chaos is off).
    pub injected_faults: usize,
    /// Modeled wall-clock time spent in recovery (re-hammering and
    /// re-templating), on top of `attack_time`.
    pub recovery_time: Duration,
    /// Re-templating rounds the recovery driver ran.
    pub retemplate_rounds: u32,
}

/// Drives one victim model through offline and online phases.
pub struct AttackPipeline {
    /// The victim (trained, deployed, with data splits).
    pub model: PretrainedModel,
    /// The target label every trigger drives inputs toward.
    pub target_label: usize,
    /// DRAM device for the online phase.
    pub chip: ChipModel,
    /// Templated pages available to the attacker.
    pub profile_pages: usize,
    /// Seed for templating and any stochastic choices.
    pub seed: u64,
    /// Online hammer configuration.
    pub hammer: HammerConfig,
    /// Optional override of the trigger patch side length. `None` keeps
    /// the paper's proportions ([`TriggerMask::paper_default`]); the
    /// serving experiment sets a larger patch so the backdoor saturates
    /// on the width-scaled victims.
    pub trigger_patch: Option<usize>,
    /// Chaos-mode fault injection for the online phase (`None` or an
    /// inactive config leaves the DRAM fully cooperative and the online
    /// outcome byte-identical to a pipeline without chaos support).
    pub chaos: Option<ChaosConfig>,
    /// Recovery policy the online phase uses *when chaos is active*; with
    /// chaos off the pipeline runs the plain single-pass attack.
    pub recovery: RecoveryPolicy,
    /// Shared template cache: when set, `run_online` fetches the flip
    /// profile through it instead of templating inline, so campaign
    /// retries and resumes re-hammer instead of re-templating. `None`
    /// preserves the original template-every-run behavior.
    pub template_cache: Option<std::sync::Arc<rhb_dram::TemplateCache>>,
}

impl std::fmt::Debug for AttackPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AttackPipeline({:?} on {} / {} pages)",
            self.model, self.chip.tag, self.profile_pages
        )
    }
}

impl AttackPipeline {
    /// Creates a pipeline with the paper's online setup: a DDR4 device
    /// hammered 7-sided over a 128 MB-equivalent templated buffer (scaled
    /// to 8192 pages to keep simulation fast — still orders of magnitude
    /// more pages than any scaled victim occupies).
    pub fn new(model: PretrainedModel, target_label: usize, seed: u64) -> Self {
        AttackPipeline {
            model,
            target_label,
            chip: ChipModel::online_ddr4(),
            profile_pages: 8192,
            seed,
            hammer: HammerConfig::default(),
            trigger_patch: None,
            chaos: None,
            recovery: RecoveryPolicy::default(),
            template_cache: None,
        }
    }

    /// Routes templating through a shared cache (builder-style).
    pub fn with_template_cache(mut self, cache: std::sync::Arc<rhb_dram::TemplateCache>) -> Self {
        self.template_cache = Some(cache);
        self
    }

    /// The victim's trigger mask: paper proportions for its image size,
    /// or the explicit `trigger_patch` override (clamped to the side).
    pub fn trigger_mask(&self) -> TriggerMask {
        let channels = self.model.test_data.channels();
        let side = self.model.test_data.side();
        match self.trigger_patch {
            Some(patch) => TriggerMask::bottom_right_square(channels, side, patch.min(side)),
            None => TriggerMask::paper_default(channels, side),
        }
    }

    /// Flip budget for the constrained methods. The paper's only hard
    /// constraint is `N_flip ≤ #pages` (one flip per page group); it uses
    /// 10–100 flips depending on the model. Our width-scaled victims have
    /// far fewer pages, so the budget defaults to the page count itself,
    /// capped at the paper's maximum of 100.
    pub fn default_flip_budget(&self) -> usize {
        let pages = WeightFile::from_network(self.model.net.as_ref()).num_pages();
        pages.clamp(1, 100)
    }

    /// Runs the offline phase of a method, mutating the victim in place.
    pub fn run_offline(&mut self, method: AttackMethod) -> OfflineReport {
        let _pipeline_span = rhb_telemetry::span!("pipeline", seed = self.seed);
        let base_weights = WeightFile::from_network(self.model.net.as_ref());
        let trigger0 = Trigger::black_square(self.trigger_mask());
        let net = self.model.net.as_mut();
        let data = &self.model.test_data;
        let bl = BaselineConfig::new(self.target_label);
        let budget = {
            let pages = base_weights.num_pages();
            pages.clamp(1, 100)
        };
        let _offline_span = rhb_telemetry::span!("offline", method = method.name());
        let (trigger, loss_history, alternates) = match method {
            AttackMethod::BadNet => (badnet(net, data, &bl, trigger0), Vec::new(), Vec::new()),
            AttackMethod::Ft => (
                ft_last_layer(net, data, &bl, trigger0),
                Vec::new(),
                Vec::new(),
            ),
            AttackMethod::Tbt => (tbt(net, data, &bl, trigger0, 24), Vec::new(), Vec::new()),
            AttackMethod::Cft => {
                let cfg = CftConfig {
                    iterations: 150,
                    bit_reduction_period: 25,
                    eta: 0.5,
                    epsilon: 0.005,
                    ..CftConfig::cft(budget, self.target_label)
                };
                let CftResult {
                    trigger,
                    loss_history,
                    alternates,
                    ..
                } = run_cft(net, data, &cfg, trigger0);
                (trigger, loss_history, alternates)
            }
            AttackMethod::CftBr => {
                let cfg = CftConfig {
                    iterations: 150,
                    bit_reduction_period: 25,
                    eta: 0.5,
                    epsilon: 0.005,
                    ..CftConfig::cft_br(budget, self.target_label)
                };
                let CftResult {
                    trigger,
                    loss_history,
                    alternates,
                    ..
                } = run_cft(net, data, &cfg, trigger0);
                (trigger, loss_history, alternates)
            }
        };
        drop(_offline_span);
        let attacked_weights = WeightFile::from_network(self.model.net.as_ref());
        let flips = n_flip(&base_weights, &attacked_weights)
            .expect("attacked weights describe the same architecture");
        rhb_telemetry::counter!("core/offline/bits_requested", flips);
        let (ta, asr) = {
            let _eval_span = rhb_telemetry::span!("evaluation");
            (
                test_accuracy(self.model.net.as_mut(), &self.model.test_data),
                attack_success_rate(
                    self.model.net.as_mut(),
                    &self.model.test_data,
                    &trigger,
                    self.target_label,
                ),
            )
        };
        rhb_telemetry::event!(
            "offline_report",
            method = method.name(),
            n_flip = flips,
            test_accuracy = ta,
            attack_success_rate = asr,
        );
        OfflineReport {
            method,
            n_flip: flips,
            test_accuracy: ta,
            attack_success_rate: asr,
            trigger,
            base_weights,
            attacked_weights,
            loss_history,
            alternates,
        }
    }

    /// Runs the online phase: reduce per-page demands, match against the
    /// templated profile, place, hammer, and evaluate the corrupted model.
    ///
    /// The victim network ends up loaded with the *hardware*-corrupted
    /// weights (not the offline ideal).
    pub fn run_online(&mut self, offline: &OfflineReport) -> OnlineReport {
        // Per the paper's evaluation: when a method demands several bits in
        // one page, keep the most significant demand per page (largest
        // weight-gradient proxy: we use the most significant differing bit,
        // matching the spirit of "largest gradient") and restore the rest.
        let _pipeline_span = rhb_telemetry::span!("pipeline", seed = self.seed);
        let wanted = offline.base_weights.diff(&offline.attacked_weights);
        let targets = reduce_to_one_per_page(&wanted);
        rhb_telemetry::counter!("core/online/targets_requested", targets.len());

        let profile = {
            let _templating_span = rhb_telemetry::span!("templating", pages = self.profile_pages);
            match &self.template_cache {
                Some(cache) => (*cache.profile(self.chip, self.profile_pages, self.seed)).clone(),
                None => FlipProfile::template(self.chip, self.profile_pages, self.seed),
            }
        };
        // Beyond the explicit buffer, the attacker templates most of the
        // 16 GB DIMM (§IV-A2: "multiple buffers of 128MB can be taken at a
        // time to profile most of the available memory") — ~4M pages.
        let mut attack = OnlineAttack::new(profile, self.hammer)
            .expect("online pattern is valid for the chip")
            .with_extended_templating(4_000_000, self.seed ^ 0xd1a5);
        let chaos_on = self.chaos.as_ref().is_some_and(|c| c.is_active());
        if let Some(cfg) = self.chaos {
            attack = attack.with_chaos(cfg);
        }
        let mut bytes = offline.base_weights.bytes().to_vec();
        let dram_targets: Vec<TargetBit> = targets
            .iter()
            .map(|t| TargetBit {
                file_page: t.location.page,
                bit_offset: t.location.offset * 8 + t.bit as usize,
                zero_to_one: t.zero_to_one,
            })
            .collect();

        // Group-constrained methods know which CFT+BR page group sourced
        // each bit; that context keys both the ledger and the alternate
        // (fallback) bit targets the recovery driver may substitute.
        let group_plan = match offline.method {
            AttackMethod::Cft | AttackMethod::CftBr => {
                let total_weights = offline.base_weights.bytes().len();
                let budget = offline.base_weights.num_pages().clamp(1, 100);
                Some(GroupPlan::new(total_weights, budget))
            }
            _ => None,
        };
        let alternates = alternate_map(&dram_targets, &offline.alternates, group_plan.as_ref());

        // Arm the live health model: the §VII a-priori ETA publishes
        // before hammering starts, so a mid-run scrape already sees it.
        let mut health = crate::health::HealthMonitor::new(
            crate::health::HealthConfig::default(),
            self.hammer.pattern,
            dram_targets.len(),
        );

        // Recovery only arms alongside chaos: on a cooperative DRAM the
        // single-pass attack and the adaptive driver are byte-identical,
        // and a disabled policy keeps them on the same code path.
        let policy = if chaos_on {
            self.recovery
        } else {
            RecoveryPolicy::disabled()
        };
        let adaptive = attack.execute_adaptive(&mut bytes, &dram_targets, &alternates, &policy);
        let outcome = &adaptive.outcome;

        // Feed the health model from the per-target records so the
        // rolling rates, progress, and refined ETA reflect this run; the
        // end-of-run classification gauge keys /status.
        for rec in &outcome.records {
            health.observe_match(rec.matched_frame.is_some());
            if rec.hammer_attempts > 0 {
                health.observe_hammer(rec.verified);
            }
        }
        health.finish();
        rhb_telemetry::gauge!("core/run_class", adaptive.classification.rank());

        let ledger: Vec<FlipRecord> = outcome
            .records
            .iter()
            .map(|rec| {
                let weight_idx = rec.target.file_page * crate::groupsel::WEIGHTS_PER_PAGE
                    + rec.target.bit_offset / 8;
                let flip = FlipRecord::from_target(
                    rec,
                    group_plan.as_ref().map(|g| g.group_of(weight_idx)),
                );
                flip.emit();
                flip
            })
            .collect();
        rhb_telemetry::counter!("core/online/ledger_records", ledger.len());

        // Rebuild the weight file from hammered bytes and load the victim.
        let mut corrupted = offline.base_weights.clone();
        for flip in &outcome.applied {
            let byte = flip.bit_offset / 8;
            let bit = (flip.bit_offset % 8) as u8;
            corrupted
                .flip_bit(
                    rhb_nn::weightfile::ByteLocation {
                        page: flip.file_page,
                        offset: byte,
                    },
                    bit,
                )
                .expect("applied flips are in range");
        }
        debug_assert_eq!(corrupted.bytes(), &bytes[..]);
        corrupted
            .load_into(self.model.net.as_mut())
            .expect("weight file matches the network");

        let realized_flips = n_flip(&offline.base_weights, &corrupted)
            .expect("corrupted weights describe the same architecture");
        rhb_telemetry::counter!("core/online/realized_flips", realized_flips);
        let (ta, asr) = {
            let _eval_span = rhb_telemetry::span!("evaluation");
            (
                test_accuracy(self.model.net.as_mut(), &self.model.test_data),
                attack_success_rate(
                    self.model.net.as_mut(),
                    &self.model.test_data,
                    &offline.trigger,
                    self.target_label,
                ),
            )
        };
        rhb_telemetry::event!(
            "online_report",
            method = offline.method.name(),
            n_flip = realized_flips,
            n_matched = outcome.n_matched,
            test_accuracy = ta,
            attack_success_rate = asr,
            classification = adaptive.classification.name(),
            verified_flips = adaptive.verified_targets as u64,
            recovered_flips = adaptive.recovered_targets as u64,
            injected_faults = adaptive.injected_faults.len() as u64,
        );
        OnlineReport {
            method: offline.method,
            n_flip: realized_flips,
            test_accuracy: ta,
            attack_success_rate: asr,
            // The paper's denominator is the method's *offline* N_flip:
            // a baseline that demanded 44 flips but realized 1 scores
            // 1/44 ≈ 2.3 %, even though its single post-reduction target
            // matched (§V-B, Table II).
            r_match: r_match(
                outcome.n_matched,
                (offline.n_flip as usize).max(1),
                outcome.accidental_in_target_pages,
            ),
            n_matched: outcome.n_matched,
            n_targets: outcome.n_targets,
            accidental: outcome.accidental_in_target_pages,
            attack_time: outcome.attack_time,
            classification: adaptive.classification,
            verified_flips: adaptive.verified_targets,
            recovered_flips: adaptive.recovered_targets,
            retries: adaptive.retries.len(),
            fallbacks: adaptive.fallbacks.len(),
            injected_faults: adaptive.injected_faults.len(),
            recovery_time: adaptive.recovery_time,
            retemplate_rounds: adaptive.retemplate_rounds,
            ledger,
        }
    }

    /// Convenience: number of pages and bits the victim's weight file
    /// occupies (Table II's "#Bits" / "#Pages" row labels).
    pub fn model_footprint(&self) -> (u64, usize) {
        let wf = WeightFile::from_network(self.model.net.as_ref());
        (wf.num_bits(), wf.num_pages())
    }
}

/// Keeps at most one required flip per weight-file page: the highest-order
/// differing bit wins (the paper keeps the largest-gradient flip).
pub fn reduce_to_one_per_page(targets: &[BitTarget]) -> Vec<BitTarget> {
    let mut best: std::collections::HashMap<usize, BitTarget> = std::collections::HashMap::new();
    for &t in targets {
        let page = t.location.page;
        match best.get(&page) {
            Some(cur) => {
                let cur_rank = (cur.bit, usize::MAX - cur.location.offset);
                let new_rank = (t.bit, usize::MAX - t.location.offset);
                if new_rank > cur_rank {
                    best.insert(page, t);
                }
            }
            None => {
                best.insert(page, t);
            }
        }
    }
    let mut out: Vec<BitTarget> = best.into_values().collect();
    out.sort_by_key(|t| (t.location.page, t.location.offset, t.bit));
    out
}

/// Builds the per-primary alternate-target map the adaptive online driver
/// consumes: each post-reduction primary target is keyed by its file page
/// and offered every offline alternate drawn from the *same* CFT+BR page
/// group (excluding an alternate that is the primary bit itself). Methods
/// without a group plan get an empty map — they have no principled
/// substitute bits.
pub fn alternate_map(
    primaries: &[TargetBit],
    alternates: &[AlternateTarget],
    plan: Option<&GroupPlan>,
) -> HashMap<usize, Vec<TargetBit>> {
    let Some(plan) = plan else {
        return HashMap::new();
    };
    let mut map: HashMap<usize, Vec<TargetBit>> = HashMap::new();
    for t in primaries {
        let weight_idx = t.file_page * WEIGHTS_PER_PAGE + t.bit_offset / 8;
        let group = plan.group_of(weight_idx);
        let alts: Vec<TargetBit> = alternates
            .iter()
            .filter(|a| a.group == group)
            .map(|a| TargetBit {
                file_page: a.weight_idx / WEIGHTS_PER_PAGE,
                bit_offset: (a.weight_idx % WEIGHTS_PER_PAGE) * 8 + a.bit as usize,
                zero_to_one: a.zero_to_one,
            })
            .filter(|alt| alt != t)
            .collect();
        if !alts.is_empty() {
            map.insert(t.file_page, alts);
        }
    }
    map
}

/// Helper for bench binaries: the weight-file page size re-exported so
/// downstream code does not need to depend on `rhb-nn` directly.
pub const WEIGHT_PAGE_SIZE: usize = PAGE_SIZE;

#[cfg(test)]
mod tests {
    use super::*;
    use rhb_models::zoo::{pretrained, Architecture, ZooConfig};
    use rhb_nn::weightfile::ByteLocation;

    fn pipeline(seed: u64) -> AttackPipeline {
        let model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), seed);
        AttackPipeline::new(model, 2, seed)
    }

    #[test]
    fn reduce_keeps_highest_bit_per_page() {
        let t = |page, offset, bit| BitTarget {
            location: ByteLocation { page, offset },
            bit,
            zero_to_one: true,
        };
        let reduced = reduce_to_one_per_page(&[t(0, 5, 2), t(0, 9, 6), t(1, 0, 0)]);
        assert_eq!(reduced.len(), 2);
        assert_eq!(reduced[0].bit, 6);
        assert_eq!(reduced[1].location.page, 1);
    }

    #[test]
    fn cft_br_end_to_end_keeps_high_rmatch_and_survives_hardware() {
        let mut pipe = pipeline(41);
        let offline = pipe.run_offline(AttackMethod::CftBr);
        assert!(offline.n_flip > 0);
        let online = pipe.run_online(&offline);
        assert!(
            online.r_match > 95.0,
            "CFT+BR r_match {} should be ~100%",
            online.r_match
        );
        // The online-phase claim: the hardware attack realizes the offline
        // backdoor — every target matched, and the ASR carries over instead
        // of collapsing as it does for the baselines.
        assert_eq!(online.n_matched, online.n_targets);
        assert!(
            online.attack_success_rate > offline.attack_success_rate - 0.15,
            "online ASR {} fell away from offline {}",
            online.attack_success_rate,
            offline.attack_success_rate
        );
        // The ledger audits every post-reduction target with full
        // provenance: optimizer group, placement address, hammer outcome.
        assert_eq!(online.ledger.len(), online.n_targets);
        for rec in &online.ledger {
            assert!(rec.page_group.is_some(), "CFT+BR records carry a group");
            assert!(rec.matched_frame.is_some(), "all CFT+BR targets match");
            assert_eq!(rec.placed_frame, rec.matched_frame);
            assert_eq!(rec.hammer_attempts, 1);
            assert!(rec.flipped, "matched CFT+BR bit did not flip");
            assert!(rec.verified, "cooperative DRAM verifies every flip");
            assert_eq!(rec.retries, 0);
            assert!(!rec.fallback);
        }
        // With chaos off the run is pristine: no faults, no recovery.
        assert_eq!(online.classification, RunClass::Full);
        assert_eq!(online.verified_flips, online.n_targets);
        assert_eq!(online.recovered_flips, 0);
        assert_eq!(online.retries, 0);
        assert_eq!(online.fallbacks, 0);
        assert_eq!(online.injected_faults, 0);
        assert_eq!(online.recovery_time, Duration::ZERO);
        // CFT+BR supplies alternates for the recovery driver even though a
        // cooperative run never needs them.
        assert!(!offline.alternates.is_empty());
    }

    #[test]
    fn chaos_run_degrades_gracefully_and_recovers_most_targets() {
        let mut pipe = pipeline(41);
        pipe.chaos = Some(rhb_dram::ChaosConfig {
            flip_flakiness: 0.2,
            ..rhb_dram::ChaosConfig::seeded(12)
        });
        let offline = pipe.run_offline(AttackMethod::CftBr);
        let online = pipe.run_online(&offline);
        assert!(online.injected_faults > 0, "20% flakiness injected nothing");
        assert_eq!(
            online.classification,
            RunClass::Degraded,
            "faults fired but recovery held: {} verified of {}",
            online.verified_flips,
            online.n_targets
        );
        // Acceptance bar: recovery lands at least 80% of targets.
        assert!(
            online.verified_flips * 5 >= online.n_targets * 4,
            "recovery landed {} of {} targets",
            online.verified_flips,
            online.n_targets
        );
        assert!(online.retries > 0, "flaky flips should cost retry passes");
        assert!(
            online.recovery_time > Duration::ZERO,
            "retries must be charged against the time model"
        );
        // The ledger accounts for the recovery work per record.
        let ledger_retries: usize = online.ledger.iter().map(|r| r.retries as usize).sum();
        assert_eq!(ledger_retries, online.retries);
        assert!(online
            .ledger
            .iter()
            .all(|r| r.hammer_attempts as usize > r.retries as usize));
    }

    #[test]
    fn inactive_chaos_matches_the_plain_run_exactly() {
        let mut a = pipeline(43);
        let mut b = pipeline(43);
        b.chaos = Some(rhb_dram::ChaosConfig::disabled());
        let off_a = a.run_offline(AttackMethod::CftBr);
        let off_b = b.run_offline(AttackMethod::CftBr);
        let on_a = a.run_online(&off_a);
        let on_b = b.run_online(&off_b);
        assert_eq!(on_a.ledger, on_b.ledger);
        assert_eq!(on_a.n_flip, on_b.n_flip);
        assert_eq!(on_a.classification, RunClass::Full);
        assert_eq!(on_b.classification, RunClass::Full);
        assert_eq!(on_a.attack_time, on_b.attack_time);
        assert_eq!(on_b.recovery_time, Duration::ZERO);
    }

    #[test]
    fn ft_online_phase_collapses() {
        let mut pipe = pipeline(43);
        let offline = pipe.run_offline(AttackMethod::Ft);
        let offline_asr = offline.attack_success_rate;
        let online = pipe.run_online(&offline);
        // FT's flips concentrate in the last-layer page(s); after per-page
        // reduction only one or two intended bits survive (total realized
        // flips also include accidental ones in the hammered pages), so
        // r_match (relative to the offline demand) and ASR drop hard.
        assert!(online.n_matched <= 2, "online matched {}", online.n_matched);
        assert!(
            online.attack_success_rate < offline_asr,
            "online ASR {} did not drop from {}",
            online.attack_success_rate,
            offline_asr
        );
        // FT does not select by page group, so the ledger records none.
        assert_eq!(online.ledger.len(), online.n_targets);
        assert!(online.ledger.iter().all(|r| r.page_group.is_none()));
    }

    #[test]
    fn online_restores_test_accuracy_for_weak_attacks() {
        let mut pipe = pipeline(44);
        let base_acc = pipe.model.base_accuracy;
        let offline = pipe.run_offline(AttackMethod::Ft);
        let online = pipe.run_online(&offline);
        // With almost no surviving flips the model returns to (near) its
        // clean accuracy, as Table II's online TA columns show.
        assert!(
            (online.test_accuracy - base_acc).abs() < 0.25,
            "online TA {} vs base {}",
            online.test_accuracy,
            base_acc
        );
    }

    #[test]
    fn footprint_reports_pages_and_bits() {
        let pipe = pipeline(45);
        let (bits, pages) = pipe.model_footprint();
        assert_eq!(bits % 8, 0);
        assert!(pages >= 1);
        assert!(bits / 8 <= (pages * WEIGHT_PAGE_SIZE) as u64);
    }

    #[test]
    fn alternate_map_keys_primaries_to_same_group_alternates() {
        let plan = GroupPlan::new(WEIGHTS_PER_PAGE * 4, 2);
        let primary = TargetBit {
            file_page: 0,
            bit_offset: 12,
            zero_to_one: true,
        };
        let alts = [
            AlternateTarget {
                group: 0,
                weight_idx: WEIGHTS_PER_PAGE + 3,
                bit: 5,
                zero_to_one: false,
            },
            AlternateTarget {
                group: 1,
                weight_idx: WEIGHTS_PER_PAGE * 3 + 9,
                bit: 2,
                zero_to_one: true,
            },
            // Identical to the primary bit itself: must be excluded.
            AlternateTarget {
                group: 0,
                weight_idx: 1,
                bit: 4,
                zero_to_one: true,
            },
        ];
        let map = alternate_map(&[primary], &alts, Some(&plan));
        let offered = &map[&0];
        assert_eq!(offered.len(), 1, "same-group alternates minus the primary");
        assert_eq!(offered[0].file_page, 1);
        assert_eq!(offered[0].bit_offset, 3 * 8 + 5);
        assert!(!offered[0].zero_to_one);
        // No plan → no substitutes.
        assert!(alternate_map(&[primary], &alts, None).is_empty());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use rhb_nn::weightfile::ByteLocation;

    /// Bit targets as a weight-file diff produces them: each
    /// (page, offset, bit) site appears at most once.
    fn arb_targets() -> impl Strategy<Value = Vec<BitTarget>> {
        prop::collection::vec(
            (0usize..12, 0usize..64, 0u8..8, any::<bool>()).prop_map(
                |(page, offset, bit, zero_to_one)| BitTarget {
                    location: ByteLocation { page, offset },
                    bit,
                    zero_to_one,
                },
            ),
            0..80,
        )
        .prop_map(|targets| {
            let mut seen = std::collections::HashSet::new();
            targets
                .into_iter()
                .filter(|t| seen.insert((t.location.page, t.location.offset, t.bit)))
                .collect()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Reduction leaves at most one target per page and never invents
        /// targets.
        #[test]
        fn reduce_is_one_per_page_and_a_subset(targets in arb_targets()) {
            let reduced = reduce_to_one_per_page(&targets);
            let mut pages: Vec<usize> = reduced.iter().map(|t| t.location.page).collect();
            pages.sort_unstable();
            let mut deduped = pages.clone();
            deduped.dedup();
            prop_assert_eq!(&pages, &deduped, "a page appears twice");
            for t in &reduced {
                prop_assert!(targets.contains(t), "invented target");
            }
            let distinct_pages = {
                let mut p: Vec<usize> = targets.iter().map(|t| t.location.page).collect();
                p.sort_unstable();
                p.dedup();
                p.len()
            };
            prop_assert_eq!(reduced.len(), distinct_pages);
        }

        /// Reducing twice changes nothing.
        #[test]
        fn reduce_is_idempotent(targets in arb_targets()) {
            let once = reduce_to_one_per_page(&targets);
            let twice = reduce_to_one_per_page(&once);
            prop_assert_eq!(once, twice);
        }

        /// The winner per page does not depend on input order.
        #[test]
        fn reduce_is_stable_under_permutation(
            targets in arb_targets(),
            rotation in 0usize..79,
            reverse in any::<bool>(),
        ) {
            let baseline = reduce_to_one_per_page(&targets);
            let mut shuffled = targets.clone();
            if !shuffled.is_empty() {
                let mid = rotation % shuffled.len();
                shuffled.rotate_left(mid);
            }
            if reverse {
                shuffled.reverse();
            }
            prop_assert_eq!(baseline, reduce_to_one_per_page(&shuffled));
        }
    }
}
