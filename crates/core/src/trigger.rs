//! Data trigger patterns and FGSM trigger learning (Algorithm 1, Step 1).
//!
//! The trigger starts as a black square in the bottom-right corner of the
//! image (10×10 on CIFAR-10, 73×73 on ImageNet — proportionally ~1/10 and
//! ~1/3 of the image side). Each optimizer iteration nudges the masked
//! pixels with the sign of the input gradient of the triggered-loss term
//! (the Fast Gradient Sign Method), scaled by ε.

use rhb_nn::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// The pixel region a trigger may modify.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriggerMask {
    channels: usize,
    side: usize,
    /// Square patch side.
    patch: usize,
}

impl TriggerMask {
    /// A square patch in the bottom-right corner, the paper's layout.
    ///
    /// # Panics
    ///
    /// Panics if `patch > side`.
    pub fn bottom_right_square(channels: usize, side: usize, patch: usize) -> Self {
        assert!(patch <= side, "patch {patch} larger than image side {side}");
        TriggerMask {
            channels,
            side,
            patch,
        }
    }

    /// The paper's proportions: patch ≈ 1/3 of the image side (10 px on a
    /// 32 px CIFAR image would be ~1/3 of the area the paper uses; we keep
    /// the same fraction of image side).
    pub fn paper_default(channels: usize, side: usize) -> Self {
        Self::bottom_right_square(channels, side, (side * 10).div_ceil(32).max(2))
    }

    /// Whether pixel `(c, y, x)` is inside the mask.
    pub fn contains(&self, _c: usize, y: usize, x: usize) -> bool {
        y >= self.side - self.patch && x >= self.side - self.patch
    }

    /// Number of maskable scalar values.
    pub fn active_pixels(&self) -> usize {
        self.channels * self.patch * self.patch
    }

    /// Image side length.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Image channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Patch side length.
    pub fn patch(&self) -> usize {
        self.patch
    }
}

/// A trigger pattern Δx: a patch of pixel values stamped over the masked
/// region.
///
/// The patch *replaces* the masked pixels, as BadNet and TBT triggers do
/// (and as the paper's "black square on the bottom right corner"
/// initialization implies): the triggered input is identical in the patch
/// region regardless of the underlying image, which is what lets a handful
/// of modified weights key on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trigger {
    mask: TriggerMask,
    /// Patch pixel values over the full image grid; only masked entries
    /// are ever stamped.
    pattern: Tensor,
}

impl Trigger {
    /// The paper's initialization: a black square (minimum pixel value,
    /// −1 in our normalized data) over the masked region.
    pub fn black_square(mask: TriggerMask) -> Self {
        let mut pattern = Tensor::zeros(&[mask.channels, mask.side, mask.side]);
        for c in 0..mask.channels {
            for y in 0..mask.side {
                for x in 0..mask.side {
                    if mask.contains(c, y, x) {
                        *pattern.at_mut(&[c, y, x]) = -1.0;
                    }
                }
            }
        }
        Trigger { mask, pattern }
    }

    /// The mask this trigger honors.
    pub fn mask(&self) -> &TriggerMask {
        &self.mask
    }

    /// The patch pattern (meaningful only inside the mask).
    pub fn pattern(&self) -> &Tensor {
        &self.pattern
    }

    /// Applies the trigger to a `[batch, C, H, W]` batch: masked pixels are
    /// replaced by the patch, everything else passes through.
    ///
    /// # Panics
    ///
    /// Panics if image dimensions disagree with the mask.
    pub fn apply(&self, batch: &Tensor) -> Tensor {
        let dims = batch.shape().dims();
        assert_eq!(dims[1], self.mask.channels, "channel mismatch");
        assert_eq!(dims[2], self.mask.side, "image side mismatch");
        let image_len = self.pattern.numel();
        let side = self.mask.side;
        let mut out = batch.clone();
        for b in 0..dims[0] {
            let img = &mut out.data_mut()[b * image_len..(b + 1) * image_len];
            for c in 0..self.mask.channels {
                for y in 0..side {
                    for x in 0..side {
                        if self.mask.contains(c, y, x) {
                            let i = (c * side + y) * side + x;
                            img[i] = self.pattern.data()[i];
                        }
                    }
                }
            }
        }
        out
    }

    /// FGSM update (Eq. 4): steps the masked patch pixels by `epsilon`
    /// against the gradient of the triggered loss, driving inputs toward
    /// the target label. `grad_input` is the loss gradient w.r.t. the
    /// *triggered* batch, `[batch, C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if gradient dimensions disagree with the mask.
    pub fn fgsm_step(&mut self, grad_input: &Tensor, epsilon: f32) {
        let dims = grad_input.shape().dims();
        assert_eq!(dims[1], self.mask.channels, "channel mismatch");
        assert_eq!(dims[2], self.mask.side, "image side mismatch");
        let image_len = self.pattern.numel();
        // The patch is shared across the batch, so its gradient is the sum
        // of the per-sample input gradients.
        let mut summed = vec![0.0f32; image_len];
        for b in 0..dims[0] {
            for (s, &g) in summed
                .iter_mut()
                .zip(&grad_input.data()[b * image_len..(b + 1) * image_len])
            {
                *s += g;
            }
        }
        let side = self.mask.side;
        for c in 0..self.mask.channels {
            for y in 0..side {
                for x in 0..side {
                    if !self.mask.contains(c, y, x) {
                        continue;
                    }
                    let i = (c * side + y) * side + x;
                    // Descend the triggered loss: move against the gradient.
                    let step = -epsilon * summed[i].signum();
                    let v = &mut self.pattern.data_mut()[i];
                    *v = (*v + step).clamp(-1.0, 1.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask() -> TriggerMask {
        TriggerMask::bottom_right_square(3, 8, 3)
    }

    #[test]
    fn mask_covers_bottom_right_only() {
        let m = mask();
        assert!(m.contains(0, 7, 7));
        assert!(m.contains(2, 5, 5));
        assert!(!m.contains(0, 4, 7));
        assert!(!m.contains(0, 7, 4));
        assert_eq!(m.active_pixels(), 3 * 9);
    }

    #[test]
    fn black_square_stamps_masked_pixels() {
        let t = Trigger::black_square(mask());
        let batch = Tensor::full(&[1, 3, 8, 8], 0.5);
        let out = t.apply(&batch);
        assert_eq!(out.at(&[0, 0, 7, 7]), -1.0);
        assert_eq!(out.at(&[0, 0, 0, 0]), 0.5);
    }

    #[test]
    fn apply_is_input_independent_inside_patch() {
        let t = Trigger::black_square(mask());
        let a = t.apply(&Tensor::full(&[1, 3, 8, 8], -0.9));
        let b = t.apply(&Tensor::full(&[1, 3, 8, 8], 0.7));
        assert_eq!(a.at(&[0, 1, 7, 7]), b.at(&[0, 1, 7, 7]));
        assert_ne!(a.at(&[0, 1, 0, 0]), b.at(&[0, 1, 0, 0]));
    }

    #[test]
    fn fgsm_only_touches_masked_pixels() {
        let mut t = Trigger::black_square(mask());
        let before = t.pattern().clone();
        let grad = Tensor::full(&[2, 3, 8, 8], -1.0);
        t.fgsm_step(&grad, 0.1);
        for c in 0..3 {
            for y in 0..8 {
                for x in 0..8 {
                    let changed = t.pattern().at(&[c, y, x]) != before.at(&[c, y, x]);
                    assert_eq!(changed, t.mask().contains(c, y, x), "pixel {c},{y},{x}");
                }
            }
        }
    }

    #[test]
    fn fgsm_moves_against_gradient_sign() {
        let mut t = Trigger::black_square(mask());
        let before = t.pattern().at(&[0, 7, 7]);
        let grad = Tensor::full(&[1, 3, 8, 8], -2.0);
        t.fgsm_step(&grad, 0.05);
        // Negative gradient → step is +epsilon.
        assert!((t.pattern().at(&[0, 7, 7]) - (before + 0.05)).abs() < 1e-6);
    }

    #[test]
    fn fgsm_clamps_pattern_to_pixel_range() {
        let mut t = Trigger::black_square(mask());
        let grad = Tensor::full(&[1, 3, 8, 8], 1.0);
        for _ in 0..100 {
            t.fgsm_step(&grad, 0.5);
        }
        assert_eq!(t.pattern().at(&[0, 7, 7]), -1.0);
    }

    #[test]
    fn paper_default_scales_with_image() {
        let m = TriggerMask::paper_default(3, 32);
        assert_eq!(m.patch(), 10);
        let m = TriggerMask::paper_default(3, 16);
        assert_eq!(m.patch(), 5);
        let m = TriggerMask::paper_default(3, 8);
        assert_eq!(m.patch(), 3);
    }
}
