//! The paper's contribution: constrained-optimization backdoor injection
//! for Rowhammer ("CFT+BR"), its baselines, metrics, and the end-to-end
//! offline + online pipeline.
//!
//! * [`trigger`] — data trigger patterns Δx and the FGSM learning step
//!   (Algorithm 1, Step 1);
//! * [`objective`] — the joint objective of Eq. (3): a weighted sum of the
//!   clean-data loss and the triggered-data loss toward the target label;
//! * [`groupsel`] — `Group_Sort_Select` (Eq. 5): one weight per page group,
//!   ranked by gradient magnitude (constraints C1/C2);
//! * [`cft`] — Algorithm 1 itself: constrained fine-tuning with optional
//!   bit reduction (CFT and CFT+BR);
//! * [`baselines`] — BadNet, last-layer fine-tuning (FT), and TBT,
//!   plus the parameter-restoration sweep of Appendix D / Table IV;
//! * [`metrics`] — N_flip, Test Accuracy, Attack Success Rate, and the
//!   paper's new DRAM Match Rate r_match (§V-B);
//! * [`probability`] — the target-page matching probabilities of
//!   Eqs. (1)–(2) and Figs. 9–10;
//! * [`pipeline`] — glue: run any method offline, convert the weight diff
//!   into DRAM bit targets, execute the online Rowhammer phase, and
//!   evaluate the corrupted model.

pub mod baselines;
pub mod cft;
pub mod groupsel;
pub mod health;
pub mod metrics;
pub mod objective;
pub mod pipeline;
pub mod probability;
pub mod provenance;
pub mod trigger;

pub use cft::{AlternateTarget, CftConfig, CftResult};
pub use metrics::{attack_success_rate, r_match, test_accuracy};
pub use pipeline::{AttackMethod, AttackPipeline, OfflineReport, OnlineReport, RunVerdict};
pub use provenance::FlipRecord;
pub use trigger::{Trigger, TriggerMask};
