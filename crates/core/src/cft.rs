//! Algorithm 1: Constrained Fine-Tuning with Bit Reduction (CFT / CFT+BR).
//!
//! Each iteration:
//!
//! 1. *(optional)* FGSM-step the trigger Δx (Step 1, Eq. 4);
//! 2. compute the joint objective's weight gradients and run
//!    `Group_Sort_Select` to pick at most one weight per page group
//!    (Step 2, Eq. 5, constraints C1/C2);
//! 3. apply a masked SGD step to exactly those weights (Step 3, Eq. 6);
//! 4. *(CFT+BR only, every `bit_reduction_period` iterations)* snap every
//!    modified weight to a single-bit change via
//!    `θ* ← Floor((θ+Δθ*) ⊕ θ) ⊕ θ` (Step 4), which produces the loss
//!    spikes visible in Fig. 7.
//!
//! The output is the modified quantized model plus the learned trigger —
//! everything the online phase needs.

use crate::groupsel::{group_sort_select, group_sort_select_top2, GroupPlan};
use crate::objective::Objective;
use crate::trigger::Trigger;
use rhb_models::data::Dataset;
use rhb_nn::network::Network;
use rhb_nn::optim::{Sgd, SgdConfig};
use rhb_nn::quant::bit_reduce_masked;
use rhb_nn::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Hyperparameters of Algorithm 1.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CftConfig {
    /// Bits the attacker is allowed to flip (`N_flip`).
    pub n_flip: usize,
    /// Trade-off α between clean and triggered loss (paper: 0.5).
    pub alpha: f32,
    /// FGSM step ε for the trigger (paper: 0.001).
    pub epsilon: f32,
    /// Learning rate η for the masked weight update.
    pub eta: f32,
    /// Total iterations T.
    pub iterations: usize,
    /// Whether the trigger is optimized (Algorithm 1's `update the trigger`).
    pub update_trigger: bool,
    /// Whether bit reduction runs (CFT+BR vs plain CFT).
    pub bit_reduction: bool,
    /// Iterations between bit reductions (the paper applies it every 100).
    pub bit_reduction_period: usize,
    /// Target label ỹ.
    pub target_label: usize,
    /// Samples drawn from the attacker's test split per iteration (the
    /// paper uses one batch of 128 CIFAR images throughout).
    pub batch_size: usize,
    /// Bit positions reduction may flip (bitmask over the 8 weight bits).
    /// `0xFF` is the unconstrained attack; adaptive variants clear defended
    /// bits, e.g. `0x7F` avoids the MSBs that RADAR checksums (§VI-B).
    pub allowed_bits: u8,
}

impl CftConfig {
    /// Paper-style defaults for CFT+BR with the given flip budget.
    pub fn cft_br(n_flip: usize, target_label: usize) -> Self {
        CftConfig {
            n_flip,
            alpha: 0.5,
            epsilon: 0.001,
            eta: 0.3,
            iterations: 300,
            update_trigger: true,
            bit_reduction: true,
            bit_reduction_period: 100,
            target_label,
            batch_size: 64,
            allowed_bits: 0xFF,
        }
    }

    /// Plain CFT: identical but without bit reduction.
    pub fn cft(n_flip: usize, target_label: usize) -> Self {
        CftConfig {
            bit_reduction: false,
            ..Self::cft_br(n_flip, target_label)
        }
    }
}

/// One loss sample from the optimization (Fig. 7's curve).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LossPoint {
    /// Iteration index.
    pub iteration: usize,
    /// Joint loss F after this iteration.
    pub loss: f32,
    /// Whether bit reduction ran at this iteration (spike locations).
    pub bit_reduced: bool,
}

/// Output of Algorithm 1.
#[derive(Debug, Clone)]
pub struct CftResult {
    /// The learned trigger Δx*.
    pub trigger: Trigger,
    /// Loss trace for Fig. 7.
    pub loss_history: Vec<LossPoint>,
    /// Flat indices of the weights the final mask selected.
    pub final_mask: Vec<usize>,
    /// Per-group alternate bit targets (runner-up weights), the online
    /// recovery driver's fallback when a primary flip is refuted.
    pub alternates: Vec<AlternateTarget>,
}

/// A second-choice bit flip for one page group: the weight with the
/// second-largest gradient magnitude in the group, and the single bit of
/// it whose flip moves the weight in the loss-descending direction. The
/// online phase falls back to these when a primary flip is refuted by
/// read-back (chaos mode / hostile DRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlternateTarget {
    /// Page group this alternate substitutes within.
    pub group: usize,
    /// Flat index of the runner-up weight.
    pub weight_idx: usize,
    /// Bit position to flip (0..=6 — the sign bit is never offered, a sign
    /// flip of an un-optimized weight does more damage than good).
    pub bit: u8,
    /// Required flip direction: `true` for 0→1.
    pub zero_to_one: bool,
}

/// Derives the alternate-target list from the network's current gradients:
/// for each group's runner-up weight, descend the loss by flipping the
/// highest-magnitude bit whose stored value permits a move *against* the
/// gradient sign (gradient < 0 ⇒ the weight should grow ⇒ flip a stored-0
/// bit; gradient > 0 ⇒ shrink ⇒ flip a stored-1 bit). Weights whose byte
/// offers no such bit below the sign bit contribute nothing.
pub fn collect_alternates(net: &dyn Network, plan: &GroupPlan) -> Vec<AlternateTarget> {
    let picks = group_sort_select_top2(net, plan);
    let mut wanted: Vec<(usize, usize)> = picks
        .iter()
        .filter_map(|p| p.runner_up.map(|idx| (idx, p.group)))
        .collect();
    wanted.sort_unstable();

    let mut alternates = Vec::with_capacity(wanted.len());
    let mut cursor = 0usize;
    let mut base = 0usize;
    for p in net.params() {
        let len = p.numel();
        while cursor < wanted.len() && wanted[cursor].0 < base + len {
            let (flat, group) = wanted[cursor];
            cursor += 1;
            let local = flat - base;
            let grad = p.grad.data()[local];
            if grad == 0.0 {
                continue;
            }
            let scheme = p.scheme.expect("deployed parameter");
            let byte = scheme.quantize(p.value.data()[local]) as u8;
            // Want the weight to move against the gradient: grow (flip a
            // stored 0 up) when grad < 0, shrink when grad > 0.
            let zero_to_one = grad < 0.0;
            let bit = (0..=6u8)
                .rev()
                .find(|&b| ((byte >> b) & 1 == 0) == zero_to_one);
            if let Some(bit) = bit {
                alternates.push(AlternateTarget {
                    group,
                    weight_idx: flat,
                    bit,
                    zero_to_one,
                });
            }
        }
        base += len;
    }
    alternates
}

/// Runs Algorithm 1 against a deployed network, modifying it in place.
///
/// The network must be deployed (quantized): the optimizer reads each
/// parameter's frozen [`rhb_nn::quant::QuantScheme`] both to keep the
/// effective weights on the quantization grid and to perform bit reduction
/// in the integer domain.
///
/// # Panics
///
/// Panics if the network is not deployed or `data` has fewer samples than
/// `config.batch_size` requires (one batch is enough).
pub fn run(
    net: &mut dyn Network,
    data: &Dataset,
    config: &CftConfig,
    trigger: Trigger,
) -> CftResult {
    assert!(net.is_deployed(), "CFT attacks deployed (quantized) models");
    assert!(!data.is_empty(), "attacker data required");
    let _span = rhb_telemetry::span!(
        "cft",
        iterations = config.iterations,
        n_flip = config.n_flip,
        bit_reduction = config.bit_reduction,
    );
    let mut trigger = trigger;
    let objective = Objective {
        alpha: config.alpha,
        target_label: config.target_label,
    };
    let plan = GroupPlan::new(net.num_params(), config.n_flip);
    let mut opt = Sgd::new(
        net,
        SgdConfig {
            lr: config.eta,
            momentum: 0.0,
            weight_decay: 0.0,
        },
    );

    // Snapshot the original deployed weights θ: bit reduction is always
    // relative to the *original* model, not the previous iterate.
    let theta: Vec<Tensor> = net.params().iter().map(|p| p.value.clone()).collect();

    // The paper uses one fixed batch of attacker-held test data.
    let indices: Vec<usize> = (0..config.batch_size.min(data.len())).collect();
    let (batch, labels) = data.batch(&indices);

    let mut loss_history = Vec::with_capacity(config.iterations);
    let mut final_mask: Vec<usize> = Vec::new();
    // Best deployable (post-bit-reduction) state seen so far: the paper
    // reports the optimization "eventually converges to a solution"; we
    // make that operational by checkpointing the reduced state with the
    // lowest joint loss.
    let mut best: Option<(f32, Vec<Tensor>, Trigger)> = None;
    let period = config.bit_reduction_period.max(1);
    for t in 0..config.iterations {
        // Step 1: trigger update.
        if config.update_trigger {
            net.zero_grad();
            let eval = objective.evaluate(net, &batch, &labels, &trigger);
            trigger.fgsm_step(&eval.grad_triggered_input, config.epsilon);
        }

        // Step 2: locate vulnerable weights.
        net.zero_grad();
        let eval = objective.evaluate(net, &batch, &labels, &trigger);
        // With bit reduction enabled the mask is held fixed within each
        // reduction period: re-selecting every iteration spreads the drift
        // over several weights of the same group, and reduction would then
        // discard all but one of them. Freezing the mask between
        // reductions concentrates the drift on the weights that survive.
        if !config.bit_reduction || t % period == 0 || final_mask.is_empty() {
            final_mask = group_sort_select(net, &plan);
        }

        // Step 3: adversarial fine-tuning on the mask only. The float
        // master weights drift freely between bit reductions; the forward
        // pass always fake-quantizes ([`rhb_nn::param::Parameter::effective`]),
        // so gradients reflect the deployable model (straight-through
        // estimation). Snapping the masters every step would erase any
        // update smaller than half a quantization step and stall.
        opt.step_masked(net, &final_mask);

        // Step 4: bit reduction.
        let mut bit_reduced = false;
        if config.bit_reduction && (t + 1) % period == 0 {
            apply_bit_reduction(net, &theta, &plan, config.allowed_bits);
            bit_reduced = true;
            // Score the deployable state and checkpoint the best.
            net.zero_grad();
            let reduced_eval = objective.evaluate(net, &batch, &labels, &trigger);
            let better = best.as_ref().is_none_or(|(l, _, _)| reduced_eval.loss < *l);
            if better {
                let snapshot = net.params().iter().map(|p| p.value.clone()).collect();
                best = Some((reduced_eval.loss, snapshot, trigger.clone()));
            }
        }
        rhb_telemetry::counter!("core/cft/iterations", 1);
        if bit_reduced {
            rhb_telemetry::counter!("core/cft/bit_reductions", 1);
        }
        rhb_telemetry::gauge!("core/cft/loss", eval.loss);
        rhb_telemetry::event!(
            "cft_iteration",
            iteration = t,
            loss = eval.loss,
            bit_reduced = bit_reduced,
        );
        loss_history.push(LossPoint {
            iteration: t,
            loss: eval.loss,
            bit_reduced,
        });
    }

    if config.bit_reduction {
        // Final reduction, then keep whichever deployable state won.
        apply_bit_reduction(net, &theta, &plan, config.allowed_bits);
        net.zero_grad();
        let final_eval = objective.evaluate(net, &batch, &labels, &trigger);
        if let Some((loss, snapshot, best_trigger)) = best {
            if loss < final_eval.loss {
                let mut params = net.params_mut();
                for (p, s) in params.iter_mut().zip(&snapshot) {
                    p.value = s.clone();
                }
                trigger = best_trigger;
            }
        }
    } else {
        // Plain CFT: snap the float masters onto the quantization grid —
        // that is the model the victim serves.
        for p in net.params_mut() {
            let scheme = p.scheme.expect("deployed parameter");
            p.value.map_inplace(|v| scheme.fake(v));
        }
    }

    // Score the final deployable state once more so the gradients reflect
    // the model the victim actually serves, then harvest the per-group
    // runner-ups as alternate bit targets for online recovery.
    net.zero_grad();
    objective.evaluate(net, &batch, &labels, &trigger);
    let alternates = collect_alternates(net, &plan);
    rhb_telemetry::counter!("core/cft/alternates", alternates.len() as u64);

    CftResult {
        trigger,
        loss_history,
        final_mask,
        alternates,
    }
}

/// Applies `θ* ← Floor((θ+Δθ*) ⊕ θ) ⊕ θ` per weight in the i8 domain, then
/// re-imposes the page-group constraint: because `Group_Sort_Select` may
/// pick *different* weights of a group across iterations, several weights
/// of one group can carry modifications by the time reduction runs. Only
/// the largest change per group survives; the rest revert to θ. This is
/// what guarantees the paper's claim that no more than one bit per memory
/// page ends up flipped.
fn apply_bit_reduction(
    net: &mut dyn Network,
    theta: &[Tensor],
    plan: &GroupPlan,
    allowed_bits: u8,
) {
    // Pass 1: snap every modified weight to a single-bit change and record
    // (group, flat index, |change|). Each weight's snap is independent, so
    // the flat scan is chunked across the global pool; per-chunk modified
    // lists concatenated in chunk order equal the serial scan order, which
    // pass 2's first-wins selection depends on.
    const BR_GRAIN: usize = 16 * 1024;
    let mut modified: Vec<(usize, usize, f32)> = Vec::new();
    {
        let mut params = net.params_mut();
        let mut base = 0usize;
        let pool = rhb_par::pool();
        for (p, orig) in params.iter_mut().zip(theta) {
            let scheme = p.scheme.expect("deployed parameter");
            let len = p.numel();
            let data = p.value.data_mut();
            let orig = orig.data();
            let ranges = rhb_par::split_range(len, pool.threads(), BR_GRAIN);
            let chunks = rhb_par::split_slice_mut(data, &ranges, 1);
            let mut partials: Vec<Vec<(usize, usize, f32)>> =
                ranges.iter().map(|_| Vec::new()).collect();
            let tasks: Vec<rhb_par::Task<'_>> = ranges
                .iter()
                .zip(chunks)
                .zip(partials.iter_mut())
                .map(|((r, chunk), out)| {
                    let r = r.clone();
                    Box::new(move || {
                        for (off, v) in chunk.iter_mut().enumerate() {
                            let i = r.start + off;
                            let o = orig[i];
                            let q_orig = scheme.quantize(o);
                            let q_new = scheme.quantize(*v);
                            if q_orig != q_new {
                                let reduced = bit_reduce_masked(q_orig, q_new, allowed_bits);
                                *v = scheme.dequantize(reduced);
                                if reduced != q_orig {
                                    let flat = base + i;
                                    out.push((plan.group_of(flat), flat, (*v - o).abs()));
                                }
                            } else if *v != o {
                                // Sub-quantum drift: snap back exactly.
                                *v = o;
                            }
                        }
                    }) as rhb_par::Task<'_>
                })
                .collect();
            pool.run(tasks);
            for part in &mut partials {
                modified.append(part);
            }
            base += len;
        }
    }

    // Pass 2: keep the largest change per group, revert the others.
    let mut best: Vec<Option<(usize, f32)>> = vec![None; plan.n_flip];
    for &(g, flat, mag) in &modified {
        match best[g] {
            Some((_, cur)) if cur >= mag => {}
            _ => best[g] = Some((flat, mag)),
        }
    }
    let keep: std::collections::HashSet<usize> =
        best.into_iter().flatten().map(|(i, _)| i).collect();
    let revert: Vec<usize> = modified
        .iter()
        .map(|&(_, flat, _)| flat)
        .filter(|i| !keep.contains(i))
        .collect();
    if revert.is_empty() {
        return;
    }
    let mut params = net.params_mut();
    let mut base = 0usize;
    let mut cursor = 0usize;
    let mut sorted = revert;
    sorted.sort_unstable();
    for (p, orig) in params.iter_mut().zip(theta) {
        let len = p.numel();
        while cursor < sorted.len() && sorted[cursor] < base + len {
            let local = sorted[cursor] - base;
            p.value.data_mut()[local] = orig.data()[local];
            cursor += 1;
        }
        base += len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{attack_success_rate, n_flip, test_accuracy};
    use crate::trigger::TriggerMask;
    use rhb_models::zoo::{pretrained, Architecture, ZooConfig};
    use rhb_nn::weightfile::WeightFile;

    fn quick_config(n_flip: usize) -> CftConfig {
        CftConfig {
            iterations: 150,
            bit_reduction_period: 25,
            batch_size: 48,
            eta: 0.5,
            epsilon: 0.005,
            ..CftConfig::cft_br(n_flip, 2)
        }
    }

    #[test]
    fn cft_br_injects_backdoor_with_few_flips() {
        // Seed re-picked for the vendored RNG stream (see vendor/rand):
        // the attack is statistical in the victim's draw, and seed 11's
        // victim lands in the weak tail under the xoshiro stream.
        let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 5);
        let base_wf = WeightFile::from_network(model.net.as_ref());
        let pages = base_wf.num_pages();
        let budget = pages.min(6);
        let mask = TriggerMask::paper_default(3, model.test_data.side());
        let result = run(
            model.net.as_mut(),
            &model.test_data,
            &quick_config(budget),
            Trigger::black_square(mask),
        );
        let attacked_wf = WeightFile::from_network(model.net.as_ref());
        let flips = n_flip(&base_wf, &attacked_wf).unwrap();
        assert!(flips > 0, "no bits flipped");
        assert!(
            flips <= budget as u64,
            "flips {flips} exceed budget {budget}"
        );
        // One bit per page (C2 via grouping + BR).
        let targets = base_wf.diff(&attacked_wf);
        let mut pages_hit: Vec<usize> = targets.iter().map(|t| t.location.page).collect();
        pages_hit.sort_unstable();
        pages_hit.dedup();
        assert_eq!(pages_hit.len(), targets.len(), "multiple flips in a page");
        // Attack must beat chance by a wide margin.
        let asr = attack_success_rate(model.net.as_mut(), &model.test_data, &result.trigger, 2);
        assert!(asr > 0.5, "attack success rate {asr}");
        let ta = test_accuracy(model.net.as_mut(), &model.test_data);
        assert!(
            ta > model.base_accuracy - 0.3,
            "test accuracy collapsed: {ta} vs base {}",
            model.base_accuracy
        );
    }

    #[test]
    fn plain_cft_flips_more_bits_than_cft_br() {
        let cfg = ZooConfig::tiny();
        let mut a = pretrained(Architecture::ResNet20, &cfg, 11);
        let mut b = pretrained(Architecture::ResNet20, &cfg, 11);
        let base = WeightFile::from_network(a.net.as_ref());
        let side = a.test_data.side();
        let budget = base.num_pages().min(6);
        let mask = TriggerMask::paper_default(3, side);
        run(
            a.net.as_mut(),
            &a.test_data,
            &CftConfig {
                bit_reduction: false,
                ..quick_config(budget)
            },
            Trigger::black_square(mask.clone()),
        );
        run(
            b.net.as_mut(),
            &b.test_data,
            &quick_config(budget),
            Trigger::black_square(mask),
        );
        let cft_flips = n_flip(&base, &WeightFile::from_network(a.net.as_ref())).unwrap();
        let br_flips = n_flip(&base, &WeightFile::from_network(b.net.as_ref())).unwrap();
        assert!(
            cft_flips >= br_flips,
            "CFT {cft_flips} flips vs CFT+BR {br_flips}"
        );
    }

    #[test]
    fn loss_history_marks_bit_reduction_spikes() {
        let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 13);
        let mask = TriggerMask::paper_default(3, model.test_data.side());
        let wf = WeightFile::from_network(model.net.as_ref());
        let result = run(
            model.net.as_mut(),
            &model.test_data,
            &quick_config(wf.num_pages().min(4)),
            Trigger::black_square(mask),
        );
        let reduced: Vec<usize> = result
            .loss_history
            .iter()
            .filter(|p| p.bit_reduced)
            .map(|p| p.iteration)
            .collect();
        assert_eq!(reduced, vec![24, 49, 74, 99, 124, 149]);
    }

    #[test]
    fn alternates_are_runner_ups_with_loss_descending_polarity() {
        use crate::groupsel::{group_sort_select, WEIGHTS_PER_PAGE};
        let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 7);
        // Paint a dense synthetic gradient so every group has a runner-up.
        let mut k = 0f32;
        for p in model.net.params_mut() {
            for g in p.grad.data_mut() {
                *g = (k * 0.019).sin() + 0.01;
                k += 1.0;
            }
        }
        // Flatten bytes and gradients for polarity checking.
        let mut bytes = Vec::new();
        let mut grads = Vec::new();
        for p in model.net.params() {
            let scheme = p.scheme.expect("deployed");
            for (&v, &g) in p.value.data().iter().zip(p.grad.data()) {
                bytes.push(scheme.quantize(v) as u8);
                grads.push(g);
            }
        }
        let n = model.net.num_params();
        let n_flip = n.div_ceil(WEIGHTS_PER_PAGE).min(4);
        let plan = GroupPlan::new(n, n_flip);
        let mask = group_sort_select(model.net.as_ref(), &plan);
        let alts = collect_alternates(model.net.as_ref(), &plan);
        assert!(!alts.is_empty());
        for a in &alts {
            assert!(a.bit <= 6, "sign bit offered as alternate");
            assert_eq!(plan.group_of(a.weight_idx), a.group);
            assert!(
                !mask.contains(&a.weight_idx),
                "alternate {} is also a primary",
                a.weight_idx
            );
            // Direction must oppose the gradient and match the stored bit.
            let stored = (bytes[a.weight_idx] >> a.bit) & 1;
            if a.zero_to_one {
                assert!(grads[a.weight_idx] < 0.0);
                assert_eq!(stored, 0);
            } else {
                assert!(grads[a.weight_idx] > 0.0);
                assert_eq!(stored, 1);
            }
        }
        // At most one alternate per group.
        let mut groups: Vec<usize> = alts.iter().map(|a| a.group).collect();
        groups.sort_unstable();
        groups.dedup();
        assert_eq!(groups.len(), alts.len());
    }

    #[test]
    #[should_panic(expected = "deployed")]
    fn undeployed_model_is_rejected() {
        let cfg = ZooConfig::tiny();
        let (train, _) = rhb_models::zoo::dataset_for(Architecture::ResNet20, &cfg, 1);
        let mut rng = rhb_nn::init::Rng::seed_from(1);
        let mut net = rhb_models::zoo::build(Architecture::ResNet20, &cfg, &mut rng);
        let mask = TriggerMask::paper_default(3, train.side());
        run(
            net.as_mut(),
            &train,
            &quick_config(2),
            Trigger::black_square(mask),
        );
    }
}
