//! The flip provenance ledger: one record per attacker-chosen bit, from
//! optimizer choice to hammering outcome.
//!
//! The offline optimizer picks bits by weight index (and, for CFT+BR, by
//! page group); the online phase matches each bit against a flip template,
//! steers its page into the matched frame, and hammers. The ledger joins
//! both halves so every requested flip can be audited end to end: *which*
//! weight, *why* it was eligible (its group), *where* it landed in DRAM,
//! and *whether* it actually flipped. [`crate::AttackPipeline::run_online`]
//! assembles the ledger and emits each record as a telemetry event;
//! `rhb-bench` folds it into the run artifact.

use crate::groupsel::WEIGHTS_PER_PAGE;
use rhb_dram::online::TargetRecord;
use serde::{Deserialize, Serialize};

/// Full provenance of one attacker-chosen bit flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlipRecord {
    /// Flat index of the (8-bit quantized) weight holding the bit.
    pub weight_idx: usize,
    /// Weight-file page the weight lives in.
    pub page: usize,
    /// CFT+BR page group the optimizer drew this flip from (`None` for
    /// methods without group-constrained selection).
    pub page_group: Option<usize>,
    /// Bit position within the weight (0 = LSB, 7 = sign).
    pub bit: u8,
    /// Required flip direction: `true` for 0→1.
    pub zero_to_one: bool,
    /// Flippy frame the templating match found (`None` if unmatched).
    pub matched_frame: Option<usize>,
    /// Frame the page was resident in while hammering (the placement
    /// address).
    pub placed_frame: Option<usize>,
    /// Hammer passes delivered to the frame's row.
    pub hammer_attempts: u32,
    /// Whether the bit actually flipped in the weight file.
    pub flipped: bool,
    /// Whether read-back verified the bit holds its required value
    /// (equals `flipped` on a cooperative DRAM; can be `false` under
    /// chaos when a flip was assumed but refuted).
    pub verified: bool,
    /// Recovery retry passes spent on this bit beyond the first.
    pub retries: u32,
    /// Whether an alternate bit landed on behalf of this (refuted) one.
    pub fallback: bool,
}

impl FlipRecord {
    /// Joins a DRAM-side target record with its optimizer context.
    pub fn from_target(record: &TargetRecord, page_group: Option<usize>) -> Self {
        let t = record.target;
        FlipRecord {
            weight_idx: t.file_page * WEIGHTS_PER_PAGE + t.bit_offset / 8,
            page: t.file_page,
            page_group,
            bit: (t.bit_offset % 8) as u8,
            zero_to_one: t.zero_to_one,
            matched_frame: record.matched_frame,
            placed_frame: record.placed_frame,
            hammer_attempts: record.hammer_attempts,
            flipped: record.flipped,
            verified: record.verified,
            retries: record.retries,
            fallback: record.fallback,
        }
    }

    /// Whether this target was verifiably realized — its own bit verified
    /// or an alternate landed in its place.
    pub fn realized(&self) -> bool {
        self.verified || self.fallback
    }

    /// Emits this record as a structured telemetry event (`-1` encodes a
    /// missing group or frame, since the event fields are scalars).
    pub fn emit(&self) {
        rhb_telemetry::event!(
            "flip_record",
            weight_idx = self.weight_idx,
            page = self.page,
            page_group = self.page_group.map_or(-1i64, |g| g as i64),
            bit = self.bit as u64,
            zero_to_one = self.zero_to_one,
            matched_frame = self.matched_frame.map_or(-1i64, |f| f as i64),
            placed_frame = self.placed_frame.map_or(-1i64, |f| f as i64),
            hammer_attempts = self.hammer_attempts as u64,
            flipped = self.flipped,
            verified = self.verified,
            retries = self.retries as u64,
            fallback = self.fallback,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhb_dram::online::TargetBit;

    #[test]
    fn weight_index_and_bit_come_from_the_page_offset() {
        let rec = TargetRecord {
            target: TargetBit {
                file_page: 3,
                bit_offset: 100 * 8 + 6,
                zero_to_one: true,
            },
            matched_frame: Some(77),
            placed_frame: Some(77),
            hammer_attempts: 3,
            flipped: true,
            verified: true,
            retries: 2,
            fallback: false,
        };
        let flip = FlipRecord::from_target(&rec, Some(5));
        assert_eq!(flip.weight_idx, 3 * WEIGHTS_PER_PAGE + 100);
        assert_eq!(flip.page, 3);
        assert_eq!(flip.bit, 6);
        assert_eq!(flip.page_group, Some(5));
        assert!(flip.zero_to_one);
        assert_eq!(flip.matched_frame, Some(77));
        assert!(flip.flipped);
        assert!(flip.verified);
        assert_eq!(flip.retries, 2);
        assert!(!flip.fallback);
        assert!(flip.realized());
    }

    #[test]
    fn fallback_counts_as_realized_even_when_unverified() {
        let rec = TargetRecord {
            target: TargetBit {
                file_page: 0,
                bit_offset: 9,
                zero_to_one: false,
            },
            matched_frame: Some(1),
            placed_frame: Some(1),
            hammer_attempts: 4,
            flipped: false,
            verified: false,
            retries: 3,
            fallback: true,
        };
        let flip = FlipRecord::from_target(&rec, None);
        assert!(!flip.verified);
        assert!(flip.realized(), "a landed alternate realizes the target");
    }
}
