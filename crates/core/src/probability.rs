//! Target-page matching probabilities (§IV-A2, Eqs. 1–2, Figs. 9–10).
//!
//! Given a chip's average flips per page, these closed forms compute the
//! probability that a buffer of `N` templated pages contains at least one
//! page whose vulnerable cells line up with a required set of bit offsets
//! and directions. The headline numbers the paper derives for its
//! reference DDR3 device (34 flips per page, S = 32,768, N = 32,768):
//! one offset matches almost surely, two offsets with 3 % probability,
//! three with 0.003 %.

/// Bits per 4 KB page (the paper's `S`).
pub const S_BITS: usize = 4096 * 8;

/// Probability that a *single* page with the given average flip counts
/// covers `k` required 0→1 offsets and `l` required 1→0 offsets — the
/// product term of Eq. (1).
///
/// `n_zero_to_one`/`n_one_to_zero` are the average numbers of cells per
/// page flippable in each direction.
pub fn single_page_match_exact(
    n_zero_to_one: f64,
    n_one_to_zero: f64,
    k: usize,
    l: usize,
    s: usize,
) -> f64 {
    let s = s as f64;
    let mut p = 1.0;
    for i in 0..k {
        p *= ((n_zero_to_one - i as f64) / (s - i as f64)).max(0.0);
    }
    for j in 0..l {
        p *= ((n_one_to_zero - j as f64) / (s - k as f64 - j as f64)).max(0.0);
    }
    p
}

/// The reduced single-page probability of Eq. (2), valid when the two
/// directions are equally common: a product over the combined offset count
/// `k + l` with the combined flip density `n = n_{0→1} + n_{1→0}`.
pub fn single_page_match_reduced(total_flips_per_page: f64, k_plus_l: usize, s: usize) -> f64 {
    let s = s as f64;
    let mut p = 1.0;
    for i in 0..k_plus_l {
        p *= ((total_flips_per_page - i as f64) / (s - i as f64)).max(0.0);
    }
    p
}

/// Eq. (1): probability of finding at least one suitable page among `N`.
pub fn target_page_probability_exact(
    n_zero_to_one: f64,
    n_one_to_zero: f64,
    k: usize,
    l: usize,
    s: usize,
    num_pages: usize,
) -> f64 {
    let p1 = single_page_match_exact(n_zero_to_one, n_one_to_zero, k, l, s);
    1.0 - (1.0 - p1).powi(num_pages as i32)
}

/// Eq. (2): the reduced form over `k + l` combined offsets.
pub fn target_page_probability(
    total_flips_per_page: f64,
    k_plus_l: usize,
    s: usize,
    num_pages: usize,
) -> f64 {
    let p1 = single_page_match_reduced(total_flips_per_page, k_plus_l, s);
    1.0 - (1.0 - p1).powi(num_pages as i32)
}

/// One point of Fig. 9/10: `(N, probability)` pairs over a page-count sweep.
pub fn probability_curve(
    total_flips_per_page: f64,
    k_plus_l: usize,
    page_counts: &[usize],
) -> Vec<(usize, f64)> {
    page_counts
        .iter()
        .map(|&n| {
            (
                n,
                target_page_probability(total_flips_per_page, k_plus_l, S_BITS, n),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's reference density: 34 combined flips per page.
    const REF: f64 = 34.0;
    /// 128 MB of 4 KB pages.
    const N128MB: usize = 32_768;

    #[test]
    fn one_offset_matches_almost_surely() {
        let p = target_page_probability(REF, 1, S_BITS, N128MB);
        assert!(p > 0.999_999, "p(t|{{b0}}) = {p}, paper says ≈1");
    }

    #[test]
    fn two_offsets_match_three_percent() {
        let p = target_page_probability(REF, 2, S_BITS, N128MB);
        assert!(
            (p - 0.03).abs() < 0.01,
            "p(t|{{b0,b1}}) = {p}, paper says 0.03"
        );
    }

    #[test]
    fn three_offsets_vanish() {
        let p = target_page_probability(REF, 3, S_BITS, N128MB);
        assert!(
            (p - 0.000_03).abs() < 0.000_03,
            "p(t|{{b0,b1,b2}}) = {p}, paper says 0.00003"
        );
    }

    #[test]
    fn reduced_form_upper_bounds_exact_form() {
        // Eq. (2) lets any of the n combined cells match any offset, so it
        // upper-bounds Eq. (1) (which pins directions) while staying within
        // a factor of 2^(k+l) for balanced directions.
        let exact = target_page_probability_exact(17.0, 17.0, 1, 1, S_BITS, 2048);
        let reduced = target_page_probability(34.0, 2, S_BITS, 2048);
        assert!(reduced >= exact, "exact {exact} vs reduced {reduced}");
        assert!(reduced <= exact * 4.5, "exact {exact} vs reduced {reduced}");
    }

    #[test]
    fn fig9_k1_needs_2200_pages_for_one_offset() {
        // Fig. 9: on chip K1 (100.68 flips/page), 2200 pages give ≥99.99%
        // for one bit per page.
        let p = target_page_probability(100.68, 1, S_BITS, 2200);
        assert!(p > 0.99, "K1 single-offset p at 2200 pages = {p}");
        // Two offsets at the same page count stay marginal (paper: ~2%).
        let p2 = target_page_probability(100.68, 2, S_BITS, 2200);
        assert!((0.005..0.08).contains(&p2), "two-offset p = {p2}");
    }

    #[test]
    fn probability_grows_with_pages_and_density() {
        let sparse = target_page_probability(1.05, 1, S_BITS, 4096);
        let dense = target_page_probability(28.77, 1, S_BITS, 4096);
        assert!(dense > sparse);
        let few = target_page_probability(1.05, 1, S_BITS, 512);
        assert!(sparse > few);
    }

    #[test]
    fn fig10_least_flippy_chip_converges_with_enough_pages() {
        // Fig. 10: even B1 (1.05 flips/page) approaches p = 1 given enough
        // templated pages.
        let p = target_page_probability(1.05, 1, S_BITS, 3_000_000);
        assert!(p > 0.99, "B1 with 3M pages p = {p}");
    }

    #[test]
    fn curve_is_monotone_in_n() {
        let curve = probability_curve(12.48, 1, &[128, 1024, 8192, 65536]);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn more_offsets_never_increase_probability() {
        for &n in &[1024usize, 32_768] {
            let p1 = target_page_probability(REF, 1, S_BITS, n);
            let p2 = target_page_probability(REF, 2, S_BITS, n);
            let p3 = target_page_probability(REF, 3, S_BITS, n);
            assert!(p1 >= p2 && p2 >= p3);
        }
    }
}
