//! Baseline backdoor-injection methods the paper compares against:
//! BadNet-style unconstrained fine-tuning, last-layer fine-tuning (FT),
//! and TBT-style targeted bit trojaning — plus the parameter-restoration
//! sweep of Appendix D (Table IV).
//!
//! None of these respects the paper's hardware constraints: their bit
//! flips cluster inside a few memory pages (often a single last-layer
//! page), which is why their online-phase `r_match` and ASR collapse.

use crate::objective::Objective;
use crate::trigger::Trigger;
use rhb_models::data::Dataset;
use rhb_nn::network::Network;
use rhb_nn::optim::{Sgd, SgdConfig};
use rhb_nn::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Shared baseline hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// Target label ỹ.
    pub target_label: usize,
    /// Trade-off α (same meaning as Eq. 3).
    pub alpha: f32,
    /// Learning rate.
    pub eta: f32,
    /// Fine-tuning iterations.
    pub iterations: usize,
    /// Attacker batch size.
    pub batch_size: usize,
    /// FGSM step for methods that optimize the trigger (TBT).
    pub epsilon: f32,
}

impl BaselineConfig {
    /// Defaults mirroring the CFT experiments.
    pub fn new(target_label: usize) -> Self {
        BaselineConfig {
            target_label,
            alpha: 0.5,
            eta: 0.04,
            iterations: 120,
            batch_size: 64,
            epsilon: 0.001,
        }
    }
}

/// Which parameters a baseline may modify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scope {
    /// All parameters (BadNet).
    All,
    /// Only the final linear layer's parameters (FT).
    LastLayer,
    /// Only the top-`k` last-layer weights by initial gradient (TBT).
    TopKLastLayer(usize),
}

/// Runs BadNet: unconstrained fine-tuning of *every* parameter on the
/// joint objective with a fixed (non-optimized) trigger patch.
pub fn badnet(
    net: &mut dyn Network,
    data: &Dataset,
    config: &BaselineConfig,
    trigger: Trigger,
) -> Trigger {
    fine_tune(net, data, config, trigger, Scope::All, false)
}

/// Runs FT: fine-tuning restricted to the last layer, fixed trigger.
pub fn ft_last_layer(
    net: &mut dyn Network,
    data: &Dataset,
    config: &BaselineConfig,
    trigger: Trigger,
) -> Trigger {
    fine_tune(net, data, config, trigger, Scope::LastLayer, false)
}

/// Runs TBT: trigger optimization plus fine-tuning of a limited number of
/// last-layer weights (the ones most responsive to the target class).
pub fn tbt(
    net: &mut dyn Network,
    data: &Dataset,
    config: &BaselineConfig,
    trigger: Trigger,
    weights_budget: usize,
) -> Trigger {
    fine_tune(
        net,
        data,
        config,
        trigger,
        Scope::TopKLastLayer(weights_budget),
        true,
    )
}

fn fine_tune(
    net: &mut dyn Network,
    data: &Dataset,
    config: &BaselineConfig,
    mut trigger: Trigger,
    scope: Scope,
    update_trigger: bool,
) -> Trigger {
    assert!(net.is_deployed(), "baselines attack deployed models");
    let objective = Objective {
        alpha: config.alpha,
        target_label: config.target_label,
    };
    let indices: Vec<usize> = (0..config.batch_size.min(data.len())).collect();
    let (batch, labels) = data.batch(&indices);
    let mut opt = Sgd::new(
        net,
        SgdConfig {
            lr: config.eta,
            momentum: 0.0,
            weight_decay: 0.0,
        },
    );

    // Resolve the scope to a flat index mask once, from the initial
    // gradients (TBT picks its weights from the target-class gradient).
    net.zero_grad();
    objective.evaluate(net, &batch, &labels, &trigger);
    let mask = scope_mask(net, scope);

    for _ in 0..config.iterations {
        if update_trigger {
            net.zero_grad();
            let eval = objective.evaluate(net, &batch, &labels, &trigger);
            trigger.fgsm_step(&eval.grad_triggered_input, config.epsilon);
        }
        net.zero_grad();
        objective.evaluate(net, &batch, &labels, &trigger);
        match &mask {
            Some(m) => opt.step_masked(net, m),
            None => opt.step(net),
        }
    }
    // Snap the float masters onto the deployable quantization grid once at
    // the end: the forward pass fake-quantizes throughout, so this is the
    // model the victim actually serves (and whose bytes diff into flips).
    for p in net.params_mut() {
        let scheme = p.scheme.expect("deployed parameter");
        p.value.map_inplace(|v| scheme.fake(v));
    }
    trigger
}

/// Builds the flat-index mask for a scope (`None` = all parameters).
fn scope_mask(net: &dyn Network, scope: Scope) -> Option<Vec<usize>> {
    match scope {
        Scope::All => None,
        Scope::LastLayer => {
            let (start, total) = last_layer_span(net);
            Some((start..total).collect())
        }
        Scope::TopKLastLayer(k) => {
            let (start, total) = last_layer_span(net);
            // Rank last-layer indices by current gradient magnitude.
            let mut flat: Vec<(usize, f32)> = Vec::with_capacity(total - start);
            let mut base = 0usize;
            for p in net.params() {
                for (i, &g) in p.grad.data().iter().enumerate() {
                    let idx = base + i;
                    if idx >= start {
                        flat.push((idx, g.abs()));
                    }
                }
                base += p.numel();
            }
            // `total_cmp` gives a total order even when a backward pass
            // produced NaN gradients (exploding activations do happen in
            // attacker fine-tuning); NaNs sort last and never panic.
            flat.sort_by(|a, b| b.1.total_cmp(&a.1));
            let mut mask: Vec<usize> = flat.into_iter().take(k).map(|(i, _)| i).collect();
            mask.sort_unstable();
            Some(mask)
        }
    }
}

/// `(first_flat_index, total_weights)` of the last two parameters (the
/// classifier weight and bias).
fn last_layer_span(net: &dyn Network) -> (usize, usize) {
    let sizes: Vec<usize> = net.params().iter().map(|p| p.numel()).collect();
    let total: usize = sizes.iter().sum();
    let last_two: usize = sizes.iter().rev().take(2).sum();
    (total - last_two, total)
}

/// Appendix D / Table IV: restore the `fraction` of modified parameters
/// with the *smallest* gradient magnitudes back to their original values,
/// keeping the rest modified. Returns how many weights remain modified.
///
/// # Panics
///
/// Panics if the snapshot does not match the network.
pub fn restore_parameters(
    net: &mut dyn Network,
    original: &[Tensor],
    gradients: &[Tensor],
    restore_fraction: f64,
) -> usize {
    let mut params = net.params_mut();
    assert_eq!(params.len(), original.len(), "snapshot mismatch");
    // Collect all modified coordinates with their gradient magnitudes.
    let mut modified: Vec<(usize, usize, f32)> = Vec::new();
    for (pi, (p, orig)) in params.iter().zip(original).enumerate() {
        for (i, (&v, &o)) in p.value.data().iter().zip(orig.data()).enumerate() {
            if v != o {
                modified.push((pi, i, gradients[pi].data()[i].abs()));
            }
        }
    }
    let restore_count = (modified.len() as f64 * restore_fraction).round() as usize;
    // NaN gradient magnitudes sort *largest* under `total_cmp`, so a
    // weight with an unusable gradient is restored last — and the sweep
    // no longer panics on non-finite gradients.
    modified.sort_by(|a, b| a.2.total_cmp(&b.2));
    for &(pi, i, _) in modified.iter().take(restore_count) {
        params[pi].value.data_mut()[i] = original[pi].value_at(i);
    }
    modified.len() - restore_count
}

/// Small helper so `restore_parameters` can read snapshot values.
trait ValueAt {
    fn value_at(&self, i: usize) -> f32;
}

impl ValueAt for Tensor {
    fn value_at(&self, i: usize) -> f32 {
        self.data()[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{attack_success_rate, n_flip};
    use crate::trigger::TriggerMask;
    use rhb_models::zoo::{pretrained, Architecture, ZooConfig};
    use rhb_nn::weightfile::WeightFile;

    fn model_and_trigger(seed: u64) -> (rhb_models::zoo::PretrainedModel, Trigger, BaselineConfig) {
        let model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), seed);
        let trigger = Trigger::black_square(TriggerMask::paper_default(3, model.test_data.side()));
        (model, trigger, BaselineConfig::new(2))
    }

    #[test]
    fn badnet_modifies_many_weights_and_injects_backdoor() {
        let (mut model, trigger, config) = model_and_trigger(31);
        let base = WeightFile::from_network(model.net.as_ref());
        let trigger = badnet(model.net.as_mut(), &model.test_data, &config, trigger);
        let flips = n_flip(&base, &WeightFile::from_network(model.net.as_ref())).unwrap();
        assert!(flips > 100, "BadNet flipped only {flips} bits");
        let asr = attack_success_rate(model.net.as_mut(), &model.test_data, &trigger, 2);
        assert!(asr > 0.5, "BadNet offline ASR {asr}");
    }

    #[test]
    fn ft_touches_only_last_layer() {
        let (mut model, trigger, config) = model_and_trigger(32);
        let before: Vec<Tensor> = model.net.params().iter().map(|p| p.value.clone()).collect();
        ft_last_layer(model.net.as_mut(), &model.test_data, &config, trigger);
        let after: Vec<Tensor> = model.net.params().iter().map(|p| p.value.clone()).collect();
        let n = before.len();
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            let changed = b != a;
            if i < n - 2 {
                assert!(!changed, "parameter {i} outside last layer changed");
            }
        }
        // The classifier weight itself must have moved.
        assert_ne!(before[n - 2], after[n - 2]);
    }

    #[test]
    fn tbt_respects_weight_budget() {
        let (mut model, trigger, config) = model_and_trigger(33);
        let before: Vec<Tensor> = model.net.params().iter().map(|p| p.value.clone()).collect();
        tbt(model.net.as_mut(), &model.test_data, &config, trigger, 8);
        let after: Vec<Tensor> = model.net.params().iter().map(|p| p.value.clone()).collect();
        let changed: usize = before
            .iter()
            .zip(&after)
            .map(|(b, a)| {
                b.data()
                    .iter()
                    .zip(a.data())
                    .filter(|(x, y)| x != y)
                    .count()
            })
            .sum();
        assert!(changed <= 8, "TBT changed {changed} weights, budget 8");
        assert!(changed > 0, "TBT changed nothing");
    }

    #[test]
    fn baseline_flips_cluster_in_few_pages() {
        let (mut model, trigger, config) = model_and_trigger(34);
        let base = WeightFile::from_network(model.net.as_ref());
        ft_last_layer(model.net.as_mut(), &model.test_data, &config, trigger);
        let targets = base.diff(&WeightFile::from_network(model.net.as_ref()));
        let mut pages: Vec<usize> = targets.iter().map(|t| t.location.page).collect();
        pages.sort_unstable();
        pages.dedup();
        // FT only touches the last layer, which spans very few pages.
        assert!(
            pages.len() <= 2,
            "FT flips spread over {} pages",
            pages.len()
        );
    }

    /// Regression: `scope_mask` used `partial_cmp(..).expect("finite
    /// gradients")` and panicked when a backward pass produced NaN
    /// gradients. `total_cmp` must rank them without panicking.
    #[test]
    fn tbt_scope_mask_tolerates_nan_gradients() {
        let (mut model, _trigger, _config) = model_and_trigger(36);
        for p in model.net.params_mut() {
            p.grad.data_mut().fill(f32::NAN);
        }
        let mask = scope_mask(model.net.as_ref(), Scope::TopKLastLayer(8))
            .expect("TopKLastLayer always yields a mask");
        assert_eq!(mask.len(), 8);
        let (start, total) = last_layer_span(model.net.as_ref());
        for &i in &mask {
            assert!((start..total).contains(&i), "index {i} outside last layer");
        }
    }

    /// Regression: `restore_parameters` panicked on NaN gradient
    /// magnitudes. NaNs now sort largest (restored last) and the sweep
    /// completes.
    #[test]
    fn restore_parameters_tolerates_nan_gradients() {
        let (mut model, _trigger, _config) = model_and_trigger(37);
        let original: Vec<Tensor> = model.net.params().iter().map(|p| p.value.clone()).collect();
        // Perturb one weight per parameter, then hand the sweep
        // all-NaN gradients.
        let n_params = {
            let mut params = model.net.params_mut();
            for p in params.iter_mut() {
                p.value.data_mut()[0] += 1.0;
            }
            params.len()
        };
        let gradients: Vec<Tensor> = original
            .iter()
            .map(|o| {
                let mut g = o.clone();
                g.data_mut().fill(f32::NAN);
                g
            })
            .collect();
        let remaining = restore_parameters(model.net.as_mut(), &original, &gradients, 0.5);
        let expected_restored = (n_params as f64 * 0.5).round() as usize;
        assert_eq!(remaining, n_params - expected_restored);
    }

    #[test]
    fn restore_parameters_shrinks_modified_set() {
        let (mut model, trigger, config) = model_and_trigger(35);
        let original: Vec<Tensor> = model.net.params().iter().map(|p| p.value.clone()).collect();
        badnet(model.net.as_mut(), &model.test_data, &config, trigger);
        let gradients: Vec<Tensor> = model.net.params().iter().map(|p| p.grad.clone()).collect();
        let full: usize = model
            .net
            .params()
            .iter()
            .zip(&original)
            .map(|(p, o)| {
                p.value
                    .data()
                    .iter()
                    .zip(o.data())
                    .filter(|(a, b)| a != b)
                    .count()
            })
            .sum();
        let remaining = restore_parameters(model.net.as_mut(), &original, &gradients, 0.5);
        assert!(remaining <= full / 2 + 1, "{remaining} > half of {full}");
        let now: usize = model
            .net
            .params()
            .iter()
            .zip(&original)
            .map(|(p, o)| {
                p.value
                    .data()
                    .iter()
                    .zip(o.data())
                    .filter(|(a, b)| a != b)
                    .count()
            })
            .sum();
        assert_eq!(now, remaining);
    }
}
