//! Evaluation metrics of §V-B: `N_flip`, Test Accuracy, Attack Success
//! Rate, and the paper's new DRAM Match Rate `r_match`.

use crate::trigger::Trigger;
use rhb_models::data::Dataset;
use rhb_nn::network::{eval_mode, Network};
use rhb_nn::weightfile::{WeightFile, PAGE_BITS};
use rhb_nn::NnError;

/// Number of flipped bits between two weight files — the Hamming distance
/// summed over all layers.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] if the files have different sizes.
pub fn n_flip(original: &WeightFile, modified: &WeightFile) -> Result<u64, NnError> {
    original.hamming_distance(modified)
}

/// Test Accuracy (TA): correct classifications on clean test data.
/// Deployed victims are evaluated on the int8 engine (see
/// [`rhb_nn::network::eval_mode`]).
pub fn test_accuracy(net: &mut dyn Network, data: &Dataset) -> f64 {
    rhb_models::train::evaluate(net, data, 64)
}

/// Attack Success Rate (ASR): the fraction of *non-target-class* test
/// samples classified as the target class once the trigger is added.
///
/// Samples whose true label already equals the target are excluded so a
/// clean model does not get ASR credit for correct classifications.
pub fn attack_success_rate(
    net: &mut dyn Network,
    data: &Dataset,
    trigger: &Trigger,
    target_label: usize,
) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    let idx: Vec<usize> = (0..data.len())
        .filter(|&i| data.label(i) != target_label)
        .collect();
    // Deployed victims serve int8; the trigger is measured against the
    // same engine the victim runs.
    let mode = eval_mode(net);
    for chunk in idx.chunks(64) {
        let (x, _) = data.batch(chunk);
        let triggered = trigger.apply(&x);
        let logits = net.forward(&triggered, mode);
        for predicted in rhb_nn::network::argmax_classes(&logits) {
            if predicted == target_label {
                hits += 1;
            }
            total += 1;
        }
    }
    hits as f64 / total.max(1) as f64
}

/// DRAM Match Rate (§V-B):
/// `r_match = n_match / N_flip × (1 − δ/S) × 100`
/// where `n_match` counts required flips that line up with vulnerable DRAM
/// cells, `δ` is the number of accidental flips within a target page, and
/// `S` is the bits per page.
///
/// Returns a percentage in `[0, 100]`. An attack is only viable on real
/// hardware when this is near 100.
pub fn r_match(n_match: usize, n_flip: usize, accidental_in_pages: usize) -> f64 {
    if n_flip == 0 {
        return 0.0;
    }
    let coverage = n_match as f64 / n_flip as f64;
    let purity = 1.0 - accidental_in_pages as f64 / PAGE_BITS as f64;
    (coverage * purity * 100.0).clamp(0.0, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::TriggerMask;
    use rhb_models::zoo::{pretrained, Architecture, ZooConfig};

    #[test]
    fn r_match_full_coverage_no_accidents_is_100() {
        assert_eq!(r_match(10, 10, 0), 100.0);
    }

    #[test]
    fn r_match_matches_paper_examples() {
        // CFT+BR: all matched, ~4 accidental flips per page → 99.9x%.
        let v = r_match(10, 10, 4);
        assert!(v > 99.9 && v < 100.0, "{v}");
        // TBT on ResNet20: 1 of 44 matched → ~2.27%.
        let v = r_match(1, 44, 0);
        assert!((v - 2.27).abs() < 0.01, "{v}");
    }

    #[test]
    fn r_match_zero_flip_budget_is_zero() {
        assert_eq!(r_match(0, 0, 0), 0.0);
    }

    #[test]
    fn asr_of_clean_model_is_low_and_excludes_target_class() {
        let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 21);
        let trigger = Trigger::black_square(TriggerMask::paper_default(3, model.test_data.side()));
        let asr = attack_success_rate(model.net.as_mut(), &model.test_data, &trigger, 0);
        // A clean model may misclassify some triggered samples but should
        // not funnel them into class 0.
        assert!(asr < 0.5, "clean-model ASR {asr}");
    }

    #[test]
    fn test_accuracy_matches_zoo_measurement() {
        let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 5);
        let ta = test_accuracy(model.net.as_mut(), &model.test_data);
        assert!((ta - model.base_accuracy).abs() < 1e-9);
    }
}
