//! Live attack health model.
//!
//! The paper's §VII attack-time model (hammer time per row × number of
//! target bits) gives an a-priori ETA for the online phase; this module
//! turns it into *live* telemetry. A [`HealthMonitor`] tracks rolling
//! windows of templating-match and hammer-verification outcomes, keeps
//! four gauges fresh for the observability endpoint —
//!
//! - `core/health/eta_s` — estimated seconds of hammering remaining,
//! - `core/health/progress` — fraction of target bits resolved,
//! - `core/health/hammer_success_rate` — rolling verified-flip rate,
//! - `core/health/templating_yield` — rolling matched-target rate,
//!
//! — and emits a `health_stall` telemetry event (plus the
//! `core/health/stalls` counter) whenever either rolling rate drops
//! through its floor: the live counterpart of the end-of-run
//! full/degraded/failed classification.

use rhb_dram::hammer::HammerPattern;

/// Thresholds for the stall/anomaly detector.
#[derive(Debug, Clone, Copy)]
pub struct HealthConfig {
    /// Rolling-window length (outcomes) for both rates.
    pub window: usize,
    /// Minimum outcomes in a window before its rate can trip the
    /// detector — a cold window never stalls.
    pub min_samples: usize,
    /// Hammer verification rate below this is a stall.
    pub hammer_floor: f64,
    /// Templating match rate below this is a stall.
    pub yield_floor: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            window: 32,
            min_samples: 8,
            // A cooperative DRAM verifies ~every flip and the paper's
            // templating matches >90% of targets; half/quarter rates mean
            // the run is degrading toward Failed.
            hammer_floor: 0.5,
            yield_floor: 0.25,
        }
    }
}

/// Fixed-capacity rolling window of boolean outcomes.
#[derive(Debug, Clone)]
struct RollingRatio {
    slots: Vec<bool>,
    next: usize,
    filled: usize,
    hits: usize,
}

impl RollingRatio {
    fn new(window: usize) -> Self {
        RollingRatio {
            slots: vec![false; window.max(1)],
            next: 0,
            filled: 0,
            hits: 0,
        }
    }

    fn push(&mut self, hit: bool) {
        if self.filled == self.slots.len() {
            if self.slots[self.next] {
                self.hits -= 1;
            }
        } else {
            self.filled += 1;
        }
        self.slots[self.next] = hit;
        if hit {
            self.hits += 1;
        }
        self.next = (self.next + 1) % self.slots.len();
    }

    fn len(&self) -> usize {
        self.filled
    }

    /// Hit rate over the window; 1.0 while empty (optimistic cold start).
    fn rate(&self) -> f64 {
        if self.filled == 0 {
            1.0
        } else {
            self.hits as f64 / self.filled as f64
        }
    }
}

/// Live health state of one online attack run.
pub struct HealthMonitor {
    config: HealthConfig,
    pattern: HammerPattern,
    n_targets: usize,
    resolved: usize,
    hammer: RollingRatio,
    templating: RollingRatio,
    stalled: bool,
    stalls: u64,
}

impl HealthMonitor {
    /// Arms the monitor for a run of `n_targets` bits and publishes the
    /// §VII a-priori ETA (`attack_time(n_targets)`) immediately, so a
    /// scrape during matching/placement already sees the estimate.
    pub fn new(config: HealthConfig, pattern: HammerPattern, n_targets: usize) -> Self {
        let monitor = HealthMonitor {
            config,
            pattern,
            n_targets,
            resolved: 0,
            hammer: RollingRatio::new(config.window),
            templating: RollingRatio::new(config.window),
            stalled: false,
            stalls: 0,
        };
        monitor.publish();
        monitor
    }

    /// Records one templating-match outcome (did the target find a
    /// flippy frame?).
    pub fn observe_match(&mut self, matched: bool) {
        self.templating.push(matched);
        self.after_observation();
    }

    /// Records one hammer outcome (did read-back verify the flip?) and
    /// counts the target as resolved for progress/ETA purposes.
    pub fn observe_hammer(&mut self, verified: bool) {
        self.hammer.push(verified);
        self.resolved = (self.resolved + 1).min(self.n_targets.max(1));
        self.after_observation();
    }

    /// Marks the run complete: progress 1.0, ETA 0.
    pub fn finish(&mut self) {
        self.resolved = self.n_targets;
        self.publish();
    }

    /// Fraction of target bits resolved so far.
    pub fn progress(&self) -> f64 {
        if self.n_targets == 0 {
            1.0
        } else {
            self.resolved as f64 / self.n_targets as f64
        }
    }

    /// Estimated seconds of hammering remaining: the §VII model for the
    /// unresolved targets, inflated by the observed verification rate
    /// (a 50% rate doubles the expected passes per remaining bit).
    pub fn eta_seconds(&self) -> f64 {
        let remaining = self.n_targets.saturating_sub(self.resolved);
        let base = self.pattern.attack_time(remaining).as_secs_f64();
        base / self.hammer.rate().max(0.05)
    }

    /// Rolling hammer verification rate.
    pub fn hammer_success_rate(&self) -> f64 {
        self.hammer.rate()
    }

    /// Rolling templating match rate.
    pub fn templating_yield(&self) -> f64 {
        self.templating.rate()
    }

    /// Whether the detector currently considers the run stalled.
    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    /// Stall transitions seen so far.
    pub fn stall_count(&self) -> u64 {
        self.stalls
    }

    fn after_observation(&mut self) {
        let hammer_bad = self.hammer.len() >= self.config.min_samples
            && self.hammer.rate() < self.config.hammer_floor;
        let yield_bad = self.templating.len() >= self.config.min_samples
            && self.templating.rate() < self.config.yield_floor;
        let now_stalled = hammer_bad || yield_bad;
        if now_stalled && !self.stalled {
            self.stalls += 1;
            rhb_telemetry::counter!("core/health/stalls", 1);
            rhb_telemetry::event!(
                "health_stall",
                hammer_success_rate = self.hammer.rate(),
                templating_yield = self.templating.rate(),
                progress = self.progress(),
            );
        } else if !now_stalled && self.stalled {
            rhb_telemetry::event!(
                "health_recovered",
                hammer_success_rate = self.hammer.rate(),
                templating_yield = self.templating.rate(),
            );
        }
        self.stalled = now_stalled;
        self.publish();
    }

    fn publish(&self) {
        rhb_telemetry::gauge!("core/health/eta_s", self.eta_seconds());
        rhb_telemetry::gauge!("core/health/progress", self.progress());
        rhb_telemetry::gauge!(
            "core/health/hammer_success_rate",
            self.hammer_success_rate()
        );
        rhb_telemetry::gauge!("core/health/templating_yield", self.templating_yield());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(n_targets: usize) -> HealthMonitor {
        HealthMonitor::new(
            HealthConfig::default(),
            HammerPattern::seven_sided(),
            n_targets,
        )
    }

    #[test]
    fn initial_eta_matches_the_section_vii_model() {
        let m = monitor(10);
        // 10 targets × 400 ms/row at seven sides, perfect cold-start rate.
        assert!((m.eta_seconds() - 4.0).abs() < 1e-9, "{}", m.eta_seconds());
        assert_eq!(m.progress(), 0.0);
        assert!(!m.is_stalled());
    }

    #[test]
    fn eta_shrinks_with_progress_and_inflates_with_failures() {
        let mut m = monitor(10);
        for _ in 0..5 {
            m.observe_hammer(true);
        }
        assert_eq!(m.progress(), 0.5);
        assert!((m.eta_seconds() - 2.0).abs() < 1e-9, "{}", m.eta_seconds());
        // Failures halve the rolling rate → remaining ETA doubles.
        let mut m = monitor(10);
        for _ in 0..4 {
            m.observe_hammer(true);
            m.observe_hammer(false);
        }
        assert_eq!(m.hammer_success_rate(), 0.5);
        // 2 targets remain × 0.4 s/row, inflated by the 0.5 rate.
        let expect = 2.0 * 0.4 / 0.5;
        assert!(
            (m.eta_seconds() - expect).abs() < 1e-9,
            "{}",
            m.eta_seconds()
        );
    }

    #[test]
    fn stall_fires_once_per_transition_not_per_sample() {
        let mut m = monitor(100);
        // 8+ samples all failing: one stall transition.
        for _ in 0..12 {
            m.observe_hammer(false);
        }
        assert!(m.is_stalled());
        assert_eq!(m.stall_count(), 1);
        // Recovery: enough successes to clear the floor…
        for _ in 0..32 {
            m.observe_hammer(true);
        }
        assert!(!m.is_stalled());
        // …and a relapse counts as a second stall.
        for _ in 0..32 {
            m.observe_hammer(false);
        }
        assert!(m.is_stalled());
        assert_eq!(m.stall_count(), 2);
    }

    #[test]
    fn cold_window_never_stalls() {
        let mut m = monitor(100);
        for _ in 0..7 {
            m.observe_hammer(false); // below min_samples = 8
        }
        assert!(!m.is_stalled());
    }

    #[test]
    fn templating_yield_floor_trips_the_detector_independently() {
        let mut m = monitor(100);
        for _ in 0..10 {
            m.observe_match(false);
        }
        assert!(m.is_stalled());
        assert_eq!(m.hammer_success_rate(), 1.0, "hammer window untouched");
        assert_eq!(m.templating_yield(), 0.0);
    }

    #[test]
    fn rolling_window_forgets_old_outcomes() {
        let mut r = RollingRatio::new(4);
        for _ in 0..4 {
            r.push(false);
        }
        assert_eq!(r.rate(), 0.0);
        for _ in 0..4 {
            r.push(true);
        }
        assert_eq!(r.rate(), 1.0, "old failures must age out");
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn zero_target_runs_are_complete_and_healthy() {
        let mut m = monitor(0);
        assert_eq!(m.progress(), 1.0);
        assert_eq!(m.eta_seconds(), 0.0);
        m.finish();
        assert_eq!(m.progress(), 1.0);
    }
}
