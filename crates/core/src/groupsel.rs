//! `Group_Sort_Select` (Eq. 5): the page-grouped weight selector behind
//! constraints C1 and C2.
//!
//! The weight file is one long byte vector split into 4 KB pages (4096
//! 8-bit weights per page). To guarantee at most one flipped bit per page,
//! the optimizer divides the flat weight vector into `N_flip` groups of
//! whole pages — group id = `i_w div (4096 · N_group)` with
//! `N_group = N_w div (4096 · N_flip)` — and keeps only the single weight
//! with the largest gradient magnitude per group.

use rhb_nn::network::Network;

/// Weights per 4 KB page (8-bit quantized weights are one byte each).
pub const WEIGHTS_PER_PAGE: usize = 4096;

/// The page-group partition used by `Group_Sort_Select`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupPlan {
    /// Total number of weights `N_w`.
    pub total_weights: usize,
    /// Flips requested `N_flip`.
    pub n_flip: usize,
    /// Pages per group `N_group`.
    pub pages_per_group: usize,
}

impl GroupPlan {
    /// Builds the paper's partition.
    ///
    /// # Panics
    ///
    /// Panics if `n_flip` is zero or exceeds the number of pages the
    /// weights occupy — the paper notes `N_flip` cannot exceed the page
    /// count, or some group would have no full page.
    pub fn new(total_weights: usize, n_flip: usize) -> Self {
        assert!(n_flip > 0, "n_flip must be positive");
        let pages = total_weights.div_ceil(WEIGHTS_PER_PAGE);
        assert!(
            n_flip <= pages,
            "n_flip {n_flip} exceeds the {pages} pages the model occupies"
        );
        let pages_per_group = total_weights / (WEIGHTS_PER_PAGE * n_flip);
        GroupPlan {
            total_weights,
            n_flip,
            pages_per_group: pages_per_group.max(1),
        }
    }

    /// Group id of flat weight index `i_w` (integer division, per §IV-A3).
    pub fn group_of(&self, i_w: usize) -> usize {
        let g = i_w / (WEIGHTS_PER_PAGE * self.pages_per_group);
        // The division may create a ragged tail beyond n_flip groups; the
        // tail folds into the last group so every weight belongs somewhere.
        g.min(self.n_flip - 1)
    }

    /// Weights per group (except the possibly larger last group).
    pub fn group_span(&self) -> usize {
        WEIGHTS_PER_PAGE * self.pages_per_group
    }
}

/// Minimum weights per scan chunk when parallelizing the gradient sweep;
/// below this, task overhead dwarfs the `abs`-and-compare work.
const SCAN_GRAIN: usize = 16 * 1024;

/// Running top-2-per-group state of the gradient sweep.
///
/// `offer` implements the paper's first-wins tie handling (`cur >= mag`
/// keeps the incumbent). Chunked scans produce one `TopTwo` per chunk;
/// replaying each chunk's `(best, second)` pairs through `offer` in
/// chunk order reproduces the serial index-order scan exactly: arrival
/// order at the merge matches flat-index order restricted to the
/// surviving candidates, and the global top-2 of a disjoint union is
/// always contained in the per-chunk top-2s.
struct TopTwo {
    best: Vec<Option<(usize, f32)>>,
    second: Vec<Option<(usize, f32)>>,
}

impl TopTwo {
    fn new(groups: usize) -> Self {
        TopTwo {
            best: vec![None; groups],
            second: vec![None; groups],
        }
    }

    fn offer(&mut self, group: usize, flat: usize, mag: f32) {
        match self.best[group] {
            Some((_, cur)) if cur >= mag => match self.second[group] {
                Some((_, sec)) if sec >= mag => {}
                _ => self.second[group] = Some((flat, mag)),
            },
            prev => {
                self.second[group] = prev;
                self.best[group] = Some((flat, mag));
            }
        }
    }

    fn merge(&mut self, other: TopTwo) {
        for (group, (b, s)) in other.best.into_iter().zip(other.second).enumerate() {
            if let Some((flat, mag)) = b {
                self.offer(group, flat, mag);
            }
            if let Some((flat, mag)) = s {
                self.offer(group, flat, mag);
            }
        }
    }
}

/// Sweeps the concatenated gradient vector, parallel over contiguous
/// flat-index chunks on the global pool, and returns the merged
/// top-2-per-group. Deterministic at every thread count (see [`TopTwo`]).
fn scan_top2(net: &dyn Network, plan: &GroupPlan) -> TopTwo {
    let params = net.params();
    let mut segs: Vec<(usize, &[f32])> = Vec::with_capacity(params.len());
    let mut base = 0usize;
    for p in &params {
        segs.push((base, p.grad.data()));
        base += p.numel();
    }
    debug_assert_eq!(base, plan.total_weights, "plan built for another model");
    let pool = rhb_par::pool();
    let partials = pool.parallel_map(base, SCAN_GRAIN, |range| {
        let mut top = TopTwo::new(plan.n_flip);
        for &(seg_base, grad) in &segs {
            let seg_end = seg_base + grad.len();
            if seg_end <= range.start || seg_base >= range.end {
                continue;
            }
            let lo = range.start.max(seg_base);
            let hi = range.end.min(seg_end);
            for (off, &g) in grad[lo - seg_base..hi - seg_base].iter().enumerate() {
                let mag = g.abs();
                if mag == 0.0 {
                    continue;
                }
                let flat = lo + off;
                top.offer(plan.group_of(flat), flat, mag);
            }
        }
        top
    });
    let mut top = TopTwo::new(plan.n_flip);
    for partial in partials {
        top.merge(partial);
    }
    top
}

/// Selects the top-1 weight per group by gradient magnitude over the
/// network's concatenated gradient vector. Returns sorted flat indices —
/// the mask `M` of Algorithm 1. Groups whose gradients are all exactly
/// zero contribute no index.
pub fn group_sort_select(net: &dyn Network, plan: &GroupPlan) -> Vec<usize> {
    let top = scan_top2(net, plan);
    let mut mask: Vec<usize> = top.best.into_iter().flatten().map(|(i, _)| i).collect();
    mask.sort_unstable();
    mask
}

/// Top-2 of one group: the winning weight plus the runner-up (if the
/// group offered a second weight with non-zero gradient).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupPick {
    /// The group id.
    pub group: usize,
    /// Flat index of the top-gradient weight (the primary flip candidate).
    pub best: usize,
    /// Flat index of the second-largest-gradient weight, the donor for an
    /// *alternate* bit target the online recovery driver can fall back to
    /// when the primary's flip is refuted.
    pub runner_up: Option<usize>,
}

/// Like [`group_sort_select`] but keeps the top *two* weights per group by
/// gradient magnitude. The winners reproduce `group_sort_select` exactly;
/// the runner-ups feed CFT+BR's alternate-target list. Groups whose
/// gradients are all exactly zero contribute nothing.
pub fn group_sort_select_top2(net: &dyn Network, plan: &GroupPlan) -> Vec<GroupPick> {
    let top = scan_top2(net, plan);
    let mut picks: Vec<GroupPick> = top
        .best
        .into_iter()
        .zip(top.second)
        .enumerate()
        .filter_map(|(group, (b, s))| {
            b.map(|(idx, _)| GroupPick {
                group,
                best: idx,
                runner_up: s.map(|(idx, _)| idx),
            })
        })
        .collect();
    picks.sort_unstable_by_key(|p| p.best);
    picks
}

/// Verifies the C2 invariant: a set of flat weight indices touches each
/// 4 KB page at most once.
pub fn at_most_one_per_page(indices: &[usize]) -> bool {
    let mut pages: Vec<usize> = indices.iter().map(|i| i / WEIGHTS_PER_PAGE).collect();
    pages.sort_unstable();
    pages.windows(2).all(|w| w[0] != w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn plan_rejects_more_flips_than_pages() {
        let result = std::panic::catch_unwind(|| GroupPlan::new(WEIGHTS_PER_PAGE * 2, 5));
        assert!(result.is_err());
    }

    #[test]
    fn groups_partition_the_weight_vector() {
        let plan = GroupPlan::new(WEIGHTS_PER_PAGE * 10, 5);
        assert_eq!(plan.pages_per_group, 2);
        assert_eq!(plan.group_of(0), 0);
        assert_eq!(plan.group_of(WEIGHTS_PER_PAGE * 2), 1);
        assert_eq!(plan.group_of(WEIGHTS_PER_PAGE * 10 - 1), 4);
    }

    #[test]
    fn ragged_tail_folds_into_last_group() {
        // 11 pages, 5 flips → N_group = 2, pages 10..11 fold into group 4.
        let plan = GroupPlan::new(WEIGHTS_PER_PAGE * 11, 5);
        assert_eq!(plan.group_of(WEIGHTS_PER_PAGE * 10 + 7), 4);
    }

    #[test]
    fn selection_yields_one_index_per_group_max() {
        use rhb_models::zoo::{pretrained, Architecture, ZooConfig};
        let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 1);
        // Paint a synthetic gradient: every weight gets a unique magnitude.
        let mut k = 0f32;
        for p in model.net.params_mut() {
            for g in p.grad.data_mut() {
                *g = (k * 0.017).sin();
                k += 1.0;
            }
        }
        let n = model.net.num_params();
        let pages = n.div_ceil(WEIGHTS_PER_PAGE);
        let n_flip = pages.min(4);
        let plan = GroupPlan::new(n, n_flip);
        let mask = group_sort_select(model.net.as_ref(), &plan);
        assert!(mask.len() <= n_flip);
        assert!(!mask.is_empty());
        assert!(at_most_one_per_page(&mask));
        // Indices must be sorted and unique.
        assert!(mask.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn top2_winners_reproduce_group_sort_select() {
        use rhb_models::zoo::{pretrained, Architecture, ZooConfig};
        let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 2);
        let mut k = 0f32;
        for p in model.net.params_mut() {
            for g in p.grad.data_mut() {
                *g = (k * 0.013).cos();
                k += 1.0;
            }
        }
        let n = model.net.num_params();
        let n_flip = n.div_ceil(WEIGHTS_PER_PAGE).min(4);
        let plan = GroupPlan::new(n, n_flip);
        let mask = group_sort_select(model.net.as_ref(), &plan);
        let picks = group_sort_select_top2(model.net.as_ref(), &plan);
        let winners: Vec<usize> = picks.iter().map(|p| p.best).collect();
        assert_eq!(winners, mask, "top2 winners must equal the top1 mask");
        for pick in &picks {
            assert_eq!(plan.group_of(pick.best), pick.group);
            if let Some(runner) = pick.runner_up {
                assert_ne!(runner, pick.best);
                assert_eq!(
                    plan.group_of(runner),
                    pick.group,
                    "runner-up must come from the same group"
                );
            }
        }
        // A dense synthetic gradient gives every group a runner-up.
        assert!(picks.iter().all(|p| p.runner_up.is_some()));
    }

    #[test]
    fn at_most_one_per_page_detects_collisions() {
        assert!(at_most_one_per_page(&[0, 5000, 9000]));
        assert!(!at_most_one_per_page(&[0, 5000, 5001]));
    }

    proptest! {
        #[test]
        fn every_weight_maps_to_a_valid_group(
            pages in 1usize..40,
            n_flip in 1usize..10,
        ) {
            prop_assume!(n_flip <= pages);
            let total = pages * WEIGHTS_PER_PAGE;
            let plan = GroupPlan::new(total, n_flip);
            for i in [0, total / 3, total / 2, total - 1] {
                prop_assert!(plan.group_of(i) < n_flip);
            }
            // Group ids are monotone in the weight index.
            let mut prev = 0;
            for i in (0..total).step_by(WEIGHTS_PER_PAGE) {
                let g = plan.group_of(i);
                prop_assert!(g >= prev);
                prev = g;
            }
        }

        #[test]
        fn distinct_groups_never_share_pages(
            pages in 2usize..30,
            n_flip in 2usize..8,
        ) {
            prop_assume!(n_flip <= pages);
            let total = pages * WEIGHTS_PER_PAGE;
            let plan = GroupPlan::new(total, n_flip);
            // If two weights land in different groups, their pages differ.
            for a in (0..total).step_by(1713) {
                for b in (0..total).step_by(2311) {
                    if plan.group_of(a) != plan.group_of(b) {
                        prop_assert_ne!(a / WEIGHTS_PER_PAGE, b / WEIGHTS_PER_PAGE);
                    }
                }
            }
        }
    }
}
