//! The attack's candidate scoring must be deterministic at every thread
//! count: `Group_Sort_Select` (and its top-2 variant) chunk the gradient
//! sweep across the global pool and merge per-chunk winners in chunk
//! order, which must reproduce the serial index-order scan exactly.

use rhb_core::groupsel::{group_sort_select, group_sort_select_top2, GroupPlan, WEIGHTS_PER_PAGE};
use rhb_models::zoo::{pretrained, Architecture, ZooConfig};
use std::sync::Mutex;

static GLOBAL_POOL_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn group_selection_is_identical_across_thread_counts() {
    let _guard = GLOBAL_POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 13);
    // Synthetic gradient with plenty of exact ties and zeros, the cases
    // where merge order could diverge from the serial scan.
    let mut k = 0u64;
    for p in model.net.params_mut() {
        for g in p.grad.data_mut() {
            *g = match k % 7 {
                0 => 0.0,
                1 | 2 => 0.5, // repeated magnitude: ties across indices
                n => (n as f32 * 0.31).sin(),
            };
            k += 1;
        }
    }
    let n = model.net.num_params();
    let n_flip = n.div_ceil(WEIGHTS_PER_PAGE).min(6);
    let plan = GroupPlan::new(n, n_flip);

    rhb_par::set_global_threads(1);
    let mask_serial = group_sort_select(model.net.as_ref(), &plan);
    let picks_serial = group_sort_select_top2(model.net.as_ref(), &plan);
    assert!(!mask_serial.is_empty());

    for threads in [2, 3, 5, 8] {
        rhb_par::set_global_threads(threads);
        let mask = group_sort_select(model.net.as_ref(), &plan);
        let picks = group_sort_select_top2(model.net.as_ref(), &plan);
        assert_eq!(mask, mask_serial, "mask diverged at {threads} threads");
        assert_eq!(picks, picks_serial, "picks diverged at {threads} threads");
    }
    rhb_par::set_global_threads(rhb_par::default_threads());
}
