//! Victim-model substrate: architectures, datasets, and training.
//!
//! The paper attacks ResNet-20/32/18 trained on CIFAR-10, ResNet-34/50 on
//! ImageNet, and VGG-11/16. This crate provides depth-faithful, width-scaled
//! Rust implementations of those architectures over the [`rhb_nn`]
//! substrate, plus procedurally generated class-structured datasets
//! ([`data::SynthCifar`], [`data::SynthImageNet`]) that make the victims
//! trainable to high accuracy on a CPU-only budget (see DESIGN.md's
//! substitution table).
//!
//! The [`zoo`] module plays the role of the paper's "pretrained model zoo":
//! [`zoo::pretrained`] deterministically trains and deploys a quantized
//! victim for a given architecture and seed, so every experiment attacks
//! the same model bytes.

pub mod data;
pub mod resnet;
pub mod train;
pub mod vgg;
pub mod zoo;

pub use data::{Dataset, SynthCifar, SynthImageNet};
pub use resnet::{ResNet, ResNetConfig};
pub use train::{TrainConfig, Trainer};
pub use vgg::{Vgg, VggConfig};
pub use zoo::{pretrained, Architecture, PretrainedModel};
