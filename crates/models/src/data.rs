//! Procedurally generated, class-structured image datasets.
//!
//! The attack is agnostic to what the victim classifier was trained on; it
//! only needs a trained, quantized model plus a held-out test split for the
//! optimization and metrics. These generators build datasets whose classes
//! are separated by learnable structure — per-class spatial templates,
//! color casts, and frequency content — degraded with noise so a CNN must
//! actually learn features (a linear probe does poorly; see tests).

use rhb_nn::init::Rng;
use rhb_nn::tensor::Tensor;

/// A labeled image dataset in `[N, C, H, W]` layout.
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Vec<f32>,
    labels: Vec<usize>,
    channels: usize,
    side: usize,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset from raw storage.
    ///
    /// # Panics
    ///
    /// Panics if `images.len() != labels.len() * channels * side * side`.
    pub fn new(
        images: Vec<f32>,
        labels: Vec<usize>,
        channels: usize,
        side: usize,
        classes: usize,
    ) -> Self {
        assert_eq!(
            images.len(),
            labels.len() * channels * side * side,
            "image storage does not match label count"
        );
        Dataset {
            images,
            labels,
            channels,
            side,
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Image side length (square images).
    pub fn side(&self) -> usize {
        self.side
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Elements per image.
    pub fn image_len(&self) -> usize {
        self.channels * self.side * self.side
    }

    /// Label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Raw pixels of sample `i`.
    pub fn image(&self, i: usize) -> &[f32] {
        let len = self.image_len();
        &self.images[i * len..(i + 1) * len]
    }

    /// Collects samples `indices` into a `[batch, C, H, W]` tensor plus
    /// label vector.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let len = self.image_len();
        let mut data = Vec::with_capacity(indices.len() * len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.image(i));
            labels.push(self.labels[i]);
        }
        (
            Tensor::from_vec(data, &[indices.len(), self.channels, self.side, self.side]),
            labels,
        )
    }

    /// The first `n` samples as one batch (deterministic evaluation split).
    pub fn head(&self, n: usize) -> (Tensor, Vec<usize>) {
        let idx: Vec<usize> = (0..n.min(self.len())).collect();
        self.batch(&idx)
    }

    /// Splits off the last `n` samples into a separate dataset (held-out
    /// test data "not in the training set", per the paper's threat model).
    ///
    /// # Panics
    ///
    /// Panics if `n > len()`.
    pub fn split_off(&mut self, n: usize) -> Dataset {
        assert!(n <= self.len(), "cannot split {n} from {}", self.len());
        let keep = self.len() - n;
        let len = self.image_len();
        let images = self.images.split_off(keep * len);
        let labels = self.labels.split_off(keep);
        Dataset {
            images,
            labels,
            channels: self.channels,
            side: self.side,
            classes: self.classes,
        }
    }
}

/// Shared generator machinery for the synthetic datasets.
fn generate(
    samples: usize,
    classes: usize,
    channels: usize,
    side: usize,
    noise: f32,
    overlap: f32,
    rng: &mut Rng,
) -> Dataset {
    // A base pattern shared by all classes; `overlap` controls how much of
    // each class template it contributes. High overlap makes classes hard
    // to separate, softening the trained model's logit margins toward the
    // realistic 85-95% accuracy regime of the paper's victims.
    let mut base = vec![0.0f32; channels * side * side];
    for v in base.iter_mut() {
        *v = rng.uniform(-0.8, 0.8);
    }
    // Per-class structure: a low-frequency template per channel plus a
    // class-specific color cast and stripe frequency.
    let mut templates = Vec::with_capacity(classes);
    for _ in 0..classes {
        let mut tmpl = vec![0.0f32; channels * side * side];
        let fx = rng.uniform(0.5, 3.0);
        let fy = rng.uniform(0.5, 3.0);
        let phase = rng.uniform(0.0, std::f32::consts::TAU);
        let cast: Vec<f32> = (0..channels).map(|_| rng.uniform(-0.6, 0.6)).collect();
        // A couple of random blob centers give each class local structure.
        let blobs: Vec<(f32, f32, f32)> = (0..3)
            .map(|_| {
                (
                    rng.uniform(0.0, side as f32),
                    rng.uniform(0.0, side as f32),
                    rng.uniform(1.0, side as f32 / 2.0),
                )
            })
            .collect();
        #[allow(clippy::needless_range_loop)]
        for c in 0..channels {
            for y in 0..side {
                for x in 0..side {
                    let xf = x as f32 / side as f32;
                    let yf = y as f32 / side as f32;
                    let stripe =
                        (fx * xf * std::f32::consts::TAU + fy * yf * std::f32::consts::TAU + phase)
                            .sin();
                    let mut blob = 0.0;
                    for &(bx, by, r) in &blobs {
                        let d2 = (x as f32 - bx).powi(2) + (y as f32 - by).powi(2);
                        blob += (-d2 / (r * r)).exp();
                    }
                    let own = 0.5 * stripe + 0.6 * blob + cast[c];
                    let i = (c * side + y) * side + x;
                    tmpl[i] = overlap * base[i] + (1.0 - overlap) * own;
                }
            }
        }
        templates.push(tmpl);
    }

    let image_len = channels * side * side;
    let mut images = Vec::with_capacity(samples * image_len);
    let mut labels = Vec::with_capacity(samples);
    for i in 0..samples {
        let class = i % classes; // balanced classes
        let gain = rng.uniform(0.7, 1.3);
        let shift = rng.uniform(-0.15, 0.15);
        for &t in &templates[class] {
            let v = gain * t + shift + noise * rng.normal();
            images.push(v.clamp(-1.0, 1.0));
        }
        labels.push(class);
    }
    // Shuffle so contiguous slices are class-balanced but not ordered.
    let mut order: Vec<usize> = (0..samples).collect();
    for i in (1..samples).rev() {
        let j = rng.below(i + 1);
        order.swap(i, j);
    }
    let mut shuffled_images = Vec::with_capacity(images.len());
    let mut shuffled_labels = Vec::with_capacity(labels.len());
    for &i in &order {
        shuffled_images.extend_from_slice(&images[i * image_len..(i + 1) * image_len]);
        shuffled_labels.push(labels[i]);
    }
    Dataset::new(shuffled_images, shuffled_labels, channels, side, classes)
}

/// CIFAR-10-like synthetic dataset: 10 classes of 3-channel square images.
#[derive(Debug, Clone, Copy)]
pub struct SynthCifar {
    /// Image side (the real CIFAR uses 32; tests shrink this).
    pub side: usize,
    /// Per-pixel Gaussian noise amplitude.
    pub noise: f32,
    /// Fraction of each class template shared with a common base pattern
    /// (0 = fully distinct classes, →1 = indistinguishable).
    pub overlap: f32,
}

impl Default for SynthCifar {
    fn default() -> Self {
        SynthCifar {
            side: 16,
            noise: 0.25,
            overlap: 0.0,
        }
    }
}

impl SynthCifar {
    /// Generates `samples` labeled images with the given seed.
    pub fn generate(&self, samples: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from(seed);
        generate(
            samples,
            10,
            3,
            self.side,
            self.noise,
            self.overlap,
            &mut rng,
        )
    }
}

/// ImageNet-like synthetic dataset: more classes, larger images.
#[derive(Debug, Clone, Copy)]
pub struct SynthImageNet {
    /// Image side (scaled down from the real 224).
    pub side: usize,
    /// Number of classes (scaled down from the real 1000).
    pub classes: usize,
    /// Per-pixel Gaussian noise amplitude.
    pub noise: f32,
    /// Fraction of each class template shared with a common base pattern.
    pub overlap: f32,
}

impl Default for SynthImageNet {
    fn default() -> Self {
        SynthImageNet {
            side: 24,
            classes: 20,
            noise: 0.3,
            overlap: 0.0,
        }
    }
}

impl SynthImageNet {
    /// Generates `samples` labeled images with the given seed.
    pub fn generate(&self, samples: usize, seed: u64) -> Dataset {
        let mut rng = Rng::seed_from(seed);
        generate(
            samples,
            self.classes,
            3,
            self.side,
            self.noise,
            self.overlap,
            &mut rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthCifar::default();
        let a = cfg.generate(50, 7);
        let b = cfg.generate(50, 7);
        assert_eq!(a.image(13), b.image(13));
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SynthCifar::default();
        let a = cfg.generate(50, 7);
        let b = cfg.generate(50, 8);
        assert_ne!(a.image(0), b.image(0));
    }

    #[test]
    fn classes_are_balanced() {
        let d = SynthCifar::default().generate(200, 3);
        let mut counts = [0usize; 10];
        for &l in d.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 20), "{counts:?}");
    }

    #[test]
    fn pixels_are_bounded() {
        let d = SynthCifar::default().generate(30, 1);
        for i in 0..d.len() {
            for &p in d.image(i) {
                assert!((-1.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn batch_collects_requested_samples() {
        let d = SynthCifar::default().generate(20, 5);
        let (x, y) = d.batch(&[3, 7]);
        assert_eq!(x.shape().dims(), &[2, 3, 16, 16]);
        assert_eq!(y, vec![d.label(3), d.label(7)]);
        assert_eq!(&x.data()[..d.image_len()], d.image(3));
    }

    #[test]
    fn split_off_partitions_samples() {
        let mut d = SynthCifar::default().generate(30, 5);
        let test = d.split_off(10);
        assert_eq!(d.len(), 20);
        assert_eq!(test.len(), 10);
    }

    #[test]
    fn classes_have_distinct_means() {
        // Sanity: per-class mean images must differ enough to learn from.
        let d = SynthCifar::default().generate(100, 11);
        let len = d.image_len();
        let mut means = vec![vec![0.0f32; len]; 10];
        let mut counts = [0usize; 10];
        for i in 0..d.len() {
            let l = d.label(i);
            counts[l] += 1;
            for (m, &p) in means[l].iter_mut().zip(d.image(i)) {
                *m += p;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c as f32;
            }
        }
        let dist: f32 = means[0]
            .iter()
            .zip(&means[1])
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt();
        assert!(dist > 1.0, "class means too close: {dist}");
    }

    #[test]
    fn imagenet_variant_has_more_classes() {
        let d = SynthImageNet::default().generate(40, 2);
        assert_eq!(d.classes(), 20);
        assert_eq!(d.side(), 24);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn generated_pixels_stay_in_range(
            samples in 10usize..60,
            side in 4usize..12,
            noise in 0.0f32..1.5,
            overlap in 0.0f32..0.95,
            seed in 0u64..1000,
        ) {
            let d = SynthCifar { side, noise, overlap }.generate(samples, seed);
            prop_assert_eq!(d.len(), samples);
            for i in 0..d.len() {
                for &p in d.image(i) {
                    prop_assert!((-1.0..=1.0).contains(&p));
                }
            }
        }

        #[test]
        fn class_counts_differ_by_at_most_one(
            samples in 10usize..100,
            seed in 0u64..1000,
        ) {
            let d = SynthCifar { side: 6, noise: 0.3, overlap: 0.2 }.generate(samples, seed);
            let mut counts = [0usize; 10];
            for &l in d.labels() {
                counts[l] += 1;
            }
            let min = counts.iter().min().unwrap();
            let max = counts.iter().max().unwrap();
            prop_assert!(max - min <= 1, "{counts:?}");
        }

        #[test]
        fn split_off_preserves_total(
            samples in 4usize..50,
            take in 0usize..50,
            seed in 0u64..100,
        ) {
            prop_assume!(take <= samples);
            let mut d = SynthCifar { side: 4, noise: 0.2, overlap: 0.0 }.generate(samples, seed);
            let test = d.split_off(take);
            prop_assert_eq!(d.len() + test.len(), samples);
            prop_assert_eq!(test.len(), take);
        }
    }
}
