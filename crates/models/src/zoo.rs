//! Deterministic "pretrained" model zoo.
//!
//! The paper downloads fixed checkpoints from public repositories
//! (akamaster's CIFAR ResNets, torchvision's ImageNet models). This
//! reproduction has no network access, so the zoo *trains* each victim
//! deterministically from a fixed seed — same architecture, same data, same
//! shuffling — and then deploys (8-bit-quantizes) it. Every call with the
//! same arguments yields bit-identical weight files, which is the property
//! experiments actually need from a checkpoint.

use crate::data::{Dataset, SynthCifar, SynthImageNet};
use crate::resnet::{ResNet, ResNetConfig};
use crate::train::{evaluate, evaluate_mode, TrainConfig, Trainer};
use crate::vgg::{Vgg, VggConfig};
use rhb_nn::init::Rng;
use rhb_nn::network::{Engine, Network};
use rhb_nn::optim::{SgdConfig, StepLr};

/// The victim architectures evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// ResNet-20 on CIFAR-style data (Table II row group 1).
    ResNet20,
    /// ResNet-32 on CIFAR-style data (Table II row group 2).
    ResNet32,
    /// ResNet-18 on CIFAR-style data (Table II row group 3).
    ResNet18,
    /// ResNet-34 on ImageNet-style data (Table II row group 4).
    ResNet34,
    /// ResNet-50 on ImageNet-style data (Table II row group 5).
    ResNet50,
    /// VGG-11 on CIFAR-style data (Table III).
    Vgg11,
    /// VGG-16 on CIFAR-style data (Table III).
    Vgg16,
}

impl Architecture {
    /// All architectures in Table II order, then Table III.
    pub const ALL: [Architecture; 7] = [
        Architecture::ResNet20,
        Architecture::ResNet32,
        Architecture::ResNet18,
        Architecture::ResNet34,
        Architecture::ResNet50,
        Architecture::Vgg11,
        Architecture::Vgg16,
    ];

    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            Architecture::ResNet20 => "ResNet20",
            Architecture::ResNet32 => "ResNet32",
            Architecture::ResNet18 => "ResNet18",
            Architecture::ResNet34 => "ResNet34",
            Architecture::ResNet50 => "ResNet50",
            Architecture::Vgg11 => "VGG11",
            Architecture::Vgg16 => "VGG16",
        }
    }

    /// Parses a display name, case-insensitively and ignoring `-`/`_`
    /// separators (`resnet-20`, `ResNet20`, and `RESNET_20` all
    /// resolve), so campaign grids can name victims loosely. `None` for
    /// unknown architectures.
    pub fn from_name(name: &str) -> Option<Architecture> {
        let canon: String = name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .map(|c| c.to_ascii_lowercase())
            .collect();
        Architecture::ALL
            .iter()
            .copied()
            .find(|a| a.name().to_ascii_lowercase() == canon)
    }

    /// Whether the paper evaluates this victim on ImageNet-scale data.
    pub fn is_imagenet(&self) -> bool {
        matches!(self, Architecture::ResNet34 | Architecture::ResNet50)
    }
}

/// Zoo knobs controlling the CPU budget of a pretrained victim.
#[derive(Debug, Clone, Copy)]
pub struct ZooConfig {
    /// Base width for ResNet/VGG construction.
    pub width: usize,
    /// Image side length.
    pub side: usize,
    /// Training samples to generate.
    pub train_samples: usize,
    /// Held-out test samples.
    pub test_samples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Per-pixel dataset noise; higher values lower the victim's base
    /// accuracy toward the realistic 85-95% regime the paper's victims
    /// occupy (a saturated 100%-accuracy model has degenerate logit
    /// margins that no small-bit-budget attack can move).
    pub noise: f32,
    /// Class-template overlap (see [`SynthCifar::overlap`]); the second
    /// knob holding base accuracy below saturation.
    pub overlap: f32,
}

impl ZooConfig {
    /// Small, fast configuration for unit tests.
    pub fn tiny() -> Self {
        ZooConfig {
            width: 4,
            side: 8,
            train_samples: 256,
            test_samples: 64,
            epochs: 6,
            noise: 0.25,
            overlap: 0.6,
        }
    }

    /// Default configuration used by the experiment binaries.
    pub fn standard() -> Self {
        ZooConfig {
            width: 8,
            side: 16,
            train_samples: 640,
            test_samples: 160,
            epochs: 8,
            noise: 0.3,
            overlap: 0.62,
        }
    }
}

impl Default for ZooConfig {
    fn default() -> Self {
        ZooConfig::standard()
    }
}

/// A trained, deployed (quantized) victim plus its data splits.
pub struct PretrainedModel {
    /// The deployed network.
    pub net: Box<dyn Network>,
    /// Architecture tag.
    pub arch: Architecture,
    /// Training split (the attacker does *not* get this; kept for defenses
    /// that retrain, e.g. piecewise weight clustering).
    pub train_data: Dataset,
    /// Held-out test split (the attacker's "small percentage of unseen test
    /// data" from the threat model).
    pub test_data: Dataset,
    /// Base test accuracy after deployment (the paper's "Acc" row label).
    pub base_accuracy: f64,
}

impl PretrainedModel {
    /// Test accuracy under an explicit inference engine. Deployed zoo
    /// victims expose both: the fake-quant f32 reference and the true
    /// int8 serving path, which agree on argmax over the eval set (the
    /// parity contract in `DESIGN.md`).
    pub fn accuracy_with(&mut self, engine: Engine) -> f64 {
        evaluate_mode(self.net.as_mut(), &self.test_data, 64, engine.mode())
    }
}

impl std::fmt::Debug for PretrainedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PretrainedModel({}, acc={:.2}%)",
            self.arch.name(),
            self.base_accuracy * 100.0
        )
    }
}

/// Builds the architecture without training (random initialization).
pub fn build(arch: Architecture, cfg: &ZooConfig, rng: &mut Rng) -> Box<dyn Network> {
    let classes = if arch.is_imagenet() {
        SynthImageNet::default().classes
    } else {
        10
    };
    match arch {
        Architecture::ResNet20 => {
            Box::new(ResNet::new(ResNetConfig::resnet20(cfg.width, classes), rng))
        }
        Architecture::ResNet32 => {
            Box::new(ResNet::new(ResNetConfig::resnet32(cfg.width, classes), rng))
        }
        Architecture::ResNet18 => {
            Box::new(ResNet::new(ResNetConfig::resnet18(cfg.width, classes), rng))
        }
        Architecture::ResNet34 => {
            Box::new(ResNet::new(ResNetConfig::resnet34(cfg.width, classes), rng))
        }
        Architecture::ResNet50 => {
            Box::new(ResNet::new(ResNetConfig::resnet50(cfg.width, classes), rng))
        }
        Architecture::Vgg11 => Box::new(Vgg::new(VggConfig::vgg11(cfg.width, classes), rng)),
        Architecture::Vgg16 => Box::new(Vgg::new(VggConfig::vgg16(cfg.width, classes), rng)),
    }
}

/// Generates the data splits an architecture trains on.
pub fn dataset_for(arch: Architecture, cfg: &ZooConfig, seed: u64) -> (Dataset, Dataset) {
    let total = cfg.train_samples + cfg.test_samples;
    let mut data = if arch.is_imagenet() {
        SynthImageNet {
            side: cfg.side,
            noise: cfg.noise,
            overlap: cfg.overlap,
            ..SynthImageNet::default()
        }
        .generate(total, seed)
    } else {
        SynthCifar {
            side: cfg.side,
            noise: cfg.noise,
            overlap: cfg.overlap,
        }
        .generate(total, seed)
    };
    let test = data.split_off(cfg.test_samples);
    (data, test)
}

/// Deterministically trains, deploys, and evaluates a victim model.
///
/// Calling twice with the same arguments produces bit-identical quantized
/// weights — the reproduction's equivalent of downloading a checkpoint.
///
/// # Panics
///
/// Panics if deployment (quantization) fails, which cannot happen for a
/// trained network with finite weights.
pub fn pretrained(arch: Architecture, cfg: &ZooConfig, seed: u64) -> PretrainedModel {
    let (train_data, test_data) = dataset_for(arch, cfg, seed.wrapping_mul(0x9e37_79b9));
    let mut rng = Rng::seed_from(seed);
    let mut net = build(arch, cfg, &mut rng);
    let sgd = SgdConfig {
        lr: 0.08,
        momentum: 0.9,
        weight_decay: 1e-4,
    };
    let mut trainer = Trainer::new(
        TrainConfig {
            epochs: cfg.epochs,
            batch_size: 32,
            sgd,
            schedule: Some(StepLr {
                base_lr: sgd.lr,
                step: cfg.epochs.div_ceil(2).max(1),
                gamma: 0.3,
            }),
        },
        seed ^ 0xabcd,
    );
    trainer.fit(net.as_mut(), &train_data);
    net.deploy().expect("trained weights are finite");
    let base_accuracy = evaluate(net.as_mut(), &test_data, 64);
    PretrainedModel {
        net,
        arch,
        train_data,
        test_data,
        base_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhb_nn::weightfile::WeightFile;

    #[test]
    fn pretrained_is_deterministic() {
        let cfg = ZooConfig::tiny();
        let a = pretrained(Architecture::ResNet20, &cfg, 5);
        let b = pretrained(Architecture::ResNet20, &cfg, 5);
        let wa = WeightFile::from_network(a.net.as_ref());
        let wb = WeightFile::from_network(b.net.as_ref());
        assert_eq!(wa.hamming_distance(&wb).unwrap(), 0);
        assert_eq!(a.base_accuracy, b.base_accuracy);
    }

    #[test]
    fn pretrained_beats_chance() {
        let model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 5);
        assert!(
            model.base_accuracy > 0.3,
            "accuracy {} too close to 10% chance",
            model.base_accuracy
        );
    }

    #[test]
    fn different_seeds_give_different_weights() {
        let cfg = ZooConfig::tiny();
        let a = pretrained(Architecture::ResNet20, &cfg, 1);
        let b = pretrained(Architecture::ResNet20, &cfg, 2);
        let wa = WeightFile::from_network(a.net.as_ref());
        let wb = WeightFile::from_network(b.net.as_ref());
        assert!(wa.hamming_distance(&wb).unwrap() > 0);
    }

    /// The zoo-eval-set half of the accuracy contract: the int8 engine
    /// classifies every test sample identically to the fake-quant f32
    /// reference on a deployed victim.
    #[test]
    fn engines_agree_on_argmax_over_the_eval_set() {
        use rhb_nn::layer::Mode;
        let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 5);
        let idx: Vec<usize> = (0..model.test_data.len()).collect();
        for chunk in idx.chunks(16) {
            let (x, _) = model.test_data.batch(chunk);
            let f32_logits = model.net.forward(&x, Mode::Eval);
            let i8_logits = model.net.forward(&x, Mode::Int8);
            let classes = f32_logits.shape().dim(1);
            for (b, &sample) in chunk.iter().enumerate() {
                let argmax = |t: &rhb_nn::Tensor| {
                    let row = &t.data()[b * classes..(b + 1) * classes];
                    row.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(b.1))
                        .map(|(i, _)| i)
                        .unwrap()
                };
                assert_eq!(
                    argmax(&f32_logits),
                    argmax(&i8_logits),
                    "engines disagree on test sample {sample}"
                );
            }
        }
        // Accuracy under either engine therefore matches exactly.
        assert_eq!(
            model.accuracy_with(Engine::FakeQuantF32),
            model.accuracy_with(Engine::Int8)
        );
    }

    #[test]
    fn imagenet_archs_use_imagenet_data() {
        let cfg = ZooConfig::tiny();
        let (train, _) = dataset_for(Architecture::ResNet34, &cfg, 3);
        assert_eq!(train.classes(), SynthImageNet::default().classes);
        let (train, _) = dataset_for(Architecture::ResNet20, &cfg, 3);
        assert_eq!(train.classes(), 10);
    }

    #[test]
    fn all_architectures_build() {
        let cfg = ZooConfig::tiny();
        let mut rng = Rng::seed_from(0);
        for arch in Architecture::ALL {
            let net = build(arch, &cfg, &mut rng);
            assert!(net.num_params() > 0, "{} has no params", arch.name());
        }
    }
}
