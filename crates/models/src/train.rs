//! Mini-batch training and evaluation loops.

use crate::data::Dataset;
use rhb_nn::init::Rng;
use rhb_nn::layer::Mode;
use rhb_nn::loss::{accuracy, cross_entropy};
use rhb_nn::network::Network;
use rhb_nn::optim::{Sgd, SgdConfig, StepLr};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Samples per mini-batch.
    pub batch_size: usize,
    /// Optimizer settings.
    pub sgd: SgdConfig,
    /// Learning-rate decay schedule.
    pub schedule: Option<StepLr>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 8,
            batch_size: 32,
            sgd: SgdConfig::default(),
            schedule: Some(StepLr {
                base_lr: SgdConfig::default().lr,
                step: 4,
                gamma: 0.3,
            }),
        }
    }
}

/// Progress record for one epoch.
#[derive(Debug, Clone, Copy)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub mean_loss: f32,
    /// Training accuracy over the epoch.
    pub train_accuracy: f64,
}

/// Drives SGD training of a [`Network`] on a [`Dataset`].
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
    rng: Rng,
}

impl Trainer {
    /// Creates a trainer with a deterministic shuffling seed.
    pub fn new(config: TrainConfig, seed: u64) -> Self {
        Trainer {
            config,
            rng: Rng::seed_from(seed),
        }
    }

    /// Trains the network in place, returning per-epoch statistics.
    pub fn fit(&mut self, net: &mut dyn Network, data: &Dataset) -> Vec<EpochStats> {
        let _fit_span = rhb_telemetry::span!(
            "train",
            epochs = self.config.epochs,
            batch_size = self.config.batch_size,
            samples = data.len(),
        );
        let mut opt = Sgd::new(net, self.config.sgd);
        let mut stats = Vec::with_capacity(self.config.epochs);
        let mut order: Vec<usize> = (0..data.len()).collect();
        for epoch in 0..self.config.epochs {
            let _epoch_span = rhb_telemetry::span!("epoch", index = epoch);
            if let Some(sched) = self.config.schedule {
                opt.set_lr(sched.lr_at(epoch));
            }
            // Fisher–Yates shuffle with the trainer's own stream.
            for i in (1..order.len()).rev() {
                let j = self.rng.below(i + 1);
                order.swap(i, j);
            }
            let mut total_loss = 0.0f32;
            let mut total_correct = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let (x, y) = data.batch(chunk);
                net.zero_grad();
                let logits = net.forward(&x, Mode::Train);
                let out = cross_entropy(&logits, &y);
                net.backward(&out.grad_logits);
                opt.step(net);
                total_loss += out.loss;
                total_correct += accuracy(&logits, &y) * chunk.len() as f64;
                batches += 1;
            }
            let s = EpochStats {
                epoch,
                mean_loss: total_loss / batches.max(1) as f32,
                train_accuracy: total_correct / data.len() as f64,
            };
            rhb_telemetry::counter!("models/epochs_trained", 1);
            rhb_telemetry::gauge!("models/train_loss", s.mean_loss);
            rhb_telemetry::gauge!("models/train_accuracy", s.train_accuracy);
            rhb_telemetry::event!(
                "epoch_stats",
                epoch = epoch,
                mean_loss = s.mean_loss,
                train_accuracy = s.train_accuracy,
            );
            stats.push(s);
        }
        stats
    }
}

/// Evaluates classification accuracy on a dataset, batching to bound memory.
///
/// Deployed networks run on the int8 inference engine by default (the
/// arithmetic the victim actually serves); undeployed networks — and
/// every network when `RHB_ENGINE=f32` — use the f32 eval path. Use
/// [`evaluate_mode`] to pin a specific engine.
pub fn evaluate(net: &mut dyn Network, data: &Dataset, batch_size: usize) -> f64 {
    let mode = rhb_nn::network::eval_mode(net);
    evaluate_mode(net, data, batch_size, mode)
}

/// [`evaluate`] with an explicit forward mode (inference engine).
pub fn evaluate_mode(net: &mut dyn Network, data: &Dataset, batch_size: usize, mode: Mode) -> f64 {
    let _span = rhb_telemetry::span!("evaluate", samples = data.len());
    let mut correct = 0.0f64;
    let idx: Vec<usize> = (0..data.len()).collect();
    for chunk in idx.chunks(batch_size.max(1)) {
        let (x, y) = data.batch(chunk);
        let logits = net.forward(&x, mode);
        correct += accuracy(&logits, &y) * chunk.len() as f64;
    }
    correct / data.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SynthCifar;
    use crate::resnet::{ResNet, ResNetConfig};

    #[test]
    fn training_improves_over_chance() {
        let gen = SynthCifar {
            side: 8,
            noise: 0.15,
            overlap: 0.0,
        };
        let mut data = gen.generate(160, 42);
        let test = data.split_off(40);
        let mut rng = Rng::seed_from(0);
        let mut net = ResNet::new(ResNetConfig::resnet20(4, 10), &mut rng);
        let mut trainer = Trainer::new(
            TrainConfig {
                epochs: 4,
                batch_size: 16,
                sgd: SgdConfig {
                    lr: 0.05,
                    momentum: 0.9,
                    weight_decay: 1e-4,
                },
                schedule: None,
            },
            7,
        );
        let stats = trainer.fit(&mut net, &data);
        assert!(stats.last().unwrap().mean_loss < stats[0].mean_loss);
        let acc = evaluate(&mut net, &test, 20);
        assert!(acc > 0.3, "test accuracy {acc} barely above 10% chance");
    }

    #[test]
    fn evaluate_handles_partial_batches() {
        let gen = SynthCifar {
            side: 8,
            noise: 0.2,
            overlap: 0.0,
        };
        let data = gen.generate(13, 3);
        let mut rng = Rng::seed_from(1);
        let mut net = ResNet::new(ResNetConfig::resnet20(4, 10), &mut rng);
        let acc = evaluate(&mut net, &data, 5);
        assert!((0.0..=1.0).contains(&acc));
    }
}
