//! ResNet-style residual classifiers (CIFAR and ImageNet variants).
//!
//! Depth-faithful reproductions of the victims in the paper's Table II:
//! ResNet-20/32 (the 6n+2 CIFAR family), a CIFAR-style ResNet-18, and
//! scaled ResNet-34/50 stand-ins. Widths are configurable so the CPU-only
//! reproduction can shrink parameter counts while keeping the layer
//! topology — and therefore the weight-file page structure the attack
//! exploits — realistic.

use rhb_nn::activation::Relu;
use rhb_nn::conv::{Conv2d, ConvGeometry};
use rhb_nn::init::Rng;
use rhb_nn::layer::{Layer, Mode};
use rhb_nn::linear::Linear;
use rhb_nn::network::Network;
use rhb_nn::norm::BatchNorm2d;
use rhb_nn::param::Parameter;
use rhb_nn::pool::GlobalAvgPool;
use rhb_nn::tensor::Tensor;

/// Configuration for a ResNet victim.
#[derive(Debug, Clone, Copy)]
pub struct ResNetConfig {
    /// Residual blocks per stage.
    pub blocks_per_stage: &'static [usize],
    /// Base width (filters in the first stage).
    pub base_width: usize,
    /// Number of output classes.
    pub num_classes: usize,
    /// Input channels.
    pub in_channels: usize,
}

impl ResNetConfig {
    /// ResNet-20-style (3 stages × 3 blocks), the paper's smallest victim.
    pub fn resnet20(base_width: usize, num_classes: usize) -> Self {
        ResNetConfig {
            blocks_per_stage: &[3, 3, 3],
            base_width,
            num_classes,
            in_channels: 3,
        }
    }

    /// ResNet-32-style (3 stages × 5 blocks).
    pub fn resnet32(base_width: usize, num_classes: usize) -> Self {
        ResNetConfig {
            blocks_per_stage: &[5, 5, 5],
            base_width,
            num_classes,
            in_channels: 3,
        }
    }

    /// ResNet-18-style (4 stages × 2 blocks, CIFAR stem).
    pub fn resnet18(base_width: usize, num_classes: usize) -> Self {
        ResNetConfig {
            blocks_per_stage: &[2, 2, 2, 2],
            base_width,
            num_classes,
            in_channels: 3,
        }
    }

    /// ResNet-34-style (4 stages, 3/4/6/3 blocks).
    pub fn resnet34(base_width: usize, num_classes: usize) -> Self {
        ResNetConfig {
            blocks_per_stage: &[3, 4, 6, 3],
            base_width,
            num_classes,
            in_channels: 3,
        }
    }

    /// ResNet-50-style stand-in (4 stages, 3/4/6/3 basic blocks at higher
    /// width; the real ResNet-50 uses bottlenecks, which change parameter
    /// count but not the page-granularity structure the attack depends on).
    pub fn resnet50(base_width: usize, num_classes: usize) -> Self {
        ResNetConfig {
            blocks_per_stage: &[3, 4, 6, 3],
            base_width: base_width + base_width / 2,
            num_classes,
            in_channels: 3,
        }
    }
}

/// One basic residual block: two 3×3 conv/bn pairs with identity or
/// projection skip.
struct BasicBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    relu2: Relu,
    downsample: Option<(Conv2d, BatchNorm2d)>,
    cached_skip_needed: bool,
}

impl BasicBlock {
    fn new(in_ch: usize, out_ch: usize, stride: usize, rng: &mut Rng) -> Self {
        let conv1 = Conv2d::new(
            ConvGeometry {
                in_channels: in_ch,
                out_channels: out_ch,
                kernel: 3,
                stride,
                padding: 1,
            },
            false,
            rng,
        );
        let conv2 = Conv2d::new(
            ConvGeometry {
                in_channels: out_ch,
                out_channels: out_ch,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            false,
            rng,
        );
        let downsample = (stride != 1 || in_ch != out_ch).then(|| {
            (
                Conv2d::new(
                    ConvGeometry {
                        in_channels: in_ch,
                        out_channels: out_ch,
                        kernel: 1,
                        stride,
                        padding: 0,
                    },
                    false,
                    rng,
                ),
                BatchNorm2d::new(out_ch),
            )
        });
        BasicBlock {
            conv1,
            bn1: BatchNorm2d::new(out_ch),
            relu1: Relu::new(),
            conv2,
            bn2: BatchNorm2d::new(out_ch),
            relu2: Relu::new(),
            downsample,
            cached_skip_needed: false,
        }
    }

    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        // `forward_instrumented` feeds the per-layer `nn/eval/*` timing
        // histograms, which ResNet must populate itself: its residual
        // graph bypasses `Sequential`.
        let main = self.conv1.forward_instrumented(x, mode);
        let main = self.bn1.forward_instrumented(&main, mode);
        let main = self.relu1.forward_instrumented(&main, mode);
        let main = self.conv2.forward_instrumented(&main, mode);
        let mut main = self.bn2.forward_instrumented(&main, mode);
        let skip = match &mut self.downsample {
            Some((conv, bn)) => {
                let s = conv.forward_instrumented(x, mode);
                bn.forward_instrumented(&s, mode)
            }
            None => x.clone(),
        };
        main.axpy(1.0, &skip);
        self.cached_skip_needed = mode.caches();
        self.relu2.forward_instrumented(&main, mode)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert!(
            self.cached_skip_needed,
            "backward called without training-mode forward"
        );
        self.cached_skip_needed = false;
        let g_sum = self.relu2.backward(grad);
        // Main path.
        let g = self.bn2.backward(&g_sum);
        let g = self.conv2.backward(&g);
        let g = self.relu1.backward(&g);
        let g = self.bn1.backward(&g);
        let mut g_input = self.conv1.backward(&g);
        // Skip path.
        match &mut self.downsample {
            Some((conv, bn)) => {
                let gs = bn.backward(&g_sum);
                let gs = conv.backward(&gs);
                g_input.axpy(1.0, &gs);
            }
            None => g_input.axpy(1.0, &g_sum),
        }
        g_input
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut v = Vec::new();
        v.extend(self.conv1.params());
        v.extend(self.bn1.params());
        v.extend(self.conv2.params());
        v.extend(self.bn2.params());
        if let Some((conv, bn)) = &self.downsample {
            v.extend(conv.params());
            v.extend(bn.params());
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = Vec::new();
        v.extend(self.conv1.params_mut());
        v.extend(self.bn1.params_mut());
        v.extend(self.conv2.params_mut());
        v.extend(self.bn2.params_mut());
        if let Some((conv, bn)) = &mut self.downsample {
            v.extend(conv.params_mut());
            v.extend(bn.params_mut());
        }
        v
    }
}

/// A ResNet-style classifier implementing [`Network`].
pub struct ResNet {
    config: ResNetConfig,
    stem_conv: Conv2d,
    stem_bn: BatchNorm2d,
    stem_relu: Relu,
    blocks: Vec<BasicBlock>,
    pool: GlobalAvgPool,
    fc: Linear,
}

impl std::fmt::Debug for ResNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ResNet({:?})", self.config)
    }
}

impl ResNet {
    /// Builds a randomly initialized ResNet.
    pub fn new(config: ResNetConfig, rng: &mut Rng) -> Self {
        let stem_conv = Conv2d::new(
            ConvGeometry {
                in_channels: config.in_channels,
                out_channels: config.base_width,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            false,
            rng,
        );
        let mut blocks = Vec::new();
        let mut in_ch = config.base_width;
        for (stage, &n) in config.blocks_per_stage.iter().enumerate() {
            let out_ch = config.base_width << stage;
            for b in 0..n {
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                blocks.push(BasicBlock::new(in_ch, out_ch, stride, rng));
                in_ch = out_ch;
            }
        }
        let fc = Linear::new(in_ch, config.num_classes, true, rng);
        ResNet {
            config,
            stem_conv,
            stem_bn: BatchNorm2d::new(config.base_width),
            stem_relu: Relu::new(),
            blocks,
            pool: GlobalAvgPool::new(),
            fc,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> ResNetConfig {
        self.config
    }

    /// Number of weight layers (the "20" in ResNet-20).
    pub fn depth(&self) -> usize {
        // stem + 2 convs per block + fc
        2 + 2 * self.blocks.len()
    }
}

impl Network for ResNet {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let x = self.stem_conv.forward_instrumented(input, mode);
        let x = self.stem_bn.forward_instrumented(&x, mode);
        let mut x = self.stem_relu.forward_instrumented(&x, mode);
        for block in &mut self.blocks {
            x = block.forward(&x, mode);
        }
        let x = self.pool.forward_instrumented(&x, mode);
        self.fc.forward_instrumented(&x, mode)
    }

    fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let g = self.fc.backward(grad_logits);
        let mut g = self.pool.backward(&g);
        for block in self.blocks.iter_mut().rev() {
            g = block.backward(&g);
        }
        let g = self.stem_relu.backward(&g);
        let g = self.stem_bn.backward(&g);
        self.stem_conv.backward(&g)
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut v = Vec::new();
        v.extend(self.stem_conv.params());
        v.extend(self.stem_bn.params());
        for b in &self.blocks {
            v.extend(b.params());
        }
        v.extend(self.fc.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = Vec::new();
        v.extend(self.stem_conv.params_mut());
        v.extend(self.stem_bn.params_mut());
        for b in &mut self.blocks {
            v.extend(b.params_mut());
        }
        v.extend(self.fc.params_mut());
        v
    }

    fn describe(&self) -> String {
        format!(
            "ResNet(depth={}, width={}, classes={}, params={})",
            self.depth(),
            self.config.base_width,
            self.config.num_classes,
            self.num_params()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhb_nn::loss::cross_entropy;

    fn tiny() -> ResNet {
        let mut rng = Rng::seed_from(1);
        ResNet::new(ResNetConfig::resnet20(4, 10), &mut rng)
    }

    #[test]
    fn depth_matches_naming() {
        assert_eq!(tiny().depth(), 20);
        let mut rng = Rng::seed_from(1);
        assert_eq!(
            ResNet::new(ResNetConfig::resnet32(4, 10), &mut rng).depth(),
            32
        );
        assert_eq!(
            ResNet::new(ResNetConfig::resnet18(4, 10), &mut rng).depth(),
            18
        );
    }

    #[test]
    fn forward_shape_is_batch_by_classes() {
        let mut net = tiny();
        let y = net.forward(&Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval);
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn backward_returns_input_gradient() {
        let mut net = tiny();
        let x = Tensor::full(&[1, 3, 16, 16], 0.1);
        let y = net.forward(&x, Mode::Train);
        let out = cross_entropy(&y, &[3]);
        let gin = net.backward(&out.grad_logits);
        assert_eq!(gin.shape().dims(), x.shape().dims());
        assert!(gin.max_abs() > 0.0, "input gradient must be nonzero");
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        use rhb_nn::optim::{Sgd, SgdConfig};
        let mut net = tiny();
        let x = Tensor::full(&[2, 3, 16, 16], 0.2);
        let targets = [1usize, 1];
        let mut opt = Sgd::new(
            &net,
            SgdConfig {
                lr: 0.1,
                momentum: 0.0,
                weight_decay: 0.0,
            },
        );
        net.zero_grad();
        let before = {
            let y = net.forward(&x, Mode::Train);
            let out = cross_entropy(&y, &targets);
            net.backward(&out.grad_logits);
            opt.step(&mut net);
            out.loss
        };
        let y = net.forward(&x, Mode::Train);
        let after = cross_entropy(&y, &targets).loss;
        assert!(after < before, "loss {after} !< {before}");
    }

    #[test]
    fn param_order_is_stable() {
        let a: Vec<String> = tiny().params().iter().map(|p| p.name.clone()).collect();
        let b: Vec<String> = tiny().params().iter().map(|p| p.name.clone()).collect();
        assert_eq!(a, b);
        // Stem first, classifier last.
        assert!(a.first().unwrap().starts_with("conv3x4"));
        assert!(a.last().unwrap().contains("bias"));
    }

    #[test]
    fn deployed_resnet_keeps_eval_output_on_quant_grid_round_trip() {
        let mut net = tiny();
        net.deploy().unwrap();
        let x = Tensor::full(&[1, 3, 16, 16], 0.3);
        let before = net.forward(&x, Mode::Eval);
        let images = net.quantized_params();
        net.load_quantized(&images);
        let after = net.forward(&x, Mode::Eval);
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn eval_forward_records_per_layer_timings() {
        rhb_telemetry::install(std::sync::Arc::new(rhb_telemetry::NoopSink));
        let mut net = tiny();
        net.forward(&Tensor::zeros(&[1, 3, 16, 16]), Mode::Eval);
        let report = rhb_telemetry::report();
        let names: Vec<&str> = report
            .histograms
            .iter()
            .map(|h| h.name.as_str())
            .filter(|n| n.starts_with("nn/eval/"))
            .collect();
        for expected in [
            "nn/eval/conv2d_f32_s",
            "nn/eval/batch_norm2d_f32_s",
            "nn/eval/relu_f32_s",
            "nn/eval/global_avg_pool_f32_s",
            "nn/eval/linear_f32_s",
        ] {
            assert!(names.contains(&expected), "{expected} missing in {names:?}");
        }
        rhb_telemetry::shutdown();
        rhb_telemetry::reset();
    }

    #[test]
    fn wider_network_has_more_params() {
        let mut rng = Rng::seed_from(1);
        let narrow = ResNet::new(ResNetConfig::resnet20(4, 10), &mut rng).num_params();
        let wide = ResNet::new(ResNetConfig::resnet20(8, 10), &mut rng).num_params();
        assert!(wide > 3 * narrow);
    }
}
