//! VGG-style plain convolutional classifiers.
//!
//! Used by the paper's Table III generalization experiment (VGG-11/16).
//! Depth-faithful conv stacks with max-pooling between stages, width-scaled
//! for the CPU budget.

use rhb_nn::activation::Relu;
use rhb_nn::conv::{Conv2d, ConvGeometry};
use rhb_nn::init::Rng;
use rhb_nn::layer::{Layer, Mode, Sequential};
use rhb_nn::linear::Linear;
use rhb_nn::network::Network;
use rhb_nn::norm::BatchNorm2d;
use rhb_nn::param::Parameter;
use rhb_nn::pool::{GlobalAvgPool, MaxPool2d};
use rhb_nn::tensor::Tensor;

/// Configuration for a VGG victim.
#[derive(Debug, Clone)]
pub struct VggConfig {
    /// Width multipliers per conv layer; `0` marks a max-pool.
    pub plan: Vec<usize>,
    /// Base width multiplied into each entry of `plan`.
    pub base_width: usize,
    /// Output classes.
    pub num_classes: usize,
}

impl VggConfig {
    /// VGG-11-style plan (8 convs + pools).
    pub fn vgg11(base_width: usize, num_classes: usize) -> Self {
        VggConfig {
            plan: vec![1, 0, 2, 0, 4, 4, 0, 8, 8, 0, 8, 8, 0],
            base_width,
            num_classes,
        }
    }

    /// VGG-16-style plan (13 convs + pools).
    pub fn vgg16(base_width: usize, num_classes: usize) -> Self {
        VggConfig {
            plan: vec![1, 1, 0, 2, 2, 0, 4, 4, 4, 0, 8, 8, 8, 0, 8, 8, 8, 0],
            base_width,
            num_classes,
        }
    }

    /// Number of convolution layers in the plan.
    pub fn conv_layers(&self) -> usize {
        self.plan.iter().filter(|&&w| w != 0).count()
    }
}

/// A VGG-style classifier implementing [`Network`].
pub struct Vgg {
    config: VggConfig,
    features: Sequential,
    pool: GlobalAvgPool,
    fc: Linear,
}

impl std::fmt::Debug for Vgg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Vgg({:?})", self.config)
    }
}

impl Vgg {
    /// Builds a randomly initialized VGG.
    ///
    /// # Panics
    ///
    /// Panics if the plan contains no convolution layers.
    pub fn new(config: VggConfig, rng: &mut Rng) -> Self {
        assert!(config.conv_layers() > 0, "plan needs at least one conv");
        let mut features = Sequential::new();
        let mut in_ch = 3;
        let mut last_width = config.base_width;
        for &w in &config.plan {
            if w == 0 {
                features.push(Box::new(MaxPool2d::new(2)));
                continue;
            }
            let out_ch = w * config.base_width;
            features.push(Box::new(Conv2d::new(
                ConvGeometry {
                    in_channels: in_ch,
                    out_channels: out_ch,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
                false,
                rng,
            )));
            features.push(Box::new(BatchNorm2d::new(out_ch)));
            features.push(Box::new(Relu::new()));
            in_ch = out_ch;
            last_width = out_ch;
        }
        let fc = Linear::new(last_width, config.num_classes, true, rng);
        Vgg {
            config,
            features,
            pool: GlobalAvgPool::new(),
            fc,
        }
    }

    /// The architecture configuration.
    pub fn config(&self) -> &VggConfig {
        &self.config
    }
}

impl Network for Vgg {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let x = self.features.forward_mode(input, mode);
        let x = self.pool.forward_instrumented(&x, mode);
        self.fc.forward_instrumented(&x, mode)
    }

    fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let g = self.fc.backward(grad_logits);
        let g = self.pool.backward(&g);
        self.features.backward(&g)
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut v = self.features.params();
        v.extend(self.fc.params());
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = self.features.params_mut();
        v.extend(self.fc.params_mut());
        v
    }

    fn describe(&self) -> String {
        format!(
            "VGG({} convs, width={}, classes={}, params={})",
            self.config.conv_layers(),
            self.config.base_width,
            self.config.num_classes,
            self.num_params()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhb_nn::loss::cross_entropy;

    #[test]
    fn vgg11_has_8_convs_and_vgg16_has_13() {
        assert_eq!(VggConfig::vgg11(4, 10).conv_layers(), 8);
        assert_eq!(VggConfig::vgg16(4, 10).conv_layers(), 13);
    }

    #[test]
    fn forward_shape_is_batch_by_classes() {
        let mut rng = Rng::seed_from(2);
        let mut net = Vgg::new(VggConfig::vgg11(4, 10), &mut rng);
        let y = net.forward(&Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval);
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn backward_flows_to_input() {
        let mut rng = Rng::seed_from(3);
        let mut net = Vgg::new(VggConfig::vgg11(4, 10), &mut rng);
        // Varied pixels and batch > 1: batch-norm provably zeroes the input
        // gradient of a constant image, and the deepest VGG stages run at
        // 1x1 spatial resolution where single-sample statistics degenerate.
        let mut x = Tensor::zeros(&[4, 3, 16, 16]);
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            *v = ((i as f32) * 0.37).sin() * 0.5;
        }
        let y = net.forward(&x, Mode::Train);
        let out = cross_entropy(&y, &[0, 1, 2, 3]);
        let gin = net.backward(&out.grad_logits);
        assert_eq!(gin.shape().dims(), x.shape().dims());
        assert!(gin.max_abs() > 0.0);
    }

    #[test]
    fn vgg16_has_more_params_than_vgg11() {
        let mut rng = Rng::seed_from(4);
        let a = Vgg::new(VggConfig::vgg11(4, 10), &mut rng).num_params();
        let b = Vgg::new(VggConfig::vgg16(4, 10), &mut rng).num_params();
        assert!(b > a);
    }

    #[test]
    fn deploys_cleanly() {
        let mut rng = Rng::seed_from(5);
        let mut net = Vgg::new(VggConfig::vgg11(4, 10), &mut rng);
        net.deploy().unwrap();
        assert!(net.is_deployed());
    }
}
