//! # rhb-par
//!
//! A hand-rolled scoped thread pool plus deterministic fan-out helpers.
//! The build environment is fully offline — no rayon, no crossbeam — so
//! this crate implements the minimum the compute hot path needs from
//! `std` alone:
//!
//! * [`Pool`]: persistent worker threads around one shared job queue.
//!   Callers submit a *batch* of scoped closures with [`Pool::run`] and
//!   block until every closure finished; while blocked, the calling
//!   thread drains the queue itself, so nested `run` calls (a worker
//!   task fanning out again) never deadlock and a pool of size 1 simply
//!   executes everything inline on the caller.
//! * [`Pool::parallel_map`]: splits `0..n` into contiguous chunks and
//!   returns the per-chunk results **in chunk order** — the building
//!   block for the fixed-order reductions that keep parallel results
//!   bit-exact with the serial path (see DESIGN.md's determinism
//!   contract).
//! * a process-wide pool ([`pool`]) sized by the `RHB_THREADS`
//!   environment variable (default: `std::thread::available_parallelism`).
//!
//! Panics inside a task are caught, the batch is still drained to
//! completion, and the first payload is re-thrown on the submitting
//! thread — a fan-out behaves like a `for` loop that panicked.
//!
//! ## Determinism
//!
//! The pool itself never reorders *results*: `run` executes a fixed set
//! of closures whose output locations are chosen by the caller, and
//! `parallel_map` returns chunk results positionally. Whether a parallel
//! computation is bit-identical to the serial one is therefore decided
//! entirely by how callers split the work; every user in this workspace
//! splits so that each output element is produced by exactly one task
//! using the serial evaluation order, and merges per-chunk partials in
//! chunk order on one thread.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Cancellable tasks.
// ---------------------------------------------------------------------------

/// Error a cancelled task observes at its next [`CancelToken::checkpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task cancelled")
    }
}

impl std::error::Error for Cancelled {}

struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// Cooperative cancellation handle for long-running tasks.
///
/// A supervisor holds one clone and the task another; the task polls
/// [`CancelToken::checkpoint`] (or [`CancelToken::is_cancelled`]) at its
/// natural yield points and bails out when the supervisor called
/// [`CancelToken::cancel`] or the deadline passed. Cancellation is purely
/// cooperative — a task that never polls is abandoned, not killed; the
/// campaign watchdog pairs this token with a supervisor-side timeout so
/// the *worker* is reclaimed even when the task ignores the token.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token with no deadline; cancels only via [`CancelToken::cancel`].
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that auto-cancels once `timeout` elapses.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline: Instant::now().checked_add(timeout),
            }),
        }
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation was requested or the deadline passed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
            || self.inner.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Time left before the deadline auto-cancels, if one was set.
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Poll point for cooperative tasks: `Err(Cancelled)` once cancelled.
    ///
    /// # Errors
    ///
    /// Returns [`Cancelled`] when the token was cancelled or timed out.
    pub fn checkpoint(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

/// A unit of work submitted to the pool. Scoped: may borrow from the
/// caller's stack, because [`Pool::run`] does not return before every
/// task of the batch has completed.
pub type Task<'a> = Box<dyn FnOnce() + Send + 'a>;

type StaticTask = Box<dyn FnOnce() + Send + 'static>;

/// Queue + signalling shared between the workers and submitting threads.
///
/// One condvar serves both "a job was pushed" and "a batch made
/// progress": workers and latch-waiters alike sleep on it and re-check
/// their own condition, which keeps the missed-wakeup analysis trivial.
struct Shared {
    queue: Mutex<VecDeque<StaticTask>>,
    signal: Condvar,
    shutdown: AtomicBool,
}

/// Per-batch completion latch. `remaining` counts tasks not yet
/// finished; the submitting thread blocks on the shared condvar until it
/// reaches zero. The first panic payload of the batch is stashed here.
struct Latch {
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// A fixed-size pool of worker threads executing scoped task batches.
///
/// `threads` is the *total* parallelism: a pool of size `n` spawns
/// `n - 1` workers and counts the submitting thread as the `n`-th lane.
/// Size 1 spawns nothing and [`Pool::run`] degenerates to a serial
/// `for` loop — the byte-identical serial fallback.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// Creates a pool with the given total parallelism (minimum 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            signal: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rhb-par-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        rhb_telemetry::gauge!("par/pool_size", threads);
        Pool {
            shared,
            workers,
            threads,
        }
    }

    /// Total parallelism (workers + the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes a batch of scoped tasks, blocking until all complete.
    ///
    /// The submitting thread participates: it drains the queue while
    /// waiting, so even a pool of size 1 (no workers) makes progress,
    /// and a task that itself calls `run` self-drains its sub-batch.
    ///
    /// # Panics
    ///
    /// If any task panics, the batch still runs to completion and the
    /// first panic payload is resumed on the submitting thread.
    pub fn run(&self, tasks: Vec<Task<'_>>) {
        let n = tasks.len();
        if n == 0 {
            return;
        }
        rhb_telemetry::counter!("par/tasks_total", n);
        if self.workers.is_empty() || n == 1 {
            // Serial fallback: same closures, same order, no queue.
            for task in tasks {
                task();
            }
            return;
        }
        let latch = Arc::new(Latch {
            remaining: AtomicUsize::new(n),
            panic: Mutex::new(None),
        });
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            for task in tasks {
                let latch = Arc::clone(&latch);
                let shared = Arc::clone(&self.shared);
                let wrapped: Task<'_> = Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                        let mut slot = latch.panic.lock().unwrap_or_else(|e| e.into_inner());
                        slot.get_or_insert(payload);
                    }
                    // Release-ordered so the submitter's Acquire load of 0
                    // sees every task's writes; wake anyone re-checking.
                    latch.remaining.fetch_sub(1, Ordering::Release);
                    shared.signal.notify_all();
                });
                // SAFETY: `run` blocks below until `remaining` hits zero,
                // i.e. every wrapped closure (and the borrows it captures)
                // has finished executing before the caller's frame can be
                // unwound. The 'static lifetime is therefore never
                // observable beyond the true scope of the borrow.
                let wrapped: StaticTask = unsafe { std::mem::transmute(wrapped) };
                queue.push_back(wrapped);
            }
            rhb_telemetry::gauge_max!("par/queue_depth", queue.len());
            self.shared.signal.notify_all();
        }
        // Drain until our batch is done, helping with whatever is queued
        // (our tasks, or another batch's — either way it's progress).
        let mut self_ran = 0usize;
        loop {
            if latch.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(task) = queue.pop_front() {
                drop(queue);
                task();
                self_ran += 1;
                continue;
            }
            if latch.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            // Queue empty and batch unfinished: tasks are running on
            // workers. Sleep until one completes (or something is pushed).
            let _guard = self
                .shared
                .signal
                .wait_timeout(queue, std::time::Duration::from_millis(10))
                .unwrap_or_else(|e| e.into_inner());
        }
        // Fraction of this batch the workers (rather than the submitter)
        // absorbed — an approximate utilization signal for the recorder.
        rhb_telemetry::gauge!(
            "par/worker_utilization",
            (n.saturating_sub(self_ran)) as f64 / n as f64
        );
        let payload = latch.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Splits `0..n` into contiguous chunks of at least `min_grain`
    /// items, applies `f` to each chunk in parallel, and returns the
    /// results **in chunk order**. With one thread (or one chunk) this
    /// is exactly `vec![f(0..n)]`.
    pub fn parallel_map<R, F>(&self, n: usize, min_grain: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let ranges = split_range(n, self.threads, min_grain);
        if ranges.len() <= 1 {
            return ranges.into_iter().map(&f).collect();
        }
        let mut slots: Vec<Option<R>> = Vec::with_capacity(ranges.len());
        slots.resize_with(ranges.len(), || None);
        let fref = &f;
        let tasks: Vec<Task<'_>> = slots
            .iter_mut()
            .zip(ranges)
            .map(|(slot, range)| Box::new(move || *slot = Some(fref(range))) as Task<'_>)
            .collect();
        self.run(tasks);
        slots
            .into_iter()
            .map(|s| s.expect("parallel_map task completed"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.signal.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    // Per-worker utilization accounting. Handles bypass the name lookup
    // and the sink, so the hot loop pays two Instant reads and two
    // relaxed adds per task while telemetry is enabled — and only the
    // usual one relaxed load per iteration while it is not. Task latency
    // additionally feeds the shared `par/task_s` histogram.
    let busy = rhb_telemetry::counter_handle(&format!("par/worker/{index}/busy_us"));
    let idle = rhb_telemetry::counter_handle(&format!("par/worker/{index}/idle_us"));
    loop {
        let wait_start = rhb_telemetry::enabled().then(std::time::Instant::now);
        let task = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(task) = queue.pop_front() {
                    break Some(task);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.signal.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        if let Some(t0) = wait_start {
            idle.add(t0.elapsed().as_micros() as u64);
        }
        match task {
            Some(task) => {
                rhb_telemetry::counter!("par/tasks_on_workers", 1);
                let t0 = rhb_telemetry::enabled().then(std::time::Instant::now);
                task();
                if let Some(t0) = t0 {
                    let elapsed = t0.elapsed();
                    busy.add(elapsed.as_micros() as u64);
                    rhb_telemetry::observe_value("par/task_s", elapsed.as_secs_f64());
                }
            }
            None => return,
        }
    }
}

/// Splits `0..n` into at most `pieces` contiguous ranges of at least
/// `min_grain` items each (the last range absorbs the remainder).
/// Returns an empty vector when `n == 0`.
pub fn split_range(n: usize, pieces: usize, min_grain: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let pieces = pieces.max(1).min(n.div_ceil(min_grain.max(1)));
    let chunk = n.div_ceil(pieces);
    (0..n)
        .step_by(chunk.max(1))
        .map(|start| start..(start + chunk).min(n))
        .collect()
}

/// Splits `data` into disjoint mutable chunks matching `ranges` (as
/// produced by [`split_range`]), where each range index spans `stride`
/// elements of `data`. The chunks come back in range order, ready to be
/// zipped with the ranges into per-task closures.
///
/// # Panics
///
/// Panics if the ranges are not contiguous from 0 or overrun `data`.
pub fn split_slice_mut<'a, T>(
    data: &'a mut [T],
    ranges: &[Range<usize>],
    stride: usize,
) -> Vec<&'a mut [T]> {
    let mut rest = data;
    let mut out = Vec::with_capacity(ranges.len());
    let mut covered = 0usize;
    for r in ranges {
        assert_eq!(r.start, covered, "ranges must be contiguous from 0");
        let (head, tail) = rest.split_at_mut((r.end - r.start) * stride);
        out.push(head);
        rest = tail;
        covered = r.end;
    }
    out
}

// ---------------------------------------------------------------------------
// Process-wide pool.
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<RwLock<Arc<Pool>>> = OnceLock::new();

fn global() -> &'static RwLock<Arc<Pool>> {
    GLOBAL.get_or_init(|| RwLock::new(Arc::new(Pool::new(default_threads()))))
}

/// Pool size the process starts with: `RHB_THREADS` if set (values < 1
/// clamp to 1), otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    match std::env::var("RHB_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The process-wide pool every data-parallel kernel submits to.
pub fn pool() -> Arc<Pool> {
    Arc::clone(&global().read().unwrap_or_else(|e| e.into_inner()))
}

/// Current total parallelism of the process-wide pool.
pub fn current_threads() -> usize {
    pool().threads()
}

/// Replaces the process-wide pool (benchmarks and determinism tests
/// sweep thread counts at runtime). In-flight [`Pool::run`] calls on the
/// old pool finish normally; the old pool's workers shut down when the
/// last `Arc` drops.
pub fn set_global_threads(threads: usize) {
    let mut slot = global().write().unwrap_or_else(|e| e.into_inner());
    if slot.threads() != threads.max(1) {
        *slot = Arc::new(Pool::new(threads));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_range_covers_without_overlap() {
        for (n, pieces, grain) in [(10, 3, 1), (1, 8, 1), (100, 4, 64), (7, 7, 2), (0, 3, 1)] {
            let ranges = split_range(n, pieces, grain);
            let mut covered = 0usize;
            for r in &ranges {
                assert_eq!(r.start, covered, "ranges must be contiguous");
                assert!(r.end > r.start);
                covered = r.end;
            }
            assert_eq!(covered, n);
            if grain > 0 && n > 0 {
                assert!(ranges.len() <= n.div_ceil(grain));
            }
        }
    }

    #[test]
    fn workers_record_utilization_and_task_latency() {
        rhb_telemetry::install(Arc::new(rhb_telemetry::NoopSink));
        let pool = Pool::new(4);
        let tasks: Vec<Task<'_>> = (0..64)
            .map(|_| {
                Box::new(|| std::thread::sleep(std::time::Duration::from_micros(200))) as Task<'_>
            })
            .collect();
        pool.run(tasks);
        let report = rhb_telemetry::report();
        let hist = report
            .histograms
            .iter()
            .find(|h| h.name == "par/task_s")
            .expect("task latency histogram recorded");
        assert!(hist.count > 0);
        // At least one worker accumulated busy time (the submitter drains
        // too, so not every worker necessarily ran a task).
        let busy: u64 = report
            .counters_with_prefix("par/worker")
            .iter()
            .filter(|(n, _)| n.ends_with("busy_us"))
            .map(|(_, v)| v)
            .sum();
        assert!(busy > 0, "no worker recorded busy time");
        rhb_telemetry::shutdown();
    }

    #[test]
    fn cancel_token_flags_every_clone_and_checkpoint_errors() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(clone.checkpoint().is_ok());
        assert_eq!(token.remaining(), None);
        token.cancel();
        assert!(clone.is_cancelled());
        assert_eq!(clone.checkpoint(), Err(Cancelled));
    }

    #[test]
    fn cancel_token_deadline_auto_cancels() {
        let token = CancelToken::with_deadline(Duration::from_millis(10));
        assert!(token.remaining().is_some());
        std::thread::sleep(Duration::from_millis(20));
        assert!(token.is_cancelled(), "deadline must auto-cancel");
        assert_eq!(token.remaining(), Some(Duration::ZERO));
        // A generous deadline does not cancel on its own.
        let slow = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!slow.is_cancelled());
        slow.cancel();
        assert!(slow.is_cancelled());
    }

    #[test]
    fn size_one_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let tid = std::thread::current().id();
        let mut seen = Vec::new();
        {
            let seen = &mut seen;
            pool.run(vec![Box::new(move || {
                assert_eq!(std::thread::current().id(), tid);
                seen.push(1);
            })]);
        }
        assert_eq!(seen, vec![1]);
    }
}
