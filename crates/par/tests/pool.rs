//! Behavioral suite for the scoped pool: scoped borrows, result order,
//! nesting, panic propagation, and the global-pool façade.

use rhb_par::{pool, set_global_threads, split_range, Pool};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The global pool is process-wide state; tests that resize it must not
/// interleave.
static GLOBAL_POOL_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn all_tasks_run_exactly_once() {
    for threads in [1, 2, 4] {
        let pool = Pool::new(threads);
        let counter = AtomicUsize::new(0);
        let tasks: Vec<rhb_par::Task<'_>> = (0..64)
            .map(|_| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as rhb_par::Task<'_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 64, "threads={threads}");
    }
}

#[test]
fn tasks_may_borrow_the_callers_stack() {
    let pool = Pool::new(3);
    let input: Vec<u64> = (0..1000).collect();
    let mut partials = [0u64; 4];
    {
        let chunks: Vec<&[u64]> = input.chunks(250).collect();
        let tasks: Vec<rhb_par::Task<'_>> = partials
            .iter_mut()
            .zip(chunks)
            .map(|(slot, chunk)| Box::new(move || *slot = chunk.iter().sum()) as rhb_par::Task<'_>)
            .collect();
        pool.run(tasks);
    }
    assert_eq!(partials.iter().sum::<u64>(), 1000 * 999 / 2);
}

#[test]
fn parallel_map_returns_results_in_chunk_order() {
    for threads in [1, 2, 4] {
        let pool = Pool::new(threads);
        let results = pool.parallel_map(103, 10, |range| range.clone());
        // Chunk order == positional order, covering 0..103 contiguously.
        let mut covered = 0usize;
        for r in &results {
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, 103);
    }
}

#[test]
fn parallel_map_is_identical_across_thread_counts() {
    let work =
        |range: std::ops::Range<usize>| -> f32 { range.map(|i| (i as f32 * 0.001).sin()).sum() };
    let serial = Pool::new(1).parallel_map(10_000, 256, work);
    for threads in [2, 4, 7] {
        let parallel = Pool::new(threads).parallel_map(10_000, 256, work);
        // Same chunking (decided by grain and n, not pool size would differ)…
        // chunk count may differ per pool size, so compare the fixed-order
        // fold instead: replaying chunks in order must agree bit-for-bit
        // with a fully serial scan when each chunk is internally serial.
        let serial_total = serial.iter().fold(0.0f64, |a, &b| a + b as f64);
        let par_total = parallel.iter().fold(0.0f64, |a, &b| a + b as f64);
        // f64 fold of few chunks of f32 partials: not bitwise comparable
        // across different chunkings — the bitwise guarantee is per
        // identical chunking, which split_range gives for equal inputs.
        assert!((serial_total - par_total).abs() < 0.5);
        let same_split = split_range(10_000, threads, 256);
        let redone: Vec<f32> = same_split.iter().cloned().map(work).collect();
        assert_eq!(redone, Pool::new(threads).parallel_map(10_000, 256, work));
    }
}

#[test]
fn nested_run_does_not_deadlock() {
    let pool = Pool::new(2);
    let total = AtomicUsize::new(0);
    let tasks: Vec<rhb_par::Task<'_>> = (0..4)
        .map(|_| {
            let pool = &pool;
            let total = &total;
            Box::new(move || {
                let inner: Vec<rhb_par::Task<'_>> = (0..4)
                    .map(|_| {
                        Box::new(move || {
                            total.fetch_add(1, Ordering::Relaxed);
                        }) as rhb_par::Task<'_>
                    })
                    .collect();
                pool.run(inner);
            }) as rhb_par::Task<'_>
        })
        .collect();
    pool.run(tasks);
    assert_eq!(total.load(Ordering::Relaxed), 16);
}

#[test]
fn panic_in_a_task_propagates_after_the_batch_drains() {
    let pool = Pool::new(3);
    let completed = AtomicUsize::new(0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let tasks: Vec<rhb_par::Task<'_>> = (0..8)
            .map(|i| {
                let completed = &completed;
                Box::new(move || {
                    if i == 3 {
                        panic!("task 3 exploded");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }) as rhb_par::Task<'_>
            })
            .collect();
        pool.run(tasks);
    }));
    let payload = result.expect_err("panic must propagate to the submitter");
    let msg = payload.downcast_ref::<&str>().copied().unwrap_or_else(|| {
        payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .unwrap()
    });
    assert!(msg.contains("task 3 exploded"));
    // Every non-panicking task still ran: the batch drains fully.
    assert_eq!(completed.load(Ordering::Relaxed), 7);
    // The pool survives a panicked batch.
    let after = AtomicUsize::new(0);
    pool.run(vec![Box::new(|| {
        after.fetch_add(1, Ordering::Relaxed);
    })]);
    assert_eq!(after.load(Ordering::Relaxed), 1);
}

#[test]
fn global_pool_resizes_and_honors_minimum() {
    let _guard = GLOBAL_POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_global_threads(3);
    assert_eq!(pool().threads(), 3);
    set_global_threads(0); // clamps to 1
    assert_eq!(pool().threads(), 1);
    set_global_threads(1);
    let sum = pool().parallel_map(100, 1, |r| r.sum::<usize>());
    assert_eq!(sum.iter().sum::<usize>(), 4950);
}
