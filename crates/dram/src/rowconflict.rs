//! Row-buffer-conflict timing: detecting same-bank address pairs
//! (paper §IV-A1, Appendix C, Fig. 12).
//!
//! Each DRAM bank has a row buffer caching the last-activated row. Reading
//! two addresses in the *same bank but different rows* forces a precharge +
//! activate cycle (~400 cycles in the paper's Fig. 12); any other pair is
//! served faster. Timing pairs of physically contiguous addresses therefore
//! reveals which of them share a bank — the prerequisite for placing
//! aggressor rows around a victim.

use crate::geometry::DramGeometry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Measured access latency when the pair conflicts in a bank (cycles).
pub const CONFLICT_LATENCY: f64 = 400.0;

/// Measured access latency without a conflict (cycles).
pub const NO_CONFLICT_LATENCY: f64 = 230.0;

/// Histogram of probe-pair latencies in cycles — the bimodal distribution
/// of Fig. 12. Bucket bounds straddle both latency modes so the fast and
/// slow populations land in separate buckets; registered by
/// [`ConflictScan::run`], summarized in the run artifact.
pub const LATENCY_HISTOGRAM: &str = "dram/rowconflict/latency_cycles";

/// Timing oracle over a simulated device.
#[derive(Debug, Clone)]
pub struct RowConflictOracle {
    geometry: DramGeometry,
    rng: StdRng,
    noise: f64,
}

impl RowConflictOracle {
    /// Creates an oracle with the paper-like noise floor.
    pub fn new(geometry: DramGeometry, seed: u64) -> Self {
        RowConflictOracle {
            geometry,
            rng: StdRng::seed_from_u64(seed),
            noise: 12.0,
        }
    }

    /// Widens the noise floor by `cycles` — the chaos-mode latency fault:
    /// a contended memory bus adds jitter that pushes both latency modes
    /// toward the classification threshold, degrading bank detection.
    /// Driven by [`crate::chaos::ChaosConfig::latency_noise`].
    pub fn with_extra_noise(mut self, cycles: f64) -> Self {
        self.noise += cycles.max(0.0);
        self
    }

    /// Times alternating accesses to two frames, returning cycles.
    pub fn time_pair(&mut self, frame_a: usize, frame_b: usize) -> f64 {
        let row_a = self.geometry.row_of_frame(frame_a);
        let row_b = self.geometry.row_of_frame(frame_b);
        let conflict = row_a != row_b && self.geometry.same_bank(frame_a, frame_b);
        let base = if conflict {
            CONFLICT_LATENCY
        } else {
            NO_CONFLICT_LATENCY
        };
        base + self.rng.gen_range(-self.noise..self.noise)
    }

    /// The device geometry.
    pub fn geometry(&self) -> DramGeometry {
        self.geometry
    }
}

/// Latency histogram of one reference frame against many probe frames —
/// the distribution of Fig. 12, where roughly `1/banks` of probes conflict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConflictScan {
    /// Latency of each probe pair, in cycles.
    pub latencies: Vec<f64>,
    /// Probe frames, parallel to `latencies`.
    pub probes: Vec<usize>,
}

impl ConflictScan {
    /// Measures `reference` against every frame in `probes`.
    pub fn run(oracle: &mut RowConflictOracle, reference: usize, probes: &[usize]) -> Self {
        let _span = rhb_telemetry::span!("rowconflict_scan", probes = probes.len());
        rhb_telemetry::counter!("dram/rowconflict_probes", probes.len());
        rhb_telemetry::register_histogram(
            LATENCY_HISTOGRAM,
            &[
                200.0, 220.0, 240.0, 260.0, 280.0, 320.0, 360.0, 390.0, 420.0, 450.0,
            ],
        );
        let latencies: Vec<f64> = probes
            .iter()
            .map(|&p| oracle.time_pair(reference, p))
            .collect();
        for &l in &latencies {
            rhb_telemetry::observe!(LATENCY_HISTOGRAM, l);
        }
        ConflictScan {
            latencies,
            probes: probes.to_vec(),
        }
    }

    /// Classifies probes as same-bank using a latency threshold halfway
    /// between the two latency modes.
    pub fn same_bank_frames(&self) -> Vec<usize> {
        let threshold = (CONFLICT_LATENCY + NO_CONFLICT_LATENCY) / 2.0;
        self.latencies
            .iter()
            .zip(&self.probes)
            .filter_map(|(&l, &p)| (l > threshold).then_some(p))
            .collect()
    }

    /// Fraction of probes classified same-bank.
    pub fn conflict_fraction(&self) -> f64 {
        self.same_bank_frames().len() as f64 / self.probes.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::FRAMES_PER_ROW;

    #[test]
    fn same_row_never_conflicts() {
        let g = DramGeometry::small();
        let mut oracle = RowConflictOracle::new(g, 1);
        // Frames 0 and 1 share row 0.
        let t = oracle.time_pair(0, 1);
        assert!(t < 300.0, "same-row latency {t}");
    }

    #[test]
    fn same_bank_different_row_conflicts() {
        let g = DramGeometry::small();
        let mut oracle = RowConflictOracle::new(g, 2);
        // Row 0 and row `banks` share bank 0.
        let other = g.banks * FRAMES_PER_ROW;
        let t = oracle.time_pair(0, other);
        assert!(t > 350.0, "conflict latency {t}");
    }

    #[test]
    fn conflict_fraction_is_about_one_over_banks() {
        // Fig. 12: about 1/16 of contiguous addresses conflict on a
        // 16-bank device. Our small geometry has 4 banks → ~1/4, but
        // same-row/adjacent-frame pairs dilute it slightly.
        let g = DramGeometry::ddr4_16gb();
        let mut oracle = RowConflictOracle::new(g, 3);
        let probes: Vec<usize> = (1..2049).collect();
        let scan = ConflictScan::run(&mut oracle, 0, &probes);
        let frac = scan.conflict_fraction();
        let expect = 1.0 / g.banks as f64;
        assert!(
            (frac - expect).abs() < expect * 0.3,
            "conflict fraction {frac}, expected ≈{expect}"
        );
    }

    #[test]
    fn detected_frames_truly_share_the_bank() {
        let g = DramGeometry::small();
        let mut oracle = RowConflictOracle::new(g, 4);
        let probes: Vec<usize> = (2..512).collect();
        let scan = ConflictScan::run(&mut oracle, 0, &probes);
        for f in scan.same_bank_frames() {
            assert!(g.same_bank(0, f), "frame {f} misclassified");
        }
    }

    #[test]
    fn chaos_latency_noise_degrades_bank_detection() {
        // With the paper's noise floor the classifier is perfect
        // (`detected_frames_truly_share_the_bank`); under heavy chaos
        // jitter the two latency modes bleed across the threshold and
        // misclassifications appear.
        let g = DramGeometry::ddr4_16gb();
        let mut noisy = RowConflictOracle::new(g, 4).with_extra_noise(150.0);
        let probes: Vec<usize> = (1..2049).collect();
        let scan = ConflictScan::run(&mut noisy, 0, &probes);
        let wrong = scan
            .same_bank_frames()
            .iter()
            .filter(|&&f| !g.same_bank(0, f))
            .count();
        assert!(wrong > 0, "150-cycle jitter should cause misclassification");
    }

    #[test]
    fn latencies_form_two_modes() {
        let g = DramGeometry::ddr4_16gb();
        let mut oracle = RowConflictOracle::new(g, 5);
        let probes: Vec<usize> = (1..1025).collect();
        let scan = ConflictScan::run(&mut oracle, 0, &probes);
        let fast = scan.latencies.iter().filter(|&&l| l < 300.0).count();
        let slow = scan.latencies.iter().filter(|&&l| l > 350.0).count();
        assert_eq!(fast + slow, scan.latencies.len(), "no in-between latencies");
        assert!(fast > slow, "fast mode must dominate");
    }
}
