//! DRAM organization: banks, rows, and 4 KB page frames.

use serde::{Deserialize, Serialize};

/// Bytes per 4 KB page frame (x86-64 base pages).
pub const FRAME_SIZE: usize = 4096;

/// Bytes per DRAM row (8 KB, as in the paper's huge-page discussion).
pub const ROW_SIZE: usize = 8192;

/// Page frames per DRAM row.
pub const FRAMES_PER_ROW: usize = ROW_SIZE / FRAME_SIZE;

/// Physical layout of a DRAM device: how physical frame numbers map onto
/// (bank, row, slot) coordinates.
///
/// The mapping interleaves consecutive rows across banks, mimicking the
/// rank/bank interleaving that memory controllers use to maximize
/// parallelism (§VIII's huge-page discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramGeometry {
    /// Number of banks in the device.
    pub banks: usize,
    /// Rows per bank.
    pub rows_per_bank: usize,
}

impl DramGeometry {
    /// A 2 GB DDR3-like device (the paper's M378B5773DH0-CH9).
    pub fn ddr3_2gb() -> Self {
        DramGeometry {
            banks: 8,
            rows_per_bank: 2 * 1024 * 1024 * 1024 / ROW_SIZE / 8,
        }
    }

    /// A 16 GB DDR4-like device (the paper's CMU64GX4M4C3200C16), scaled to
    /// bank/row counts typical of a single rank.
    pub fn ddr4_16gb() -> Self {
        DramGeometry {
            banks: 16,
            rows_per_bank: 16 * 1024 * 1024 * 1024usize / ROW_SIZE / 16,
        }
    }

    /// A small geometry for fast tests (64 MB).
    pub fn small() -> Self {
        DramGeometry {
            banks: 4,
            rows_per_bank: 64 * 1024 * 1024 / ROW_SIZE / 4,
        }
    }

    /// Total DRAM rows.
    pub fn total_rows(&self) -> usize {
        self.banks * self.rows_per_bank
    }

    /// Total 4 KB page frames.
    pub fn total_frames(&self) -> usize {
        self.total_rows() * FRAMES_PER_ROW
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.total_rows() * ROW_SIZE
    }

    /// The (bank, row-within-bank) holding a global row index.
    ///
    /// Consecutive row indices rotate across banks.
    pub fn bank_of_row(&self, row: usize) -> usize {
        row % self.banks
    }

    /// The global DRAM row containing a page frame.
    pub fn row_of_frame(&self, frame: usize) -> usize {
        frame / FRAMES_PER_ROW
    }

    /// The slot (0 or 1) of a frame within its row.
    pub fn slot_of_frame(&self, frame: usize) -> usize {
        frame % FRAMES_PER_ROW
    }

    /// The frames contained in a global row.
    pub fn frames_of_row(&self, row: usize) -> [usize; FRAMES_PER_ROW] {
        [row * FRAMES_PER_ROW, row * FRAMES_PER_ROW + 1]
    }

    /// Whether two frames live in the same bank (a Rowhammer prerequisite:
    /// aggressors and victim must share a bank).
    pub fn same_bank(&self, frame_a: usize, frame_b: usize) -> bool {
        self.bank_of_row(self.row_of_frame(frame_a)) == self.bank_of_row(self.row_of_frame(frame_b))
    }

    /// Rows adjacent to `row` within the same bank — the aggressor
    /// positions for double-sided hammering. Adjacency within a bank means
    /// a stride of `banks` in global row index.
    pub fn neighbors_in_bank(&self, row: usize) -> (Option<usize>, Option<usize>) {
        let below = row.checked_sub(self.banks);
        let above = row + self.banks;
        (below, (above < self.total_rows()).then_some(above))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_matches_construction() {
        assert_eq!(DramGeometry::ddr3_2gb().capacity(), 2 * 1024 * 1024 * 1024);
        assert_eq!(DramGeometry::small().capacity(), 64 * 1024 * 1024);
    }

    #[test]
    fn frames_per_row_is_two() {
        // The paper: a fixed 8 KB row always spans two 4 KB pages.
        assert_eq!(FRAMES_PER_ROW, 2);
    }

    #[test]
    fn row_frame_round_trip() {
        let g = DramGeometry::small();
        for frame in [0usize, 1, 2, 17, 999] {
            let row = g.row_of_frame(frame);
            let frames = g.frames_of_row(row);
            assert!(frames.contains(&frame));
        }
    }

    #[test]
    fn bank_rotation_spreads_consecutive_rows() {
        let g = DramGeometry::small();
        let banks: Vec<usize> = (0..8).map(|r| g.bank_of_row(r)).collect();
        assert_eq!(banks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn neighbors_stay_in_same_bank() {
        let g = DramGeometry::small();
        let row = 42;
        let (below, above) = g.neighbors_in_bank(row);
        assert_eq!(g.bank_of_row(below.unwrap()), g.bank_of_row(row));
        assert_eq!(g.bank_of_row(above.unwrap()), g.bank_of_row(row));
    }

    #[test]
    fn first_row_has_no_lower_neighbor() {
        let g = DramGeometry::small();
        let (below, above) = g.neighbors_in_bank(2);
        assert!(below.is_none());
        assert!(above.is_some());
    }

    #[test]
    fn same_bank_is_reflexive_for_row_siblings() {
        let g = DramGeometry::small();
        assert!(g.same_bank(10, 11)); // both frames of row 5
    }
}
