//! Chaos mode: deterministic, seeded fault injection for the online phase.
//!
//! The paper's online attack is explicitly probabilistic — templated cells
//! do not always re-flip, memory massaging can miss a frame, and a stale
//! flip profile silently drops ASR. Everything upstream of this module
//! simulates a *cooperative* DRAM; chaos mode turns the simulator hostile
//! so the adaptive recovery driver ([`crate::online::OnlineAttack::
//! execute_adaptive`]) has something real to recover from:
//!
//! * **templating false positives** — the profile reports a vulnerable
//!   cell that does not actually exist (a phantom); hammering the matched
//!   frame never fires it;
//! * **templating false negatives** — a genuinely matchable target is
//!   reported unmatchable for one matching round (a stale profile);
//! * **flip flakiness** — a reachable cell fails to fire on a given
//!   hammer pass (the paper's own motivation for per-flip verification);
//! * **placement eviction** — the victim page is evicted from its flippy
//!   frame between place and hammer, so a whole pass lands nothing;
//! * **ECC correction** — an ECC-style corrector silently reverts a
//!   fraction of *single-bit* flips (multi-bit flips in one 64-bit word
//!   evade it, as on real ECC DIMMs);
//! * **row-conflict latency noise** — widens the timing oracle's noise
//!   floor, degrading bank detection.
//!
//! Every decision is a pure hash of `(seed, fault kind, event key)` —
//! *not* a draw from a sequential RNG stream — so the fault schedule is
//! identical regardless of the order in which the attack queries it
//! (hash-map iteration order, retry interleaving, and recovery strategy
//! cannot perturb it). Same seed → same faults, always.

use std::collections::HashSet;

/// Bits per ECC word: the corrector model operates on 64-bit words, the
/// granularity of common (72,64) SEC-DED codes.
pub const ECC_WORD_BITS: usize = 64;

/// Fault-injection rates and seed. All rates are probabilities in `[0, 1]`;
/// a rate of zero disables that fault class entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed for the fault schedule (decisions are hashes of this).
    pub seed: u64,
    /// P(matched cell is a phantom that never fires).
    pub template_false_positive: f64,
    /// P(matchable target reported unmatchable, per matching round).
    pub template_false_negative: f64,
    /// P(reachable cell fails to fire, per hammer pass).
    pub flip_flakiness: f64,
    /// P(page evicted from its frame, per hammer pass).
    pub eviction: f64,
    /// P(a single-bit flip in an ECC word is silently corrected).
    pub ecc_correction: f64,
    /// Extra row-conflict timing jitter in cycles (0 = none).
    pub latency_noise: f64,
}

impl ChaosConfig {
    /// All fault classes off (the identity configuration).
    pub fn disabled() -> Self {
        ChaosConfig {
            seed: 0,
            template_false_positive: 0.0,
            template_false_negative: 0.0,
            flip_flakiness: 0.0,
            eviction: 0.0,
            ecc_correction: 0.0,
            latency_noise: 0.0,
        }
    }

    /// A seeded configuration with every rate zero; set fields from here.
    pub fn seeded(seed: u64) -> Self {
        ChaosConfig {
            seed,
            ..Self::disabled()
        }
    }

    /// Whether any fault class can fire.
    pub fn is_active(&self) -> bool {
        self.template_false_positive > 0.0
            || self.template_false_negative > 0.0
            || self.flip_flakiness > 0.0
            || self.eviction > 0.0
            || self.ecc_correction > 0.0
            || self.latency_noise > 0.0
    }

    /// Parses the `RHB_CHAOS` environment variable. Unset, empty, `off`,
    /// or `0` mean no chaos. Otherwise a comma-separated key=value list:
    ///
    /// ```text
    /// RHB_CHAOS="flaky=0.2,evict=0.05,fp=0.01,fn=0.02,ecc=0.1,latency=40,seed=7"
    /// ```
    ///
    /// Unknown keys and unparsable values are ignored with a warning on
    /// stderr so a typo degrades loudly instead of silently.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("RHB_CHAOS").ok()?;
        Self::parse(&raw)
    }

    /// Parses the `RHB_CHAOS` syntax from a string (see [`Self::from_env`]).
    pub fn parse(raw: &str) -> Option<Self> {
        let raw = raw.trim();
        if raw.is_empty() || raw.eq_ignore_ascii_case("off") || raw == "0" {
            return None;
        }
        let mut config = Self::seeded(0xca05);
        for pair in raw.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let Some((key, value)) = pair.split_once('=') else {
                eprintln!("RHB_CHAOS: ignoring malformed entry {pair:?} (want key=value)");
                continue;
            };
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                match value.parse::<u64>() {
                    Ok(seed) => config.seed = seed,
                    Err(_) => eprintln!("RHB_CHAOS: ignoring non-integer seed {value:?}"),
                }
                continue;
            }
            let Ok(rate) = value.parse::<f64>() else {
                eprintln!("RHB_CHAOS: ignoring non-numeric value for {key}: {value:?}");
                continue;
            };
            match key {
                "fp" => config.template_false_positive = rate.clamp(0.0, 1.0),
                "fn" => config.template_false_negative = rate.clamp(0.0, 1.0),
                "flaky" => config.flip_flakiness = rate.clamp(0.0, 1.0),
                "evict" => config.eviction = rate.clamp(0.0, 1.0),
                "ecc" => config.ecc_correction = rate.clamp(0.0, 1.0),
                "latency" => config.latency_noise = rate.max(0.0),
                _ => eprintln!("RHB_CHAOS: ignoring unknown key {key:?}"),
            }
        }
        config.is_active().then_some(config)
    }
}

/// The fault classes chaos mode can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A matched cell was a templating phantom: it never fires.
    TemplateFalsePositive,
    /// Matching was denied for a target this round (stale profile).
    TemplateFalseNegative,
    /// A reachable cell failed to fire on one hammer pass.
    FlakyFlip,
    /// The page was evicted from its frame for one hammer pass.
    Eviction,
    /// An ECC-style corrector reverted a single-bit flip.
    EccMasked,
}

impl FaultKind {
    /// All injectable kinds, in a fixed reporting order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::TemplateFalsePositive,
        FaultKind::TemplateFalseNegative,
        FaultKind::FlakyFlip,
        FaultKind::Eviction,
        FaultKind::EccMasked,
    ];

    /// Stable telemetry/reporting name.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::TemplateFalsePositive => "template_fp",
            FaultKind::TemplateFalseNegative => "template_fn",
            FaultKind::FlakyFlip => "flaky_flip",
            FaultKind::Eviction => "eviction",
            FaultKind::EccMasked => "ecc_masked",
        }
    }

    /// Domain-separation constant for the decision hash.
    fn salt(&self) -> u64 {
        match self {
            FaultKind::TemplateFalsePositive => 0x7e3a_11c9_d0b5_f001,
            FaultKind::TemplateFalseNegative => 0x7e3a_11c9_d0b5_f002,
            FaultKind::FlakyFlip => 0x7e3a_11c9_d0b5_f003,
            FaultKind::Eviction => 0x7e3a_11c9_d0b5_f004,
            FaultKind::EccMasked => 0x7e3a_11c9_d0b5_f005,
        }
    }
}

/// One injected fault, for the flip-provenance ledger and run artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// What was injected.
    pub kind: FaultKind,
    /// Frame (or file page, for eviction / false negatives) involved.
    pub location: usize,
    /// Bit offset involved (0 when the fault is page-granular).
    pub bit_offset: usize,
    /// Hammer pass / matching round the fault fired on (1-based for
    /// hammer passes, 0-based for matching rounds).
    pub attempt: u32,
}

/// The live fault injector: rolls deterministic per-event decisions and
/// logs every fault that fires.
#[derive(Debug, Clone)]
pub struct ChaosEngine {
    config: ChaosConfig,
    faults: Vec<InjectedFault>,
    /// Cells declared phantom at match time: `(frame, bit_offset)`. A
    /// phantom persists for the whole run — re-hammering never helps, only
    /// an alternate target does.
    phantoms: HashSet<(usize, usize)>,
}

impl ChaosEngine {
    /// Creates an engine over a configuration.
    pub fn new(config: ChaosConfig) -> Self {
        ChaosEngine {
            config,
            faults: Vec::new(),
            phantoms: HashSet::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    /// Every fault injected so far, in injection order.
    pub fn faults(&self) -> &[InjectedFault] {
        &self.faults
    }

    /// Total faults injected.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// Fault counts per kind, in [`FaultKind::ALL`] order (zero-count
    /// kinds included).
    pub fn counts_by_kind(&self) -> Vec<(FaultKind, usize)> {
        FaultKind::ALL
            .iter()
            .map(|&k| (k, self.faults.iter().filter(|f| f.kind == k).count()))
            .collect()
    }

    /// Deterministic uniform draw in `[0, 1)` for one event. Pure in
    /// `(seed, kind, a, b)` — call order cannot change the outcome.
    fn unit(&self, kind: FaultKind, a: u64, b: u64) -> f64 {
        let mut h = self
            .config
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(kind.salt());
        h ^= splitmix64(a.wrapping_add(0x1656_67b1_9e37_79f9));
        h ^= splitmix64(b.wrapping_add(0x2545_f491_4f6c_dd1d));
        (splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn roll(&mut self, kind: FaultKind, rate: f64, a: u64, b: u64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let fired = self.unit(kind, a, b) < rate;
        if fired {
            rhb_telemetry::counter!("dram/chaos/faults", 1);
        }
        fired
    }

    fn record(&mut self, kind: FaultKind, location: usize, bit_offset: usize, attempt: u32) {
        self.faults.push(InjectedFault {
            kind,
            location,
            bit_offset,
            attempt,
        });
    }

    /// Rolls a templating false positive for a freshly matched cell. On
    /// success the cell becomes a phantom: present in the profile, absent
    /// in silicon.
    pub fn template_false_positive(&mut self, frame: usize, bit_offset: usize) -> bool {
        let fired = self.roll(
            FaultKind::TemplateFalsePositive,
            self.config.template_false_positive,
            frame as u64,
            bit_offset as u64,
        );
        if fired {
            self.phantoms.insert((frame, bit_offset));
            self.record(FaultKind::TemplateFalsePositive, frame, bit_offset, 0);
            rhb_telemetry::counter!("dram/chaos/template_fp", 1);
        }
        fired
    }

    /// Whether a cell was previously declared phantom.
    pub fn is_phantom(&self, frame: usize, bit_offset: usize) -> bool {
        self.phantoms.contains(&(frame, bit_offset))
    }

    /// Rolls a templating false negative: the profile denies a matchable
    /// target for this matching `round`. Keyed per round so a later
    /// re-match (after re-templating) can succeed — the staleness is
    /// transient.
    pub fn template_false_negative(&mut self, bit_offset: usize, round: u32) -> bool {
        let fired = self.roll(
            FaultKind::TemplateFalseNegative,
            self.config.template_false_negative,
            bit_offset as u64,
            u64::from(round),
        );
        if fired {
            self.record(FaultKind::TemplateFalseNegative, 0, bit_offset, round);
            rhb_telemetry::counter!("dram/chaos/template_fn", 1);
        }
        fired
    }

    /// Rolls per-pass flip flakiness for one reachable cell.
    pub fn flaky_flip(&mut self, frame: usize, bit_offset: usize, attempt: u32) -> bool {
        let key = (frame as u64) << 20 | bit_offset as u64;
        let fired = self.roll(
            FaultKind::FlakyFlip,
            self.config.flip_flakiness,
            key,
            u64::from(attempt),
        );
        if fired {
            self.record(FaultKind::FlakyFlip, frame, bit_offset, attempt);
            rhb_telemetry::counter!("dram/chaos/flaky_flip", 1);
        }
        fired
    }

    /// Rolls per-pass eviction: the file page left its frame between place
    /// and hammer, so this pass lands nothing in the page.
    pub fn evicted(&mut self, file_page: usize, attempt: u32) -> bool {
        let fired = self.roll(
            FaultKind::Eviction,
            self.config.eviction,
            file_page as u64,
            u64::from(attempt),
        );
        if fired {
            self.record(FaultKind::Eviction, file_page, 0, attempt);
            rhb_telemetry::counter!("dram/chaos/eviction", 1);
        }
        fired
    }

    /// Rolls ECC correction for a *single-bit* flip in one 64-bit word.
    /// The caller guarantees the word carries exactly one fresh flip this
    /// pass; multi-bit words evade the corrector by construction.
    pub fn ecc_masks(&mut self, file_page: usize, word: usize, attempt: u32) -> bool {
        let key = (file_page as u64) << 20 | word as u64;
        let fired = self.roll(
            FaultKind::EccMasked,
            self.config.ecc_correction,
            key,
            u64::from(attempt),
        );
        if fired {
            self.record(
                FaultKind::EccMasked,
                file_page,
                word * ECC_WORD_BITS,
                attempt,
            );
            rhb_telemetry::counter!("dram/chaos/ecc_masked", 1);
        }
        fired
    }

    /// Extra row-conflict timing jitter in cycles.
    pub fn latency_noise_cycles(&self) -> f64 {
        self.config.latency_noise
    }
}

/// SplitMix64 finalizer: the avalanche stage behind every decision hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flaky_config(rate: f64, seed: u64) -> ChaosConfig {
        ChaosConfig {
            flip_flakiness: rate,
            ..ChaosConfig::seeded(seed)
        }
    }

    #[test]
    fn disabled_config_never_fires() {
        let mut engine = ChaosEngine::new(ChaosConfig::disabled());
        for i in 0..1000 {
            assert!(!engine.flaky_flip(i, i * 13, 1));
            assert!(!engine.evicted(i, 1));
            assert!(!engine.template_false_positive(i, i));
            assert!(!engine.template_false_negative(i, 0));
            assert!(!engine.ecc_masks(i, i, 1));
        }
        assert_eq!(engine.fault_count(), 0);
        assert!(!ChaosConfig::disabled().is_active());
    }

    #[test]
    fn rate_one_always_fires() {
        let mut engine = ChaosEngine::new(flaky_config(1.0, 3));
        for i in 0..100 {
            assert!(engine.flaky_flip(i, 7, 1));
        }
        assert_eq!(engine.fault_count(), 100);
    }

    #[test]
    fn rates_are_approximately_respected() {
        let mut engine = ChaosEngine::new(flaky_config(0.2, 42));
        let fired = (0..10_000)
            .filter(|&i| engine.flaky_flip(i, i * 31 % PAGE_BITS_LIKE, 1))
            .count();
        let frac = fired as f64 / 10_000.0;
        assert!((frac - 0.2).abs() < 0.02, "flakiness rate realized {frac}");
    }
    const PAGE_BITS_LIKE: usize = 32_768;

    #[test]
    fn decisions_are_independent_of_query_order() {
        let keys: Vec<(usize, usize)> = (0..200).map(|i| (i * 7 % 50, i * 131 % 32_768)).collect();
        let mut forward = ChaosEngine::new(flaky_config(0.5, 9));
        let mut backward = ChaosEngine::new(flaky_config(0.5, 9));
        let a: Vec<bool> = keys
            .iter()
            .map(|&(f, b)| forward.flaky_flip(f, b, 2))
            .collect();
        let b: Vec<bool> = keys
            .iter()
            .rev()
            .map(|&(f, b)| backward.flaky_flip(f, b, 2))
            .collect();
        let b_forward: Vec<bool> = b.into_iter().rev().collect();
        assert_eq!(a, b_forward, "decision depends on call order");
        // The fault logs contain the same set either way.
        let mut fa = forward.faults().to_vec();
        let mut fb = backward.faults().to_vec();
        fa.sort_by_key(|f| (f.location, f.bit_offset));
        fb.sort_by_key(|f| (f.location, f.bit_offset));
        assert_eq!(fa, fb);
    }

    #[test]
    fn attempts_reroll_the_decision() {
        // A flaky cell on pass 1 is usually fine on a later pass: the
        // per-attempt key must actually enter the hash.
        let mut engine = ChaosEngine::new(flaky_config(0.5, 17));
        let outcomes: Vec<bool> = (1..=32).map(|a| engine.flaky_flip(3, 999, a)).collect();
        assert!(outcomes.iter().any(|&f| f), "no pass ever flaky at 50%");
        assert!(!outcomes.iter().all(|&f| f), "every pass flaky at 50%");
    }

    #[test]
    fn phantoms_persist_for_the_run() {
        let config = ChaosConfig {
            template_false_positive: 1.0,
            ..ChaosConfig::seeded(5)
        };
        let mut engine = ChaosEngine::new(config);
        assert!(engine.template_false_positive(10, 400));
        assert!(engine.is_phantom(10, 400));
        assert!(!engine.is_phantom(10, 401));
    }

    #[test]
    fn counts_by_kind_cover_every_kind() {
        let config = ChaosConfig {
            flip_flakiness: 1.0,
            eviction: 1.0,
            ..ChaosConfig::seeded(1)
        };
        let mut engine = ChaosEngine::new(config);
        engine.flaky_flip(0, 0, 1);
        engine.evicted(0, 1);
        let counts = engine.counts_by_kind();
        assert_eq!(counts.len(), FaultKind::ALL.len());
        let flaky = counts
            .iter()
            .find(|(k, _)| *k == FaultKind::FlakyFlip)
            .unwrap();
        assert_eq!(flaky.1, 1);
        let fp = counts
            .iter()
            .find(|(k, _)| *k == FaultKind::TemplateFalsePositive)
            .unwrap();
        assert_eq!(fp.1, 0);
    }

    #[test]
    fn parse_reads_every_key() {
        let config =
            ChaosConfig::parse("flaky=0.2, evict=0.05,fp=0.01,fn=0.02,ecc=0.1,latency=40,seed=7")
                .unwrap();
        assert_eq!(config.seed, 7);
        assert_eq!(config.flip_flakiness, 0.2);
        assert_eq!(config.eviction, 0.05);
        assert_eq!(config.template_false_positive, 0.01);
        assert_eq!(config.template_false_negative, 0.02);
        assert_eq!(config.ecc_correction, 0.1);
        assert_eq!(config.latency_noise, 40.0);
    }

    #[test]
    fn parse_rejects_off_and_empty() {
        assert!(ChaosConfig::parse("").is_none());
        assert!(ChaosConfig::parse("off").is_none());
        assert!(ChaosConfig::parse("0").is_none());
        // All rates zero is inactive even if a seed is given.
        assert!(ChaosConfig::parse("seed=9").is_none());
    }

    #[test]
    fn parse_survives_garbage_entries() {
        let config = ChaosConfig::parse("flaky=0.3,bogus=1,evict=notanumber,seed=abc").unwrap();
        assert_eq!(config.flip_flakiness, 0.3);
        assert_eq!(config.eviction, 0.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Same seed → identical fault schedule, bit for bit, over an
        /// arbitrary query sequence (the ChaosConfig determinism
        /// guarantee).
        #[test]
        fn same_seed_same_fault_schedule(
            seed in 0u64..10_000,
            queries in prop::collection::vec((0usize..64, 0usize..32_768, 1u32..5), 1..80),
        ) {
            let config = ChaosConfig {
                flip_flakiness: 0.4,
                eviction: 0.2,
                template_false_positive: 0.3,
                template_false_negative: 0.25,
                ecc_correction: 0.35,
                ..ChaosConfig::seeded(seed)
            };
            let mut a = ChaosEngine::new(config);
            let mut b = ChaosEngine::new(config);
            for &(frame, bit, attempt) in &queries {
                prop_assert_eq!(a.flaky_flip(frame, bit, attempt), b.flaky_flip(frame, bit, attempt));
                prop_assert_eq!(a.evicted(frame, attempt), b.evicted(frame, attempt));
                prop_assert_eq!(
                    a.template_false_positive(frame, bit),
                    b.template_false_positive(frame, bit)
                );
                prop_assert_eq!(
                    a.template_false_negative(bit, attempt),
                    b.template_false_negative(bit, attempt)
                );
                prop_assert_eq!(
                    a.ecc_masks(frame, bit / ECC_WORD_BITS, attempt),
                    b.ecc_masks(frame, bit / ECC_WORD_BITS, attempt)
                );
            }
            prop_assert_eq!(a.faults(), b.faults());
        }

        /// Different seeds produce different schedules (no seed collapse).
        #[test]
        fn seeds_differentiate_schedules(seed in 0u64..1_000) {
            let mut a = ChaosEngine::new(ChaosConfig {
                flip_flakiness: 0.5,
                ..ChaosConfig::seeded(seed)
            });
            let mut b = ChaosEngine::new(ChaosConfig {
                flip_flakiness: 0.5,
                ..ChaosConfig::seeded(seed ^ 0xdead_beef)
            });
            let da: Vec<bool> = (0..64).map(|i| a.flaky_flip(i, i * 17, 1)).collect();
            let db: Vec<bool> = (0..64).map(|i| b.flaky_flip(i, i * 17, 1)).collect();
            prop_assert_ne!(da, db);
        }
    }
}
