//! The DRAM chip catalog of Table I.
//!
//! The paper profiles 14 DDR3 chips (double-sided Rowhammer, numbers derived
//! from the profiles published by Tatar et al.) and 6 DDR4 chips (n-sided
//! Rowhammer), reporting the *average number of bit flips per 4 KB page*
//! for each. Those averages are the only chip parameter the rest of the
//! pipeline needs: they drive flip-profile density, target-page matching
//! probability (Eqs. 1–2), and accidental-flip counts.

use crate::geometry::DramGeometry;
use serde::Serialize;

/// DRAM generation, which determines the effective hammer patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ChipKind {
    /// DDR3: double-sided hammering works; no TRR.
    Ddr3,
    /// DDR4: TRR defeats double-sided; needs many-sided patterns.
    Ddr4,
}

/// One profiled DRAM chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ChipModel {
    /// Brand/model tag as used in Table I (A1, …, N1).
    pub tag: &'static str,
    /// DRAM generation.
    pub kind: ChipKind,
    /// Average bit flips found per 4 KB page when fully templated.
    pub avg_flips_per_page: f64,
}

impl ChipModel {
    /// The 14 DDR3 chips of Table I.
    pub const DDR3: [ChipModel; 14] = [
        ChipModel {
            tag: "A1",
            kind: ChipKind::Ddr3,
            avg_flips_per_page: 12.48,
        },
        ChipModel {
            tag: "A2",
            kind: ChipKind::Ddr3,
            avg_flips_per_page: 1.92,
        },
        ChipModel {
            tag: "A3",
            kind: ChipKind::Ddr3,
            avg_flips_per_page: 1.11,
        },
        ChipModel {
            tag: "A4",
            kind: ChipKind::Ddr3,
            avg_flips_per_page: 15.85,
        },
        ChipModel {
            tag: "B1",
            kind: ChipKind::Ddr3,
            avg_flips_per_page: 1.05,
        },
        ChipModel {
            tag: "C1",
            kind: ChipKind::Ddr3,
            avg_flips_per_page: 1.60,
        },
        ChipModel {
            tag: "D1",
            kind: ChipKind::Ddr3,
            avg_flips_per_page: 1.08,
        },
        ChipModel {
            tag: "E1",
            kind: ChipKind::Ddr3,
            avg_flips_per_page: 12.46,
        },
        ChipModel {
            tag: "E2",
            kind: ChipKind::Ddr3,
            avg_flips_per_page: 2.02,
        },
        ChipModel {
            tag: "F1",
            kind: ChipKind::Ddr3,
            avg_flips_per_page: 28.77,
        },
        ChipModel {
            tag: "G1",
            kind: ChipKind::Ddr3,
            avg_flips_per_page: 1.62,
        },
        ChipModel {
            tag: "H1",
            kind: ChipKind::Ddr3,
            avg_flips_per_page: 1.66,
        },
        ChipModel {
            tag: "I1",
            kind: ChipKind::Ddr3,
            avg_flips_per_page: 8.28,
        },
        ChipModel {
            tag: "J1",
            kind: ChipKind::Ddr3,
            avg_flips_per_page: 1.25,
        },
    ];

    /// The 6 DDR4 chips of Table I.
    pub const DDR4: [ChipModel; 6] = [
        ChipModel {
            tag: "K1",
            kind: ChipKind::Ddr4,
            avg_flips_per_page: 100.68,
        },
        ChipModel {
            tag: "K2",
            kind: ChipKind::Ddr4,
            avg_flips_per_page: 109.48,
        },
        ChipModel {
            tag: "L1",
            kind: ChipKind::Ddr4,
            avg_flips_per_page: 3.12,
        },
        ChipModel {
            tag: "L2",
            kind: ChipKind::Ddr4,
            avg_flips_per_page: 13.98,
        },
        ChipModel {
            tag: "M1",
            kind: ChipKind::Ddr4,
            avg_flips_per_page: 2.04,
        },
        ChipModel {
            tag: "N1",
            kind: ChipKind::Ddr4,
            avg_flips_per_page: 2.72,
        },
    ];

    /// All 20 chips in Table I order.
    pub fn all() -> Vec<ChipModel> {
        Self::DDR3
            .iter()
            .chain(Self::DDR4.iter())
            .copied()
            .collect()
    }

    /// Looks a chip up by Table I tag.
    pub fn by_tag(tag: &str) -> Option<ChipModel> {
        Self::all().into_iter().find(|c| c.tag == tag)
    }

    /// The DDR3 chip whose density matches the paper's reference
    /// measurement: 34 flips in a 4 KB page, 381,962 flips in 128 MB
    /// (0.036 % of cells). Used as the default templating device.
    pub fn reference_ddr3() -> ChipModel {
        ChipModel {
            tag: "REF3",
            kind: ChipKind::Ddr3,
            // 381,962 flips / 32,768 pages ≈ 11.66 per page on average.
            avg_flips_per_page: 381_962.0 / 32_768.0,
        }
    }

    /// The DDR4 device the paper runs the online phase on (K1-like).
    pub fn online_ddr4() -> ChipModel {
        Self::DDR4[0]
    }

    /// Fraction of all cells in a buffer that are flippable under full
    /// templating (the paper's 0.036 % sparsity figure for the reference
    /// chip).
    pub fn flippable_fraction(&self) -> f64 {
        self.avg_flips_per_page / (4096.0 * 8.0)
    }

    /// The DRAM organization this chip generation is modeled with — used to
    /// fold hammered frames onto banks for access accounting.
    pub fn geometry(&self) -> DramGeometry {
        match self.kind {
            ChipKind::Ddr3 => DramGeometry::ddr3_2gb(),
            ChipKind::Ddr4 => DramGeometry::ddr4_16gb(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_twenty_chips() {
        assert_eq!(ChipModel::all().len(), 20);
    }

    #[test]
    fn lookup_by_tag() {
        let k1 = ChipModel::by_tag("K1").unwrap();
        assert_eq!(k1.kind, ChipKind::Ddr4);
        assert!((k1.avg_flips_per_page - 100.68).abs() < 1e-9);
        assert!(ChipModel::by_tag("Z9").is_none());
    }

    #[test]
    fn reference_chip_matches_paper_sparsity() {
        let frac = ChipModel::reference_ddr3().flippable_fraction();
        // The paper reports ~0.036% of cells flippable in the 128MB buffer.
        assert!((frac - 0.000_36 / 1.0).abs() < 5e-5, "fraction {frac}");
    }

    #[test]
    fn ddr4_chips_span_two_orders_of_magnitude() {
        let min = ChipModel::DDR4
            .iter()
            .map(|c| c.avg_flips_per_page)
            .fold(f64::INFINITY, f64::min);
        let max = ChipModel::DDR4
            .iter()
            .map(|c| c.avg_flips_per_page)
            .fold(0.0, f64::max);
        assert!(max / min > 50.0);
    }
}
