//! The Linux per-CPU page-frame cache exploit (paper §IV-B1/2, Listing 1,
//! Fig. 4).
//!
//! The kernel reallocates recently-unmapped page frames in first-in-last-out
//! order from a per-CPU cache. An unprivileged attacker exploits this to
//! steer the victim's weight-file pages onto specific physical frames: it
//! unmaps the flippy frames and a bait buffer in exactly the reverse of the
//! order the file's pages will be faulted in, then lets the victim `mmap`
//! the weight file — page 0 of the file pops the *last*-released frame.

use crate::error::{DramError, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The kernel's per-CPU page-frame cache: a LIFO stack of free frames.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PageFrameCache {
    stack: Vec<usize>,
}

impl PageFrameCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PageFrameCache { stack: Vec::new() }
    }

    /// Number of cached frames.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// `munmap`: releases one frame to the cache (most recent on top).
    pub fn release(&mut self, frame: usize) {
        self.stack.push(frame);
    }

    /// `mmap` of `n` pages: pops `n` frames in LIFO order. The i-th element
    /// of the result backs file page i.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::CacheExhausted`] if fewer than `n` frames are
    /// cached.
    pub fn allocate(&mut self, n: usize) -> Result<Vec<usize>> {
        if self.stack.len() < n {
            return Err(DramError::CacheExhausted {
                requested: n,
                available: self.stack.len(),
            });
        }
        Ok((0..n)
            .map(|_| self.stack.pop().expect("length checked"))
            .collect())
    }

    /// Peeks at the stack contents (top last), for diagnostics.
    pub fn frames(&self) -> &[usize] {
        &self.stack
    }
}

/// A plan assigning each weight-file page to a physical frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementPlan {
    /// `frame_of_page[i]` is the physical frame backing file page `i`.
    pub frame_of_page: Vec<usize>,
}

impl PlacementPlan {
    /// The physical frame backing a file page.
    pub fn frame_of(&self, page: usize) -> Option<usize> {
        self.frame_of_page.get(page).copied()
    }

    /// The file page resident in a physical frame, if any.
    pub fn page_in_frame(&self, frame: usize) -> Option<usize> {
        self.frame_of_page.iter().position(|&f| f == frame)
    }

    /// Verifies the plan is a one-to-one mapping.
    pub fn is_injective(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.frame_of_page.iter().all(|&f| seen.insert(f))
    }

    /// Re-steers `page` onto `frame`, returning the frame it previously
    /// occupied. The adaptive recovery driver uses this to re-place a page
    /// after a fallback match or a re-templating round; the displaced frame
    /// simply goes unused (rows that are never hammered never flip).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::IndexOutOfRange`] if `page` is outside the plan.
    pub fn resteer(&mut self, page: usize, frame: usize) -> Result<usize> {
        let len = self.frame_of_page.len();
        let slot = self
            .frame_of_page
            .get_mut(page)
            .ok_or(DramError::IndexOutOfRange {
                index: page,
                len,
                what: "weight file pages",
            })?;
        Ok(std::mem::replace(slot, frame))
    }
}

/// Steers the weight file onto chosen frames via the page-frame cache.
///
/// `targets` maps file-page index → required physical frame (the flippy
/// frames found by templating); `bait_frames` supplies enough additional
/// frames (the attacker's bait buffer) to back every remaining file page.
/// Returns the placement plan the victim's `mmap` will realize.
///
/// # Errors
///
/// Returns [`DramError::CacheExhausted`] if `targets` plus `bait_frames`
/// cannot cover `file_pages`, or [`DramError::IndexOutOfRange`] if a target
/// page index is outside the file.
pub fn steer_weight_file(
    file_pages: usize,
    targets: &HashMap<usize, usize>,
    bait_frames: &[usize],
) -> Result<PlacementPlan> {
    for &page in targets.keys() {
        if page >= file_pages {
            return Err(DramError::IndexOutOfRange {
                index: page,
                len: file_pages,
                what: "weight file pages",
            });
        }
    }
    let needed_bait = file_pages - targets.len();
    if bait_frames.len() < needed_bait {
        return Err(DramError::CacheExhausted {
            requested: needed_bait,
            available: bait_frames.len(),
        });
    }

    // Desired final assignment: target pages on their flippy frames, all
    // other pages on bait frames in order.
    let mut desired = Vec::with_capacity(file_pages);
    let mut bait_iter = bait_frames.iter();
    for page in 0..file_pages {
        match targets.get(&page) {
            Some(&frame) => desired.push(frame),
            None => desired.push(*bait_iter.next().expect("bait counted above")),
        }
    }

    // Attacker releases frames in *reverse* file order so the kernel's LIFO
    // cache hands them back in forward order when the victim maps the file
    // (Listing 1; Fig. 4 shows the resulting anti-diagonal).
    let mut cache = PageFrameCache::new();
    for &frame in desired.iter().rev() {
        cache.release(frame);
    }

    // Victim maps the weight file; the kernel pops the cache per page fault
    // in file order.
    let frame_of_page = cache.allocate(file_pages)?;
    Ok(PlacementPlan { frame_of_page })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_is_lifo() {
        let mut cache = PageFrameCache::new();
        cache.release(10);
        cache.release(20);
        cache.release(30);
        assert_eq!(cache.allocate(3).unwrap(), vec![30, 20, 10]);
    }

    #[test]
    fn allocate_more_than_cached_fails() {
        let mut cache = PageFrameCache::new();
        cache.release(1);
        assert!(matches!(
            cache.allocate(2),
            Err(DramError::CacheExhausted {
                requested: 2,
                available: 1
            })
        ));
    }

    #[test]
    fn steering_places_targets_exactly() {
        let mut targets = HashMap::new();
        targets.insert(0usize, 500usize);
        targets.insert(3, 777);
        let bait: Vec<usize> = (100..110).collect();
        let plan = steer_weight_file(6, &targets, &bait).unwrap();
        assert_eq!(plan.frame_of(0), Some(500));
        assert_eq!(plan.frame_of(3), Some(777));
        assert!(plan.is_injective());
    }

    #[test]
    fn first_file_pages_get_last_released_frames() {
        // Fig. 4's anti-diagonal: with no targets, file page 0 lands on the
        // frame released last.
        let plan = steer_weight_file(4, &HashMap::new(), &[1, 2, 3, 4]).unwrap();
        assert_eq!(plan.frame_of_page, vec![1, 2, 3, 4]);
    }

    #[test]
    fn insufficient_bait_is_detected() {
        let mut targets = HashMap::new();
        targets.insert(0usize, 9usize);
        assert!(steer_weight_file(5, &targets, &[1, 2]).is_err());
    }

    #[test]
    fn out_of_file_target_is_rejected() {
        let mut targets = HashMap::new();
        targets.insert(10usize, 9usize);
        assert!(matches!(
            steer_weight_file(5, &targets, &[1, 2, 3, 4, 5]),
            Err(DramError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn resteer_replaces_and_reports_the_old_frame() {
        let plan = steer_weight_file(4, &HashMap::new(), &[1, 2, 3, 4]);
        let mut plan = plan.unwrap();
        assert_eq!(plan.resteer(2, 99), Ok(3));
        assert_eq!(plan.frame_of(2), Some(99));
        assert!(matches!(
            plan.resteer(9, 1),
            Err(DramError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn page_in_frame_inverts_frame_of() {
        let mut targets = HashMap::new();
        targets.insert(2usize, 42usize);
        let plan = steer_weight_file(4, &targets, &[7, 8, 9]).unwrap();
        assert_eq!(plan.page_in_frame(42), Some(2));
        assert_eq!(plan.page_in_frame(12345), None);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The cache is exactly LIFO for any release sequence.
        #[test]
        fn cache_pops_in_reverse_release_order(frames in prop::collection::vec(0usize..100_000, 1..64)) {
            let mut cache = PageFrameCache::new();
            for &f in &frames {
                cache.release(f);
            }
            let popped = cache.allocate(frames.len()).unwrap();
            let mut expected = frames.clone();
            expected.reverse();
            prop_assert_eq!(popped, expected);
        }

        /// Steering always realizes every target exactly and injectively.
        #[test]
        fn steering_realizes_all_targets(
            file_pages in 1usize..40,
            n_targets in 0usize..10,
            seed in 0u64..500,
        ) {
            prop_assume!(n_targets <= file_pages);
            use rand::{Rng as _, SeedableRng as _};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut targets = HashMap::new();
            // Distinct target pages, distinct high frame numbers.
            let mut pages: Vec<usize> = (0..file_pages).collect();
            for i in 0..n_targets {
                let j = rng.gen_range(i..pages.len());
                pages.swap(i, j);
                targets.insert(pages[i], 1_000_000 + i);
            }
            let bait: Vec<usize> = (0..file_pages).collect();
            let plan = steer_weight_file(file_pages, &targets, &bait).unwrap();
            for (&page, &frame) in &targets {
                prop_assert_eq!(plan.frame_of(page), Some(frame));
            }
            prop_assert!(plan.is_injective());
            prop_assert_eq!(plan.frame_of_page.len(), file_pages);
        }
    }
}
