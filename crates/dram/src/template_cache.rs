//! Template-cache: memoizes flip profiles per (chip, pages, seed).
//!
//! Templating is the dominant §VII cost (94 minutes for 128 MB on the
//! paper's DDR3 chip), and it is a pure function of the chip model,
//! buffer size, and seed — so a campaign that retries a run, or resumes
//! after a crash, should never pay it twice. The cache keeps profiles
//! in memory and, when given a directory, persists each profile as a
//! TSV of cells with thresholds stored as exact `f64` bit patterns, so
//! the disk round-trip reproduces the profile bit-for-bit. Files are
//! written atomically (temp + rename) to survive SIGKILL mid-save.
//!
//! Hit/miss traffic is exported on the `dram/template_cache/*` counters
//! so the observability plane can confirm a resumed campaign is
//! actually re-hammering rather than re-templating.

use crate::chips::ChipModel;
use crate::profile::{FlipCell, FlipDirection, FlipProfile, PAGE_BITS};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Cache key: everything [`FlipProfile::template`] is a function of.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    chip_tag: &'static str,
    pages: usize,
    seed: u64,
}

/// A process-wide (when shared via `Arc`) memo of templating results,
/// optionally backed by an on-disk profile store.
pub struct TemplateCache {
    entries: Mutex<HashMap<Key, Arc<FlipProfile>>>,
    dir: Option<PathBuf>,
}

impl TemplateCache {
    /// In-memory cache only.
    pub fn new() -> Self {
        TemplateCache {
            entries: Mutex::new(HashMap::new()),
            dir: None,
        }
    }

    /// Cache backed by `dir` (created on first save). Profiles found on
    /// disk are loaded instead of re-templated; fresh templating results
    /// are persisted for the next process.
    pub fn persistent(dir: &Path) -> Self {
        TemplateCache {
            entries: Mutex::new(HashMap::new()),
            dir: Some(dir.to_path_buf()),
        }
    }

    /// Returns the flip profile for `(chip, pages, seed)` — from memory,
    /// from disk, or by templating (in that order). Templating results
    /// are cached in memory and, if the cache is persistent, on disk.
    pub fn profile(&self, chip: ChipModel, pages: usize, seed: u64) -> Arc<FlipProfile> {
        let key = Key {
            chip_tag: chip.tag,
            pages,
            seed,
        };
        if let Some(hit) = self.entries.lock().unwrap().get(&key) {
            rhb_telemetry::counter!("dram/template_cache/hits", 1);
            return Arc::clone(hit);
        }
        let (profile, disk_hit) = match self.try_load(&key, chip) {
            Some(profile) => (profile, true),
            None => (FlipProfile::template(chip, pages, seed), false),
        };
        if disk_hit {
            rhb_telemetry::counter!("dram/template_cache/disk_hits", 1);
        } else {
            rhb_telemetry::counter!("dram/template_cache/misses", 1);
            if self.save(&key, &profile) {
                rhb_telemetry::counter!("dram/template_cache/saves", 1);
            }
        }
        let profile = Arc::new(profile);
        self.entries
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| Arc::clone(&profile));
        profile
    }

    /// Profiles currently held in memory.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// Whether the in-memory cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn file_path(&self, key: &Key) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| {
            d.join(format!(
                "tmpl-{}-{}-{}.tsv",
                key.chip_tag, key.pages, key.seed
            ))
        })
    }

    fn try_load(&self, key: &Key, chip: ChipModel) -> Option<FlipProfile> {
        let path = self.file_path(key)?;
        let content = std::fs::read_to_string(path).ok()?;
        parse_profile_tsv(&content, chip, key.pages)
    }

    /// Persists a freshly templated profile; `false` when the cache is
    /// memory-only or the write failed (a cache write failure is never
    /// fatal — the profile is still returned).
    fn save(&self, key: &Key, profile: &FlipProfile) -> bool {
        let Some(path) = self.file_path(key) else {
            return false;
        };
        if let Some(parent) = path.parent() {
            if std::fs::create_dir_all(parent).is_err() {
                return false;
            }
        }
        rhb_telemetry::write_atomic(&path, &render_profile_tsv(profile)).is_ok()
    }
}

impl Default for TemplateCache {
    fn default() -> Self {
        TemplateCache::new()
    }
}

/// One cell per line: `page \t bit_offset \t direction \t threshold-bits`.
/// Thresholds are stored as hex `f64` bit patterns for an exact
/// round-trip (a decimal rendering would perturb match decisions right
/// at a cell's aggression threshold).
fn render_profile_tsv(profile: &FlipProfile) -> String {
    let mut out = String::with_capacity(profile.cells().len() * 32 + 64);
    out.push_str(&format!(
        "# rhb-template-cache/v1 chip={} pages={} cells={}\n",
        profile.chip().tag,
        profile.num_pages(),
        profile.total_flips()
    ));
    for cell in profile.cells() {
        let dir = match cell.direction {
            FlipDirection::ZeroToOne => '1',
            FlipDirection::OneToZero => '0',
        };
        out.push_str(&format!(
            "{}\t{}\t{}\t{:016x}\n",
            cell.page,
            cell.bit_offset,
            dir,
            cell.threshold.to_bits()
        ));
    }
    out
}

/// Lenient parser for the TSV format; `None` on any malformed content
/// (the cache then falls back to templating — corruption costs time,
/// never correctness).
fn parse_profile_tsv(content: &str, chip: ChipModel, pages: usize) -> Option<FlipProfile> {
    let mut lines = content.lines();
    let header = lines.next()?;
    if !header.starts_with("# rhb-template-cache/v1") {
        return None;
    }
    let mut cells = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split('\t');
        let page: usize = parts.next()?.parse().ok()?;
        let bit_offset: usize = parts.next()?.parse().ok()?;
        let direction = match parts.next()? {
            "1" => FlipDirection::ZeroToOne,
            "0" => FlipDirection::OneToZero,
            _ => return None,
        };
        let threshold = f64::from_bits(u64::from_str_radix(parts.next()?, 16).ok()?);
        if page >= pages || bit_offset >= PAGE_BITS || !threshold.is_finite() {
            return None;
        }
        cells.push(FlipCell {
            page,
            bit_offset,
            direction,
            threshold,
        });
    }
    Some(FlipProfile::from_cells(chip, pages, cells))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chips::ChipModel;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rhb-tmpl-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn chip() -> ChipModel {
        ChipModel::online_ddr4()
    }

    fn assert_profiles_identical(a: &FlipProfile, b: &FlipProfile) {
        assert_eq!(a.num_pages(), b.num_pages());
        assert_eq!(a.cells().len(), b.cells().len());
        for (x, y) in a.cells().iter().zip(b.cells().iter()) {
            assert_eq!(x.page, y.page);
            assert_eq!(x.bit_offset, y.bit_offset);
            assert_eq!(x.direction, y.direction);
            assert_eq!(
                x.threshold.to_bits(),
                y.threshold.to_bits(),
                "thresholds must round-trip bit-for-bit"
            );
        }
    }

    #[test]
    fn memory_cache_returns_the_same_profile_instance() {
        let cache = TemplateCache::new();
        let a = cache.profile(chip(), 4, 7);
        let b = cache.profile(chip(), 4, 7);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit");
        let c = cache.profile(chip(), 4, 8);
        assert!(!Arc::ptr_eq(&a, &c), "different seed, different profile");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn persistent_cache_round_trips_profiles_bit_for_bit() {
        let dir = temp_dir("roundtrip");
        let first = TemplateCache::persistent(&dir);
        let templated = first.profile(chip(), 6, 42);
        // A fresh cache (fresh process) must load from disk, not re-template.
        let second = TemplateCache::persistent(&dir);
        let loaded = second.profile(chip(), 6, 42);
        assert_profiles_identical(&templated, &loaded);
        // Disk round-trip equals direct templating (pure-function check).
        let direct = FlipProfile::template(chip(), 6, 42);
        assert_profiles_identical(&loaded, &direct);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_file_falls_back_to_templating() {
        let dir = temp_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("tmpl-K1-3-5.tsv"),
            "# rhb-template-cache/v1\nnot\tvalid\n",
        )
        .unwrap();
        let cache = TemplateCache::persistent(&dir);
        let profile = cache.profile(chip(), 3, 5);
        let direct = FlipProfile::template(chip(), 3, 5);
        assert_profiles_identical(&profile, &direct);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_leaves_no_temp_files_behind() {
        let dir = temp_dir("atomic");
        let cache = TemplateCache::persistent(&dir);
        let _ = cache.profile(chip(), 2, 1);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
