//! Plundervolt fault model — the paper's negative result (Appendix F).
//!
//! The authors tried undervolting (Plundervolt) as an alternative fault
//! vector against DNN inference and found it does *not* work on quantized
//! models: multiplications only fault when the second operand exceeds
//! `0xFFFF`, but 8-bit quantized weights bound every operand at 255. This
//! module reproduces that operand-magnitude gate so the negative result is
//! testable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A CPU core undervolted to the paper's fault-producing frequency/voltage
/// pair.
#[derive(Debug, Clone)]
pub struct UndervoltedCpu {
    rng: StdRng,
    /// Probability that an eligible multiplication faults.
    fault_rate: f64,
}

impl UndervoltedCpu {
    /// Configures the undervolted core (fault point verified with the PoC).
    pub fn new(seed: u64) -> Self {
        UndervoltedCpu {
            rng: StdRng::seed_from_u64(seed),
            fault_rate: 0.05,
        }
    }

    /// Whether a multiplication with these operands is *eligible* to fault.
    ///
    /// Matches the paper's observations: the second operand must exceed
    /// `0xFFFF`; small (quantized-scale) operands never fault.
    pub fn multiplication_eligible(a: u64, b: u64) -> bool {
        let _ = a;
        b > 0xFFFF
    }

    /// Executes one multiplication under undervolting. Faults (single bit
    /// error in the product) occur only for eligible operand pairs.
    pub fn multiply(&mut self, a: u64, b: u64) -> u64 {
        let correct = a.wrapping_mul(b);
        if Self::multiplication_eligible(a, b) && self.rng.gen_bool(self.fault_rate) {
            let bit = self.rng.gen_range(0..64);
            correct ^ (1u64 << bit)
        } else {
            correct
        }
    }

    /// Runs a quantized dot product (operands ≤ 255) under undervolting and
    /// reports whether any fault occurred — it never does, which is the
    /// paper's conclusion that Plundervolt cannot backdoor quantized DNNs.
    pub fn quantized_dot_product_faults(&mut self, a: &[u8], b: &[u8]) -> bool {
        let mut faulted = false;
        for (&x, &y) in a.iter().zip(b) {
            let product = self.multiply(x as u64, y as u64);
            if product != (x as u64) * (y as u64) {
                faulted = true;
            }
        }
        faulted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantized_operands_never_fault() {
        let mut cpu = UndervoltedCpu::new(1);
        let a: Vec<u8> = (0..=255).collect();
        let b: Vec<u8> = (0..=255).rev().collect();
        for _ in 0..200 {
            assert!(!cpu.quantized_dot_product_faults(&a, &b));
        }
    }

    #[test]
    fn large_second_operand_eventually_faults() {
        let mut cpu = UndervoltedCpu::new(2);
        let mut faulted = false;
        for i in 0..2_000u64 {
            let product = cpu.multiply(3, 0x10000 + i);
            if product != 3 * (0x10000 + i) {
                faulted = true;
                break;
            }
        }
        assert!(faulted, "undervolted large multiplications must fault");
    }

    #[test]
    fn eligibility_gate_matches_paper() {
        assert!(!UndervoltedCpu::multiplication_eligible(u64::MAX, 0xFFFF));
        assert!(UndervoltedCpu::multiplication_eligible(1, 0x10000));
    }

    #[test]
    fn faults_are_single_bit() {
        let mut cpu = UndervoltedCpu::new(3);
        for i in 0..5_000u64 {
            let a = 7u64;
            let b = 0x20000 + i;
            let product = cpu.multiply(a, b);
            let correct = a * b;
            if product != correct {
                assert_eq!((product ^ correct).count_ones(), 1);
                return;
            }
        }
        panic!("no fault observed in 5000 eligible multiplications");
    }
}
