//! The online attack phase: template → match → place → hammer
//! (paper §IV-B, evaluated in §V-C).
//!
//! Given the bit flips the offline optimizer wants (page, bit offset,
//! direction), the executor:
//!
//! 1. **matches** each target against the flip profile — is there a flippy
//!    page whose vulnerable cell sits at exactly that page offset and flips
//!    the right way under the online hammer pattern?
//! 2. **places** the weight file so each matched file page is resident in
//!    its flippy frame (via the page-frame-cache exploit), with bait frames
//!    (pages with no reachable flips) backing everything else;
//! 3. **hammers** each flippy frame, applying the intended flip *and* every
//!    accidental flip the pattern reaches in that page, honoring each
//!    cell's pinned direction (a 0→1 cell does nothing to a stored 1).
//!
//! The outcome records matches, intended and accidental flips, and the
//! attack-time model — everything the paper's `r_match` metric and online
//! TA/ASR evaluation need.

use crate::error::Result;
use crate::hammer::{hammer_page, validate_pattern, HammerConfig};
use crate::placement::{steer_weight_file, PlacementPlan};
use crate::profile::{sample_poisson, FlipCell, FlipDirection, FlipProfile, PAGE_BITS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

/// Bytes per weight-file page (must agree with `rhb_nn::weightfile`).
pub const PAGE_SIZE: usize = 4096;

/// One bit flip the offline phase requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetBit {
    /// Page index within the weight file.
    pub file_page: usize,
    /// Bit offset within the page (0..32768).
    pub bit_offset: usize,
    /// Required direction: `true` for 0→1.
    pub zero_to_one: bool,
}

impl TargetBit {
    /// The flip direction as a profile type.
    pub fn direction(&self) -> FlipDirection {
        if self.zero_to_one {
            FlipDirection::ZeroToOne
        } else {
            FlipDirection::OneToZero
        }
    }
}

/// A flip that was actually applied to the weight file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppliedFlip {
    /// Weight-file page.
    pub file_page: usize,
    /// Bit offset within the page.
    pub bit_offset: usize,
    /// Whether this was an optimizer-intended flip (vs accidental).
    pub intended: bool,
}

/// Full provenance of one attacker-chosen bit through the online phase:
/// which flippy frame the templating match found for it, which frame the
/// placement exploit actually steered its page into, how many hammer
/// passes its row took, and whether the bit ended up flipped. One record
/// per requested target, in request order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetRecord {
    /// The requested flip.
    pub target: TargetBit,
    /// The flippy frame the matching phase assigned (the templating match);
    /// `None` if no profiled or extended page covered the offset.
    pub matched_frame: Option<usize>,
    /// The frame the target's file page was resident in during hammering
    /// (the placement address). Equals `matched_frame` for matched targets;
    /// a bait frame otherwise.
    pub placed_frame: Option<usize>,
    /// Hammer passes delivered to the frame's row (0 if never hammered).
    pub hammer_attempts: u32,
    /// Whether the intended bit actually flipped.
    pub flipped: bool,
}

/// Result of one online attack execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineOutcome {
    /// Targets requested by the offline phase.
    pub n_targets: usize,
    /// Targets for which a flippy page was found (the paper's `n_match`).
    pub n_matched: usize,
    /// Every flip applied to the file, intended and accidental.
    pub applied: Vec<AppliedFlip>,
    /// Accidental flips per *target* page (the `δ` of the r_match formula).
    pub accidental_in_target_pages: usize,
    /// Targets that could not be matched, with the failing offset.
    pub unmatched: Vec<TargetBit>,
    /// Wall-clock attack time under the paper's hammer-time model.
    pub attack_time: Duration,
    /// The realized placement, for diagnostics.
    pub placement: PlacementPlan,
    /// Per-target provenance, in request order (the flip ledger's
    /// placement/hammer half; `rhb_core` joins it with optimizer context).
    pub records: Vec<TargetRecord>,
}

impl OnlineOutcome {
    /// Intended flips actually applied.
    pub fn intended_applied(&self) -> usize {
        self.applied.iter().filter(|f| f.intended).count()
    }

    /// Accidental flips actually applied (anywhere).
    pub fn accidental_applied(&self) -> usize {
        self.applied.iter().filter(|f| !f.intended).count()
    }
}

/// Result of the matching phase ([`OnlineAttack::match_targets`]): which
/// flippy frames were consumed, which file page each one hosts, and which
/// targets found (or failed to find) a frame.
#[derive(Debug, Clone, Default)]
pub struct MatchOutcome {
    /// Flippy frames consumed by matching, in match order.
    pub used_frames: Vec<usize>,
    /// Matched flippy frame per targeted file page.
    pub frame_of_file_page: HashMap<usize, usize>,
    /// Targets for which a frame was found.
    pub matched: Vec<TargetBit>,
    /// Targets no frame could realize.
    pub unmatched: Vec<TargetBit>,
}

/// The online attack executor.
#[derive(Debug, Clone)]
pub struct OnlineAttack {
    profile: FlipProfile,
    config: HammerConfig,
    /// Additional templated pages beyond the explicit profile, matched
    /// lazily (see [`OnlineAttack::with_extended_templating`]).
    extended_pages: usize,
    extended_seed: u64,
    /// Synthesized cell lists for lazily-matched frames, keyed by frame id
    /// (ids start at `profile.num_pages()`).
    synthesized: HashMap<usize, Vec<crate::profile::FlipCell>>,
}

impl OnlineAttack {
    /// Creates an executor over a templated profile.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DramError::PatternIneffective`] if the configured
    /// hammer pattern cannot flip bits on the profiled chip (e.g.
    /// double-sided on TRR-protected DDR4).
    pub fn new(profile: FlipProfile, config: HammerConfig) -> Result<Self> {
        validate_pattern(config.pattern, profile.chip())?;
        Ok(OnlineAttack {
            profile,
            config,
            extended_pages: 0,
            extended_seed: 0,
            synthesized: HashMap::new(),
        })
    }

    /// Extends matching over `pages` *additional* templated pages without
    /// materializing their cells.
    ///
    /// The paper's attacker templates "most of the available memory" of a
    /// 16 GB DIMM (millions of pages); holding every vulnerable cell of
    /// such a region in memory is wasteful when only the handful of matched
    /// pages matter. Matching against the extended region is statistically
    /// exact: a required (offset, direction) finds a page with probability
    /// `1 − (1 − p₁)^pages` where `p₁` is the per-page hit probability at
    /// the current hammer intensity, and a successful match synthesizes
    /// that page's remaining (accidental) cells from the same distribution
    /// the explicit profile uses.
    pub fn with_extended_templating(mut self, pages: usize, seed: u64) -> Self {
        self.extended_pages = pages;
        self.extended_seed = seed;
        self
    }

    /// The profile in use.
    pub fn profile(&self) -> &FlipProfile {
        &self.profile
    }

    /// Vulnerable cells of a frame, whether explicit or synthesized.
    fn cells_of_frame(&self, frame: usize) -> Vec<FlipCell> {
        if frame < self.profile.num_pages() {
            self.profile
                .flips_in_page(frame)
                .into_iter()
                .copied()
                .collect()
        } else {
            self.synthesized.get(&frame).cloned().unwrap_or_default()
        }
    }

    /// Attempts to match a target against the extended templated region.
    ///
    /// Statistically exact: the probability that at least one of the
    /// extended pages carries a reachable cell at exactly this offset and
    /// direction is `1 − (1 − p₁)^pages`; on success the matched page's
    /// accidental cells are synthesized from the chip's flip distribution
    /// thinned to the current hammer intensity.
    fn match_extended(
        &mut self,
        target: &TargetBit,
        intensity: f64,
        rng: &mut StdRng,
    ) -> Option<usize> {
        if self.extended_pages == 0 || intensity <= 0.0 {
            return None;
        }
        let visible_avg = self.profile.chip().avg_flips_per_page * intensity;
        let p1 = (visible_avg / PAGE_BITS as f64 / 2.0).min(1.0);
        let p_any = 1.0 - (1.0 - p1).powf(self.extended_pages as f64);
        if !rng.gen_bool(p_any.clamp(0.0, 1.0)) {
            return None;
        }
        let frame = self.profile.num_pages() + self.synthesized.len();
        let mut cells = vec![FlipCell {
            page: frame,
            bit_offset: target.bit_offset,
            direction: target.direction(),
            threshold: intensity / 2.0,
        }];
        // Accidental company: the rest of the page's visible cells.
        let extras = sample_poisson(visible_avg, rng);
        for _ in 0..extras {
            cells.push(FlipCell {
                page: frame,
                bit_offset: rng.gen_range(0..PAGE_BITS),
                direction: if rng.gen_bool(0.5) {
                    FlipDirection::ZeroToOne
                } else {
                    FlipDirection::OneToZero
                },
                threshold: rng.gen_range(f64::EPSILON..=intensity),
            });
        }
        self.synthesized.insert(frame, cells);
        Some(frame)
    }

    /// Phase 1 of [`OnlineAttack::execute`]: matches each target against
    /// the flip profile (one flippy frame can host only one file page, so
    /// frames are consumed as they match).
    ///
    /// # Panics
    ///
    /// Panics if a target page lies outside a file of `file_pages` pages.
    pub fn match_targets(&mut self, file_pages: usize, targets: &[TargetBit]) -> MatchOutcome {
        let _span = rhb_telemetry::span!("matching", targets = targets.len());
        let intensity = self.config.pattern.intensity(self.profile.chip().kind);
        let mut ext_rng = StdRng::seed_from_u64(self.extended_seed.wrapping_add(0x5eed));

        let mut used_frames: Vec<usize> = Vec::new();
        let mut frame_of_file_page: HashMap<usize, usize> = HashMap::new();
        let mut matched: Vec<TargetBit> = Vec::new();
        let mut unmatched: Vec<TargetBit> = Vec::new();
        for &t in targets {
            assert!(t.file_page < file_pages, "target page outside weight file");
            // If this file page is already pinned to a frame (a second flip
            // in the same page), the existing frame must also cover the new
            // offset — almost never true, matching the paper's observation.
            if let Some(&frame) = frame_of_file_page.get(&t.file_page) {
                let covered = self.cells_of_frame(frame).iter().any(|c| {
                    c.bit_offset == t.bit_offset
                        && c.direction == t.direction()
                        && c.threshold <= intensity
                });
                if covered {
                    matched.push(t);
                } else {
                    unmatched.push(t);
                }
                continue;
            }
            let found = self
                .profile
                .find_matching_page(t.bit_offset, t.direction(), intensity, &used_frames)
                .ok()
                .or_else(|| self.match_extended(&t, intensity, &mut ext_rng));
            match found {
                Some(frame) => {
                    used_frames.push(frame);
                    frame_of_file_page.insert(t.file_page, frame);
                    matched.push(t);
                }
                None => unmatched.push(t),
            }
        }
        rhb_telemetry::counter!("dram/targets_matched", matched.len());
        rhb_telemetry::counter!("dram/targets_unmatched", unmatched.len());
        MatchOutcome {
            used_frames,
            frame_of_file_page,
            matched,
            unmatched,
        }
    }

    /// Phase 2 of [`OnlineAttack::execute`]: places the weight file so each
    /// matched file page is resident in its flippy frame. Bait frames
    /// preferentially come from profile pages with no flips reachable at
    /// this intensity so untargeted weights stay intact; if the buffer is
    /// too flippy to supply enough clean frames, any unused frame works —
    /// rows that are never hammered never flip.
    ///
    /// # Panics
    ///
    /// Panics if the matched frames plus available bait cannot cover the
    /// file (the templated buffer is smaller than the weight file).
    pub fn place(&self, file_pages: usize, matching: &MatchOutcome) -> PlacementPlan {
        let _span = rhb_telemetry::span!("placement", file_pages = file_pages);
        let intensity = self.config.pattern.intensity(self.profile.chip().kind);
        let used_frames = &matching.used_frames;
        let clean = (0..self.profile.num_pages()).filter(|&p| {
            !used_frames.contains(&p)
                && !self
                    .profile
                    .flips_in_page(p)
                    .iter()
                    .any(|c| c.threshold <= intensity)
        });
        let dirty = (0..self.profile.num_pages()).filter(|&p| {
            !used_frames.contains(&p)
                && self
                    .profile
                    .flips_in_page(p)
                    .iter()
                    .any(|c| c.threshold <= intensity)
        });
        let bait: Vec<usize> = clean.chain(dirty).take(file_pages).collect();
        rhb_telemetry::counter!("dram/bait_frames_used", bait.len().min(file_pages));
        steer_weight_file(file_pages, &matching.frame_of_file_page, &bait)
            .expect("matched frames plus clean bait cover the file")
    }

    /// Phase 3 of [`OnlineAttack::execute`]: hammers each flippy frame
    /// hosting a target page, applying the intended flip and every
    /// accidental flip the pattern reaches, honoring pinned directions.
    /// Returns the applied flips and the count of accidental flips landing
    /// in target pages (the `δ` of the r_match formula).
    pub fn hammer(&self, data: &mut [u8], matching: &MatchOutcome) -> (Vec<AppliedFlip>, usize) {
        let _span = rhb_telemetry::span!("hammering", frames = matching.frame_of_file_page.len(),);
        let intensity = self.config.pattern.intensity(self.profile.chip().kind);
        let mut applied = Vec::new();
        let mut accidental_in_target_pages = 0usize;
        for (&file_page, &frame) in &matching.frame_of_file_page {
            let wanted: Vec<&TargetBit> = matching
                .matched
                .iter()
                .filter(|t| t.file_page == file_page)
                .collect();
            let reachable: Vec<crate::profile::FlipCell> = if frame < self.profile.num_pages() {
                hammer_page(&self.profile, frame, &self.config)
                    .into_iter()
                    .copied()
                    .collect()
            } else {
                self.synthesized
                    .get(&frame)
                    .map(|cells| {
                        cells
                            .iter()
                            .filter(|c| c.threshold <= intensity)
                            .copied()
                            .collect()
                    })
                    .unwrap_or_default()
            };
            for cell in &reachable {
                let byte = file_page * PAGE_SIZE + cell.bit_offset / 8;
                let bit = (cell.bit_offset % 8) as u8;
                let mask = 1u8 << bit;
                let stored_zero = data[byte] & mask == 0;
                // A cell flips only in its pinned direction.
                let flips = match cell.direction {
                    FlipDirection::ZeroToOne => stored_zero,
                    FlipDirection::OneToZero => !stored_zero,
                };
                if !flips {
                    continue;
                }
                data[byte] ^= mask;
                let intended = wanted.iter().any(|t| t.bit_offset == cell.bit_offset);
                if !intended {
                    accidental_in_target_pages += 1;
                }
                applied.push(AppliedFlip {
                    file_page,
                    bit_offset: cell.bit_offset,
                    intended,
                });
            }
            rhb_telemetry::counter!("dram/frames_hammered", 1);
        }
        crate::hammer::record_bank_accesses(
            &self.profile.chip().geometry(),
            matching.frame_of_file_page.values().copied(),
            self.config.pattern,
        );
        rhb_telemetry::counter!("dram/bits_flipped", applied.len());
        rhb_telemetry::counter!(
            "dram/accidental_flips",
            applied.iter().filter(|f| !f.intended).count()
        );
        (applied, accidental_in_target_pages)
    }

    /// Executes the attack on a weight file image (`data` must be a whole
    /// number of 4 KB pages): [`OnlineAttack::match_targets`] →
    /// [`OnlineAttack::place`] → [`OnlineAttack::hammer`]. Unmatched
    /// targets are skipped, mirroring the paper's online-phase evaluation
    /// where only realizable flips land.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not page-aligned or a target page is
    /// outside the file.
    pub fn execute(&mut self, data: &mut [u8], targets: &[TargetBit]) -> OnlineOutcome {
        assert_eq!(
            data.len() % PAGE_SIZE,
            0,
            "weight file must be page-aligned"
        );
        let file_pages = data.len() / PAGE_SIZE;

        let matching = self.match_targets(file_pages, targets);
        let placement = self.place(file_pages, &matching);
        let (applied, accidental_in_target_pages) = self.hammer(data, &matching);

        // Per-target provenance: join each request with its templating
        // match, placement address, and hammer outcome.
        let records: Vec<TargetRecord> = targets
            .iter()
            .map(|&t| {
                let matched = matching.matched.contains(&t);
                let matched_frame = if matched {
                    matching.frame_of_file_page.get(&t.file_page).copied()
                } else {
                    None
                };
                TargetRecord {
                    target: t,
                    matched_frame,
                    placed_frame: placement.frame_of(t.file_page),
                    hammer_attempts: u32::from(matched_frame.is_some()),
                    flipped: applied.iter().any(|f| {
                        f.intended && f.file_page == t.file_page && f.bit_offset == t.bit_offset
                    }),
                }
            })
            .collect();

        let attack_time = self
            .config
            .pattern
            .attack_time(matching.frame_of_file_page.len());
        OnlineOutcome {
            n_targets: targets.len(),
            n_matched: matching.matched.len(),
            applied,
            accidental_in_target_pages,
            unmatched: matching.unmatched,
            attack_time,
            placement,
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chips::ChipModel;
    use crate::hammer::HammerPattern;

    fn ddr3_attack(pages: usize, seed: u64) -> OnlineAttack {
        let profile = FlipProfile::template(ChipModel::reference_ddr3(), pages, seed);
        OnlineAttack::new(
            profile,
            HammerConfig {
                pattern: HammerPattern::double_sided(),
                reliability: 1.0,
            },
        )
        .unwrap()
    }

    /// Builds targets straight from profile cells so matching must succeed.
    fn easy_targets(attack: &OnlineAttack, n: usize, data: &[u8]) -> Vec<TargetBit> {
        let intensity = attack.config.pattern.intensity(attack.profile.chip().kind);
        let mut seen_pages = Vec::new();
        let mut targets = Vec::new();
        for (i, cell) in attack.profile.cells().iter().enumerate() {
            if targets.len() == n {
                break;
            }
            if cell.threshold > intensity || seen_pages.contains(&cell.page) {
                continue;
            }
            // Pick a distinct file page per target; direction must match
            // what is stored there.
            let file_page = targets.len() % (data.len() / PAGE_SIZE);
            let byte = file_page * PAGE_SIZE + cell.bit_offset / 8;
            let stored_zero = data[byte] & (1 << (cell.bit_offset % 8)) == 0;
            let needed = FlipDirection::for_flip_of(stored_zero);
            if needed != cell.direction {
                continue;
            }
            seen_pages.push(cell.page);
            targets.push(TargetBit {
                file_page,
                bit_offset: cell.bit_offset,
                zero_to_one: stored_zero,
            });
            let _ = i;
        }
        targets
    }

    #[test]
    fn single_bit_targets_all_match_and_apply() {
        let mut attack = ddr3_attack(4096, 1);
        let mut data = vec![0b1010_1010u8; 4 * PAGE_SIZE];
        let targets = easy_targets(&attack, 4, &data);
        assert_eq!(targets.len(), 4, "profile too sparse for test setup");
        let before = data.clone();
        let outcome = attack.execute(&mut data, &targets);
        assert_eq!(outcome.n_matched, 4);
        assert_eq!(outcome.intended_applied(), 4);
        // Every intended target bit actually changed.
        for t in &targets {
            let byte = t.file_page * PAGE_SIZE + t.bit_offset / 8;
            let mask = 1u8 << (t.bit_offset % 8);
            assert_ne!(before[byte] & mask, data[byte] & mask);
        }
    }

    #[test]
    fn two_targets_in_same_page_rarely_both_match() {
        let mut attack = ddr3_attack(2048, 2);
        let data = vec![0u8; 2 * PAGE_SIZE];
        // Two flips wanted in file page 0 at arbitrary distinct offsets.
        let targets = vec![
            TargetBit {
                file_page: 0,
                bit_offset: 123,
                zero_to_one: true,
            },
            TargetBit {
                file_page: 0,
                bit_offset: 20_456,
                zero_to_one: true,
            },
        ];
        let mut buf = data;
        let outcome = attack.execute(&mut buf, &targets);
        // The first may match; requiring the *same* flippy frame to also
        // cover the second offset practically never succeeds.
        assert!(outcome.n_matched <= 1, "both offsets matched one page");
    }

    #[test]
    fn direction_pinning_blocks_wrong_way_flips() {
        let mut attack = ddr3_attack(4096, 3);
        // All-ones data: 0→1 cells can never fire.
        let mut data = vec![0xFFu8; PAGE_SIZE];
        let cell = attack
            .profile
            .cells()
            .iter()
            .find(|c| c.direction == FlipDirection::ZeroToOne)
            .copied()
            .unwrap();
        let targets = vec![TargetBit {
            file_page: 0,
            bit_offset: cell.bit_offset,
            zero_to_one: true,
        }];
        let outcome = attack.execute(&mut data, &targets);
        // Matching succeeds (profile has the cell) but the stored bit is 1,
        // so the 0→1 cell cannot flip it.
        let flipped_intended = outcome.applied.iter().any(|f| f.intended);
        assert!(!flipped_intended, "0→1 cell flipped a stored 1");
    }

    #[test]
    fn records_carry_match_placement_and_hammer_outcome() {
        let mut attack = ddr3_attack(4096, 7);
        let mut data = vec![0b1010_1010u8; 4 * PAGE_SIZE];
        let mut targets = easy_targets(&attack, 3, &data);
        // One hopeless target: a tiny-profile offset that cannot match.
        targets.push(TargetBit {
            file_page: 3,
            bit_offset: 31_999,
            zero_to_one: true,
        });
        let outcome = attack.execute(&mut data, &targets);
        assert_eq!(outcome.records.len(), targets.len());
        for (rec, &t) in outcome.records.iter().zip(&targets) {
            assert_eq!(rec.target, t, "records keep request order");
            // Placement always resolves: matched pages sit in their flippy
            // frame, the rest in bait.
            assert!(rec.placed_frame.is_some());
            if let Some(frame) = rec.matched_frame {
                assert_eq!(rec.placed_frame, Some(frame));
                assert_eq!(rec.hammer_attempts, 1);
            } else {
                assert_eq!(rec.hammer_attempts, 0);
                assert!(!rec.flipped);
            }
        }
        let flipped = outcome.records.iter().filter(|r| r.flipped).count();
        assert_eq!(flipped, outcome.intended_applied());
    }

    #[test]
    fn unmatched_targets_are_reported() {
        // A tiny profile cannot match most offsets.
        let mut attack = ddr3_attack(4, 4);
        let mut data = vec![0u8; PAGE_SIZE];
        let targets = vec![TargetBit {
            file_page: 0,
            bit_offset: 31_999,
            zero_to_one: true,
        }];
        let outcome = attack.execute(&mut data, &targets);
        assert_eq!(outcome.n_matched + outcome.unmatched.len(), 1);
    }

    #[test]
    fn attack_time_uses_pattern_model() {
        let mut attack = ddr3_attack(4096, 5);
        let mut data = vec![0b0101_0101u8; 2 * PAGE_SIZE];
        let targets = easy_targets(&attack, 2, &data);
        let outcome = attack.execute(&mut data, &targets);
        let per_row = HammerPattern::double_sided().time_per_row();
        assert_eq!(outcome.attack_time, per_row * outcome.n_matched as u32);
    }

    #[test]
    fn ddr4_online_attack_uses_seven_sided() {
        let profile = FlipProfile::template(ChipModel::online_ddr4(), 4096, 6);
        let mut attack = OnlineAttack::new(profile, HammerConfig::default()).unwrap();
        let mut data = vec![0b1100_0011u8; 2 * PAGE_SIZE];
        let targets = easy_targets(&attack, 2, &data);
        assert!(!targets.is_empty(), "K1 profile should offer matches");
        let outcome = attack.execute(&mut data, &targets);
        assert_eq!(outcome.n_matched, targets.len());
        // Accidental flips stay small per page under the 7-sided pattern.
        let per_page = outcome.accidental_in_target_pages as f64 / targets.len() as f64;
        assert!(per_page < 12.0, "accidental flips per page {per_page}");
    }
}
