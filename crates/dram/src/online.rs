//! The online attack phase: template → match → place → hammer
//! (paper §IV-B, evaluated in §V-C).
//!
//! Given the bit flips the offline optimizer wants (page, bit offset,
//! direction), the executor:
//!
//! 1. **matches** each target against the flip profile — is there a flippy
//!    page whose vulnerable cell sits at exactly that page offset and flips
//!    the right way under the online hammer pattern?
//! 2. **places** the weight file so each matched file page is resident in
//!    its flippy frame (via the page-frame-cache exploit), with bait frames
//!    (pages with no reachable flips) backing everything else;
//! 3. **hammers** each flippy frame, applying the intended flip *and* every
//!    accidental flip the pattern reaches in that page, honoring each
//!    cell's pinned direction (a 0→1 cell does nothing to a stored 1),
//!    then **reads back** every targeted byte to verify the flip actually
//!    landed — flips are reported as *verified* or merely *assumed*.
//!
//! On a cooperative DRAM ([`OnlineAttack::execute`]) every assumed flip
//! verifies. Under chaos mode ([`crate::chaos`]) the simulator injects
//! templating phantoms, flaky flips, evictions, and ECC masking; the
//! adaptive driver ([`OnlineAttack::execute_adaptive`]) then recovers by
//! retrying refuted rows with exponential backoff, falling back to
//! optimizer-supplied alternate bits, and re-templating fresh pages for
//! starved matches — all accounted against the paper's attack-time model
//! and classified as a full, degraded, or failed run.

use crate::chaos::{ChaosConfig, ChaosEngine, InjectedFault, ECC_WORD_BITS};
use crate::error::{DramError, Result};
use crate::hammer::{validate_pattern, HammerConfig};
use crate::placement::{steer_weight_file, PlacementPlan};
use crate::profile::{sample_poisson, FlipCell, FlipDirection, FlipProfile, PAGE_BITS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// Bytes per weight-file page (must agree with `rhb_nn::weightfile`).
pub const PAGE_SIZE: usize = 4096;

/// One bit flip the offline phase requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetBit {
    /// Page index within the weight file.
    pub file_page: usize,
    /// Bit offset within the page (0..32768).
    pub bit_offset: usize,
    /// Required direction: `true` for 0→1.
    pub zero_to_one: bool,
}

impl TargetBit {
    /// The flip direction as a profile type.
    pub fn direction(&self) -> FlipDirection {
        if self.zero_to_one {
            FlipDirection::ZeroToOne
        } else {
            FlipDirection::OneToZero
        }
    }
}

/// A flip that was actually applied to the weight file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppliedFlip {
    /// Weight-file page.
    pub file_page: usize,
    /// Bit offset within the page.
    pub bit_offset: usize,
    /// Whether this was an optimizer-intended flip (vs accidental).
    pub intended: bool,
}

/// Full provenance of one attacker-chosen bit through the online phase:
/// which flippy frame the templating match found for it, which frame the
/// placement exploit actually steered its page into, how many hammer
/// passes its row took, and whether the bit ended up flipped — and, since
/// the read-back pass, whether that flip was *verified* rather than
/// assumed. One record per requested target, in request order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetRecord {
    /// The requested flip.
    pub target: TargetBit,
    /// The flippy frame the matching phase assigned (the templating match);
    /// `None` if no profiled or extended page covered the offset.
    pub matched_frame: Option<usize>,
    /// The frame the target's file page was resident in during hammering
    /// (the placement address). Equals `matched_frame` for matched targets;
    /// a bait frame otherwise.
    pub placed_frame: Option<usize>,
    /// Hammer passes delivered to the frame's row (0 if never hammered).
    pub hammer_attempts: u32,
    /// Whether the intended bit actually flipped.
    pub flipped: bool,
    /// Whether read-back confirmed the targeted byte holds its required
    /// value. Without chaos this always equals `flipped`; under chaos a
    /// flip can be assumed (cell reachable, direction armed) yet refuted.
    pub verified: bool,
    /// Recovery retry passes spent on this target beyond the first.
    pub retries: u32,
    /// Whether an optimizer-supplied *alternate* bit landed on behalf of
    /// this target after its primary was refuted.
    pub fallback: bool,
}

/// Result of one online attack execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineOutcome {
    /// Targets requested by the offline phase.
    pub n_targets: usize,
    /// Targets for which a flippy page was found (the paper's `n_match`).
    pub n_matched: usize,
    /// Every flip applied to the file, intended and accidental.
    pub applied: Vec<AppliedFlip>,
    /// Accidental flips per *target* page (the `δ` of the r_match formula).
    pub accidental_in_target_pages: usize,
    /// Targets that could not be matched, with the failing offset.
    pub unmatched: Vec<TargetBit>,
    /// Wall-clock attack time under the paper's hammer-time model (the
    /// initial pass only; recovery time is accounted separately in
    /// [`AdaptiveOutcome::recovery_time`]).
    pub attack_time: Duration,
    /// The realized placement, for diagnostics.
    pub placement: PlacementPlan,
    /// Per-target provenance, in request order (the flip ledger's
    /// placement/hammer half; `rhb_core` joins it with optimizer context).
    pub records: Vec<TargetRecord>,
}

impl OnlineOutcome {
    /// Intended flips actually applied.
    pub fn intended_applied(&self) -> usize {
        self.applied.iter().filter(|f| f.intended).count()
    }

    /// Accidental flips actually applied (anywhere).
    pub fn accidental_applied(&self) -> usize {
        self.applied.iter().filter(|f| !f.intended).count()
    }
}

/// Result of the matching phase ([`OnlineAttack::match_targets`]): which
/// flippy frames were consumed, which file page each one hosts, and which
/// targets found (or failed to find) a frame.
#[derive(Debug, Clone, Default)]
pub struct MatchOutcome {
    /// Flippy frames consumed by matching, in match order.
    pub used_frames: Vec<usize>,
    /// Matched flippy frame per targeted file page.
    pub frame_of_file_page: HashMap<usize, usize>,
    /// Targets for which a frame was found.
    pub matched: Vec<TargetBit>,
    /// Targets no frame could realize.
    pub unmatched: Vec<TargetBit>,
}

/// Result of the hammering phase: what landed, plus the three-way
/// verification split per wanted target.
#[derive(Debug, Clone, Default)]
pub struct HammerOutcome {
    /// Every flip applied (and surviving ECC), intended and accidental.
    pub applied: Vec<AppliedFlip>,
    /// Accidental flips landing in target pages (post-ECC).
    pub accidental_in_target_pages: usize,
    /// Targets the attacker *expected* to land before read-back: the
    /// matched cell is reachable at this intensity and the stored bit
    /// permits the flip direction.
    pub assumed: Vec<TargetBit>,
    /// Assumed targets whose read-back confirmed the required value.
    pub verified: Vec<TargetBit>,
    /// Assumed targets the read-back refuted (chaos ate the flip).
    pub refuted: Vec<TargetBit>,
}

impl HammerOutcome {
    /// Folds one frame pass into the running outcome.
    fn absorb(&mut self, pass: HammerOutcome) {
        self.applied.extend(pass.applied);
        self.accidental_in_target_pages += pass.accidental_in_target_pages;
        self.assumed.extend(pass.assumed);
        self.verified.extend(pass.verified);
        self.refuted.extend(pass.refuted);
    }
}

/// Recovery budget and strategy knobs for [`OnlineAttack::execute_adaptive`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Extra hammer passes allowed per refuted target (beyond the first).
    pub max_retries: u32,
    /// Re-templating rounds allowed while matches starve.
    pub max_retemplate_rounds: u32,
    /// Fresh pages templated per re-templating round.
    pub retemplate_pages: usize,
    /// Hammer-side recovery time budget as a multiple of the nominal
    /// attack time for the requested target count (the paper's
    /// `time_per_row × N_flip` model). Re-templating time is reported in
    /// [`AdaptiveOutcome::recovery_time`] but charged against
    /// `max_retemplate_rounds`, not this budget — one 2048-page round
    /// already costs minutes and would instantly starve the hammer budget.
    pub time_budget_factor: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            max_retemplate_rounds: 2,
            retemplate_pages: 2048,
            time_budget_factor: 4.0,
        }
    }
}

impl RecoveryPolicy {
    /// No recovery at all: [`OnlineAttack::execute_adaptive`] degenerates to
    /// the plain match → place → hammer pipeline of
    /// [`OnlineAttack::execute`].
    pub fn disabled() -> Self {
        RecoveryPolicy {
            max_retries: 0,
            max_retemplate_rounds: 0,
            retemplate_pages: 0,
            time_budget_factor: 0.0,
        }
    }

    /// Whether any recovery stage can run.
    pub fn enabled(&self) -> bool {
        self.max_retries > 0 || self.max_retemplate_rounds > 0
    }

    /// Whether the driver should keep re-templating after `err` with
    /// `rounds_done` rounds already spent. Dispatches on the error's
    /// recovery class ([`DramError::is_recoverable`]): fatal errors abort
    /// re-templating outright, recoverable ones continue until the round
    /// budget runs out.
    pub fn should_retemplate(&self, err: &DramError, rounds_done: u32) -> bool {
        err.is_recoverable()
            && rounds_done < self.max_retemplate_rounds
            && self.retemplate_pages > 0
    }
}

/// How intact an adaptive run ended up (ISSUE: graceful degradation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunClass {
    /// No fault was injected and no recovery stage was needed.
    Full,
    /// Faults fired or recovery ran, but at least half the requested
    /// targets were verifiably realized (directly or via an alternate).
    Degraded,
    /// Fewer than half the requested targets were realized.
    Failed,
}

impl RunClass {
    /// Stable reporting name.
    pub fn name(&self) -> &'static str {
        match self {
            RunClass::Full => "full",
            RunClass::Degraded => "degraded",
            RunClass::Failed => "failed",
        }
    }

    /// Ordering for regression verdicts: higher is better.
    pub fn rank(&self) -> u8 {
        match self {
            RunClass::Full => 2,
            RunClass::Degraded => 1,
            RunClass::Failed => 0,
        }
    }

    /// Inverse of [`RunClass::name`], for lenient artifact parsing.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "full" => Some(RunClass::Full),
            "degraded" => Some(RunClass::Degraded),
            "failed" => Some(RunClass::Failed),
            _ => None,
        }
    }
}

/// One recovery retry pass on a refuted target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryRecord {
    /// The refuted target being retried.
    pub target: TargetBit,
    /// The frame whose row was re-hammered.
    pub frame: usize,
    /// 1-based hammer pass number (the initial pass is attempt 1).
    pub attempt: u32,
    /// Whether read-back verified the flip after this pass.
    pub landed: bool,
}

/// One fallback attempt: an optimizer-supplied alternate bit tried after
/// a primary target's flip was refuted beyond retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FallbackRecord {
    /// The refuted primary target.
    pub primary: TargetBit,
    /// The alternate bit attempted in its place.
    pub alternate: TargetBit,
    /// The flippy frame matched for the alternate (`None` if matching
    /// failed and nothing was hammered).
    pub frame: Option<usize>,
    /// Whether read-back verified the alternate's flip.
    pub landed: bool,
}

/// Result of [`OnlineAttack::execute_adaptive`]: the plain outcome plus
/// the full recovery/fault accounting.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// The match/place/hammer outcome (records carry per-target
    /// verification, retry, and fallback flags).
    pub outcome: OnlineOutcome,
    /// Graceful-degradation classification of the run.
    pub classification: RunClass,
    /// Every retry pass, in execution order.
    pub retries: Vec<RetryRecord>,
    /// Every fallback attempt, in execution order.
    pub fallbacks: Vec<FallbackRecord>,
    /// Every chaos fault injected during the run, sorted for stable
    /// reporting (empty without chaos).
    pub injected_faults: Vec<InjectedFault>,
    /// Requested targets verifiably realized — directly or via an
    /// alternate bit.
    pub verified_targets: usize,
    /// Targets realized only thanks to a recovery stage (retry, fallback,
    /// or re-templating) rather than the initial pass.
    pub recovered_targets: usize,
    /// Re-templating rounds actually run.
    pub retemplate_rounds: u32,
    /// Modeled time spent in recovery (retry/fallback hammer passes plus
    /// re-templating), on top of [`OnlineOutcome::attack_time`].
    pub recovery_time: Duration,
    /// Whether the hammer-side time budget ran out with work remaining.
    pub budget_exhausted: bool,
}

impl AdaptiveOutcome {
    /// Initial attack time plus recovery time.
    pub fn total_attack_time(&self) -> Duration {
        self.outcome.attack_time + self.recovery_time
    }
}

/// Per-target bookkeeping inside `execute_adaptive`.
struct TargetState {
    matched_frame: Option<usize>,
    placed_frame: Option<usize>,
    attempts: u32,
    flipped: bool,
    verified: bool,
    /// An alternate landed on this target's behalf.
    rescued: bool,
    retries: u32,
    fallback: bool,
    /// Realized only by a recovery stage (not the initial pass).
    recovered: bool,
}

impl TargetState {
    fn realized(&self) -> bool {
        self.verified || self.rescued
    }
}

/// The online attack executor.
#[derive(Debug, Clone)]
pub struct OnlineAttack {
    profile: FlipProfile,
    config: HammerConfig,
    /// Additional templated pages beyond the explicit profile, matched
    /// lazily (see [`OnlineAttack::with_extended_templating`]).
    extended_pages: usize,
    extended_seed: u64,
    /// Synthesized cell lists for lazily-matched frames, keyed by frame id
    /// (ids start at `profile.num_pages()` at issue time).
    synthesized: HashMap<usize, Vec<crate::profile::FlipCell>>,
    /// Fault injector; `None` runs the cooperative (exact legacy) DRAM.
    chaos: Option<ChaosEngine>,
}

impl OnlineAttack {
    /// Creates an executor over a templated profile.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DramError::PatternIneffective`] if the configured
    /// hammer pattern cannot flip bits on the profiled chip (e.g.
    /// double-sided on TRR-protected DDR4).
    pub fn new(profile: FlipProfile, config: HammerConfig) -> Result<Self> {
        validate_pattern(config.pattern, profile.chip())?;
        Ok(OnlineAttack {
            profile,
            config,
            extended_pages: 0,
            extended_seed: 0,
            synthesized: HashMap::new(),
            chaos: None,
        })
    }

    /// Extends matching over `pages` *additional* templated pages without
    /// materializing their cells.
    ///
    /// The paper's attacker templates "most of the available memory" of a
    /// 16 GB DIMM (millions of pages); holding every vulnerable cell of
    /// such a region in memory is wasteful when only the handful of matched
    /// pages matter. Matching against the extended region is statistically
    /// exact: a required (offset, direction) finds a page with probability
    /// `1 − (1 − p₁)^pages` where `p₁` is the per-page hit probability at
    /// the current hammer intensity, and a successful match synthesizes
    /// that page's remaining (accidental) cells from the same distribution
    /// the explicit profile uses.
    pub fn with_extended_templating(mut self, pages: usize, seed: u64) -> Self {
        self.extended_pages = pages;
        self.extended_seed = seed;
        self
    }

    /// Arms chaos-mode fault injection. An inactive configuration (every
    /// rate zero) leaves the DRAM cooperative.
    pub fn with_chaos(mut self, config: ChaosConfig) -> Self {
        self.chaos = config.is_active().then(|| ChaosEngine::new(config));
        self
    }

    /// The profile in use.
    pub fn profile(&self) -> &FlipProfile {
        &self.profile
    }

    /// The armed fault injector, if any.
    pub fn chaos(&self) -> Option<&ChaosEngine> {
        self.chaos.as_ref()
    }

    /// Vulnerable cells of a frame, whether explicit or synthesized.
    ///
    /// Synthesized frames take priority: a re-templating round can grow the
    /// profile past a previously-issued synthesized id, so the synthesized
    /// map — never the colliding fresh page — owns the id (the fresh page
    /// with the same id sits in `used_frames` and is skipped by matching).
    fn cells_of_frame(&self, frame: usize) -> Vec<FlipCell> {
        if let Some(cells) = self.synthesized.get(&frame) {
            return cells.clone();
        }
        if frame < self.profile.num_pages() {
            self.profile
                .flips_in_page(frame)
                .into_iter()
                .copied()
                .collect()
        } else {
            Vec::new()
        }
    }

    /// Attempts to match a target against the extended templated region.
    ///
    /// Statistically exact: the probability that at least one of the
    /// extended pages carries a reachable cell at exactly this offset and
    /// direction is `1 − (1 − p₁)^pages`; on success the matched page's
    /// accidental cells are synthesized from the chip's flip distribution
    /// thinned to the current hammer intensity.
    fn match_extended(
        &mut self,
        target: &TargetBit,
        intensity: f64,
        rng: &mut StdRng,
    ) -> Option<usize> {
        if self.extended_pages == 0 || intensity <= 0.0 {
            return None;
        }
        let visible_avg = self.profile.chip().avg_flips_per_page * intensity;
        let p1 = (visible_avg / PAGE_BITS as f64 / 2.0).min(1.0);
        let p_any = 1.0 - (1.0 - p1).powf(self.extended_pages as f64);
        if !rng.gen_bool(p_any.clamp(0.0, 1.0)) {
            return None;
        }
        let frame = self.profile.num_pages() + self.synthesized.len();
        let mut cells = vec![FlipCell {
            page: frame,
            bit_offset: target.bit_offset,
            direction: target.direction(),
            threshold: intensity / 2.0,
        }];
        // Accidental company: the rest of the page's visible cells.
        let extras = sample_poisson(visible_avg, rng);
        for _ in 0..extras {
            cells.push(FlipCell {
                page: frame,
                bit_offset: rng.gen_range(0..PAGE_BITS),
                direction: if rng.gen_bool(0.5) {
                    FlipDirection::ZeroToOne
                } else {
                    FlipDirection::OneToZero
                },
                threshold: rng.gen_range(f64::EPSILON..=intensity),
            });
        }
        self.synthesized.insert(frame, cells);
        Some(frame)
    }

    /// Phase 1 of [`OnlineAttack::execute`]: matches each target against
    /// the flip profile (one flippy frame can host only one file page, so
    /// frames are consumed as they match). Under chaos, matching is where
    /// templating false negatives (denied matches) and false positives
    /// (phantom cells that will never fire) are injected.
    ///
    /// # Panics
    ///
    /// Panics if a target page lies outside a file of `file_pages` pages.
    pub fn match_targets(&mut self, file_pages: usize, targets: &[TargetBit]) -> MatchOutcome {
        let _span = rhb_telemetry::span!("matching", targets = targets.len());
        let intensity = self.config.pattern.intensity(self.profile.chip().kind);
        let mut ext_rng = StdRng::seed_from_u64(self.extended_seed.wrapping_add(0x5eed));

        let mut used_frames: Vec<usize> = Vec::new();
        let mut frame_of_file_page: HashMap<usize, usize> = HashMap::new();
        let mut matched: Vec<TargetBit> = Vec::new();
        let mut unmatched: Vec<TargetBit> = Vec::new();
        for &t in targets {
            assert!(t.file_page < file_pages, "target page outside weight file");
            if let Some(chaos) = self.chaos.as_mut() {
                if chaos.template_false_negative(t.bit_offset, 0) {
                    unmatched.push(t);
                    continue;
                }
            }
            // If this file page is already pinned to a frame (a second flip
            // in the same page), the existing frame must also cover the new
            // offset — almost never true, matching the paper's observation.
            if let Some(&frame) = frame_of_file_page.get(&t.file_page) {
                let covered = self.cells_of_frame(frame).iter().any(|c| {
                    c.bit_offset == t.bit_offset
                        && c.direction == t.direction()
                        && c.threshold <= intensity
                });
                if covered {
                    matched.push(t);
                } else {
                    unmatched.push(t);
                }
                continue;
            }
            let found = self
                .profile
                .find_matching_page(t.bit_offset, t.direction(), intensity, &used_frames)
                .ok()
                .or_else(|| self.match_extended(&t, intensity, &mut ext_rng));
            match found {
                Some(frame) => {
                    if let Some(chaos) = self.chaos.as_mut() {
                        let _ = chaos.template_false_positive(frame, t.bit_offset);
                    }
                    used_frames.push(frame);
                    frame_of_file_page.insert(t.file_page, frame);
                    matched.push(t);
                }
                None => unmatched.push(t),
            }
        }
        rhb_telemetry::counter!("dram/targets_matched", matched.len());
        rhb_telemetry::counter!("dram/targets_unmatched", unmatched.len());
        MatchOutcome {
            used_frames,
            frame_of_file_page,
            matched,
            unmatched,
        }
    }

    /// Matches one target during recovery (fallback alternates and
    /// re-templated rounds), excluding already-consumed frames. Dispatches
    /// the same chaos interpositions as the initial matching round.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::NoMatchingPage`] (a *recoverable* error the
    /// driver dispatches on) when neither the profile nor the extended
    /// region covers the target, or when a templating false negative
    /// denies the match this round.
    fn match_recovery(
        &mut self,
        target: &TargetBit,
        used_frames: &[usize],
        round: u32,
    ) -> Result<usize> {
        let intensity = self.config.pattern.intensity(self.profile.chip().kind);
        if let Some(chaos) = self.chaos.as_mut() {
            if chaos.template_false_negative(target.bit_offset, round) {
                return Err(DramError::NoMatchingPage {
                    page_bit_offset: target.bit_offset,
                });
            }
        }
        let found = self
            .profile
            .find_matching_page(
                target.bit_offset,
                target.direction(),
                intensity,
                used_frames,
            )
            .ok()
            .or_else(|| {
                // Each (target, round) gets its own deterministic stream so
                // recovery matching is reproducible regardless of how many
                // targets needed it before this one.
                let mut rng = StdRng::seed_from_u64(
                    self.extended_seed
                        ^ (target.bit_offset as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                        ^ u64::from(round).wrapping_mul(0xd1b5_4a32_d192_ed03),
                );
                self.match_extended(target, intensity, &mut rng)
            });
        match found {
            Some(frame) => {
                if let Some(chaos) = self.chaos.as_mut() {
                    let _ = chaos.template_false_positive(frame, target.bit_offset);
                }
                Ok(frame)
            }
            None => Err(DramError::NoMatchingPage {
                page_bit_offset: target.bit_offset,
            }),
        }
    }

    /// Phase 2 of [`OnlineAttack::execute`]: places the weight file so each
    /// matched file page is resident in its flippy frame. Bait frames
    /// preferentially come from profile pages with no flips reachable at
    /// this intensity so untargeted weights stay intact; if the buffer is
    /// too flippy to supply enough clean frames, any unused frame works —
    /// rows that are never hammered never flip.
    ///
    /// # Panics
    ///
    /// Panics if the matched frames plus available bait cannot cover the
    /// file (the templated buffer is smaller than the weight file).
    pub fn place(&self, file_pages: usize, matching: &MatchOutcome) -> PlacementPlan {
        let _span = rhb_telemetry::span!("placement", file_pages = file_pages);
        let intensity = self.config.pattern.intensity(self.profile.chip().kind);
        let used_frames = &matching.used_frames;
        let clean = (0..self.profile.num_pages()).filter(|&p| {
            !used_frames.contains(&p)
                && !self
                    .profile
                    .flips_in_page(p)
                    .iter()
                    .any(|c| c.threshold <= intensity)
        });
        let dirty = (0..self.profile.num_pages()).filter(|&p| {
            !used_frames.contains(&p)
                && self
                    .profile
                    .flips_in_page(p)
                    .iter()
                    .any(|c| c.threshold <= intensity)
        });
        let bait: Vec<usize> = clean.chain(dirty).take(file_pages).collect();
        rhb_telemetry::counter!("dram/bait_frames_used", bait.len().min(file_pages));
        steer_weight_file(file_pages, &matching.frame_of_file_page, &bait)
            .expect("matched frames plus clean bait cover the file")
    }

    /// Hammers one frame's row once and reads back every wanted target.
    ///
    /// This is where every hammer-side chaos fault interposes: a page
    /// eviction skips the whole pass, phantom cells and flaky cells fail
    /// to fire, and the ECC model reverts single-bit flips per 64-bit word
    /// (multi-bit words evade SEC-DED). The returned outcome carries the
    /// assumed/verified/refuted split for exactly this pass.
    fn hammer_frame_once(
        &mut self,
        data: &mut [u8],
        file_page: usize,
        frame: usize,
        wanted: &[TargetBit],
        attempt: u32,
    ) -> HammerOutcome {
        let intensity = self.config.pattern.intensity(self.profile.chip().kind);
        let reachable: Vec<FlipCell> = self
            .cells_of_frame(frame)
            .into_iter()
            .filter(|c| c.threshold <= intensity)
            .collect();

        // What the attacker *expects* to land before verification: the
        // matched cell is reachable and the stored bit permits the flip.
        let mut assumed: Vec<TargetBit> = Vec::new();
        for t in wanted {
            let byte = file_page * PAGE_SIZE + t.bit_offset / 8;
            let mask = 1u8 << (t.bit_offset % 8);
            let stored_zero = data[byte] & mask == 0;
            let covered = reachable
                .iter()
                .any(|c| c.bit_offset == t.bit_offset && c.direction == t.direction());
            if covered && stored_zero == t.zero_to_one {
                assumed.push(*t);
            }
        }

        let evicted = match self.chaos.as_mut() {
            Some(chaos) => chaos.evicted(file_page, attempt),
            None => false,
        };
        let mut applied: Vec<AppliedFlip> = Vec::new();
        if !evicted {
            for cell in &reachable {
                let byte = file_page * PAGE_SIZE + cell.bit_offset / 8;
                let bit = (cell.bit_offset % 8) as u8;
                let mask = 1u8 << bit;
                let stored_zero = data[byte] & mask == 0;
                // A cell flips only in its pinned direction.
                let flips = match cell.direction {
                    FlipDirection::ZeroToOne => stored_zero,
                    FlipDirection::OneToZero => !stored_zero,
                };
                if !flips {
                    continue;
                }
                if let Some(chaos) = self.chaos.as_mut() {
                    if chaos.is_phantom(frame, cell.bit_offset)
                        || chaos.flaky_flip(frame, cell.bit_offset, attempt)
                    {
                        continue;
                    }
                }
                data[byte] ^= mask;
                let intended = wanted.iter().any(|t| t.bit_offset == cell.bit_offset);
                applied.push(AppliedFlip {
                    file_page,
                    bit_offset: cell.bit_offset,
                    intended,
                });
            }
            // ECC-style correction over the flips this pass introduced:
            // words with exactly one fresh flip may be silently reverted.
            if self
                .chaos
                .as_ref()
                .is_some_and(|c| c.config().ecc_correction > 0.0)
            {
                let mut flips_per_word: HashMap<usize, usize> = HashMap::new();
                for f in &applied {
                    *flips_per_word
                        .entry(f.bit_offset / ECC_WORD_BITS)
                        .or_default() += 1;
                }
                let mut masked: Vec<usize> = Vec::new();
                for (i, f) in applied.iter().enumerate() {
                    let word = f.bit_offset / ECC_WORD_BITS;
                    if flips_per_word[&word] != 1 {
                        continue;
                    }
                    let chaos = self.chaos.as_mut().expect("ecc rate checked above");
                    if chaos.ecc_masks(file_page, word, attempt) {
                        let byte = file_page * PAGE_SIZE + f.bit_offset / 8;
                        data[byte] ^= 1u8 << (f.bit_offset % 8);
                        masked.push(i);
                    }
                }
                for &i in masked.iter().rev() {
                    applied.remove(i);
                }
            }
        }

        // Read-back verification of each wanted target.
        let mut verified: Vec<TargetBit> = Vec::new();
        let mut refuted: Vec<TargetBit> = Vec::new();
        for t in wanted {
            let byte = file_page * PAGE_SIZE + t.bit_offset / 8;
            let mask = 1u8 << (t.bit_offset % 8);
            let now_one = data[byte] & mask != 0;
            let landed = applied
                .iter()
                .any(|f| f.intended && f.bit_offset == t.bit_offset)
                && now_one == t.zero_to_one;
            if landed {
                verified.push(*t);
            } else if assumed.contains(t) {
                refuted.push(*t);
            }
        }
        let accidental_in_target_pages = applied.iter().filter(|f| !f.intended).count();
        HammerOutcome {
            applied,
            accidental_in_target_pages,
            assumed,
            verified,
            refuted,
        }
    }

    /// Phase 3 of [`OnlineAttack::execute`]: hammers each flippy frame
    /// hosting a target page, applying the intended flip and every
    /// accidental flip the pattern reaches, honoring pinned directions —
    /// then reads back every targeted byte. The outcome separates flips
    /// the attacker merely *assumed* (reachable cell, armed direction)
    /// from those the read-back *verified*; without chaos the two sets
    /// are identical.
    pub fn hammer(&mut self, data: &mut [u8], matching: &MatchOutcome) -> HammerOutcome {
        let _span = rhb_telemetry::span!("hammering", frames = matching.frame_of_file_page.len(),);
        let mut out = HammerOutcome::default();
        let pairs: Vec<(usize, usize)> = matching
            .frame_of_file_page
            .iter()
            .map(|(&p, &f)| (p, f))
            .collect();
        for (file_page, frame) in pairs {
            let wanted: Vec<TargetBit> = matching
                .matched
                .iter()
                .filter(|t| t.file_page == file_page)
                .copied()
                .collect();
            let pass = self.hammer_frame_once(data, file_page, frame, &wanted, 1);
            out.absorb(pass);
            rhb_telemetry::counter!("dram/frames_hammered", 1);
        }
        crate::hammer::record_bank_accesses(
            &self.profile.chip().geometry(),
            matching.frame_of_file_page.values().copied(),
            self.config.pattern,
        );
        rhb_telemetry::counter!("dram/bits_flipped", out.applied.len());
        rhb_telemetry::counter!(
            "dram/accidental_flips",
            out.applied.iter().filter(|f| !f.intended).count()
        );
        out
    }

    /// Executes the attack on a weight file image (`data` must be a whole
    /// number of 4 KB pages): [`OnlineAttack::match_targets`] →
    /// [`OnlineAttack::place`] → [`OnlineAttack::hammer`]. Unmatched
    /// targets are skipped, mirroring the paper's online-phase evaluation
    /// where only realizable flips land.
    ///
    /// Equivalent to [`OnlineAttack::execute_adaptive`] with
    /// [`RecoveryPolicy::disabled`] and no alternates — without chaos the
    /// two produce byte-identical weight files and ledgers.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not page-aligned or a target page is
    /// outside the file.
    pub fn execute(&mut self, data: &mut [u8], targets: &[TargetBit]) -> OnlineOutcome {
        self.execute_adaptive(data, targets, &HashMap::new(), &RecoveryPolicy::disabled())
            .outcome
    }

    /// Executes the attack with adaptive recovery (the chaos-mode driver):
    ///
    /// 1. the plain match → place → hammer pass with read-back;
    /// 2. **bounded retry with exponential backoff** on refuted targets,
    ///    each pass charged [`crate::hammer::HammerPattern::retry_time`]
    ///    against a budget of `time_budget_factor ×` the nominal attack
    ///    time for the requested target count;
    /// 3. **fallback** to optimizer-supplied `alternates` (keyed by the
    ///    primary's file page) for targets still refuted, matching a fresh
    ///    frame and re-steering the placement;
    /// 4. **re-templating** fresh pages while matches starve, dispatching
    ///    on [`DramError::is_recoverable`] to decide whether another round
    ///    is worth it.
    ///
    /// Every retry, fallback, injected fault, and re-templating round is
    /// recorded, and the run is classified full / degraded / failed.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not page-aligned or a target page is
    /// outside the file.
    pub fn execute_adaptive(
        &mut self,
        data: &mut [u8],
        targets: &[TargetBit],
        alternates: &HashMap<usize, Vec<TargetBit>>,
        policy: &RecoveryPolicy,
    ) -> AdaptiveOutcome {
        assert_eq!(
            data.len() % PAGE_SIZE,
            0,
            "weight file must be page-aligned"
        );
        let file_pages = data.len() / PAGE_SIZE;

        let matching = self.match_targets(file_pages, targets);
        let mut placement = self.place(file_pages, &matching);
        let mut hammered = self.hammer(data, &matching);

        let mut states: Vec<TargetState> = targets
            .iter()
            .map(|&t| {
                let matched_frame = if matching.matched.contains(&t) {
                    matching.frame_of_file_page.get(&t.file_page).copied()
                } else {
                    None
                };
                TargetState {
                    matched_frame,
                    placed_frame: placement.frame_of(t.file_page),
                    attempts: u32::from(matched_frame.is_some()),
                    flipped: hammered.applied.iter().any(|f| {
                        f.intended && f.file_page == t.file_page && f.bit_offset == t.bit_offset
                    }),
                    verified: hammered.verified.contains(&t),
                    rescued: false,
                    retries: 0,
                    fallback: false,
                    recovered: false,
                }
            })
            .collect();

        let base_attack_time = self
            .config
            .pattern
            .attack_time(matching.frame_of_file_page.len());
        // Hammer-side recovery spend (retry/fallback passes) is capped by
        // the time budget; modeled re-templating time is reported in
        // `recovery_time` but gated only by `max_retemplate_rounds` — one
        // 2048-page round already costs minutes and would otherwise starve
        // the hammer budget instantly.
        let mut hammer_spent = Duration::ZERO;
        let mut templating_spent = Duration::ZERO;
        let mut retries_log: Vec<RetryRecord> = Vec::new();
        let mut fallbacks_log: Vec<FallbackRecord> = Vec::new();
        let mut used_frames = matching.used_frames.clone();
        let mut pinned_pages: HashSet<usize> =
            matching.frame_of_file_page.keys().copied().collect();
        let mut retemplate_rounds = 0u32;
        let mut budget_exhausted = false;

        if policy.enabled() {
            let _span = rhb_telemetry::span!("recovery", targets = targets.len());
            // Budget keyed to the *requested* target count so a run whose
            // matches all starved can still afford recovery hammering.
            let hammer_budget = self
                .config
                .pattern
                .attack_time(targets.len())
                .mul_f64(policy.time_budget_factor.max(0.0));
            let initially_refuted = hammered.refuted.clone();

            // Stage 1: bounded retry with exponential backoff on targets
            // whose read-back refuted the initial pass.
            for i in 0..targets.len() {
                let t = targets[i];
                let Some(frame) = states[i].matched_frame else {
                    continue;
                };
                if states[i].verified || !initially_refuted.contains(&t) {
                    continue;
                }
                for attempt in 2..=policy.max_retries.saturating_add(1) {
                    let cost = self.config.pattern.retry_time(attempt);
                    if hammer_spent + cost > hammer_budget {
                        budget_exhausted = true;
                        break;
                    }
                    hammer_spent += cost;
                    let pass = self.hammer_frame_once(data, t.file_page, frame, &[t], attempt);
                    let landed = pass.verified.contains(&t);
                    hammered.absorb(pass);
                    states[i].attempts += 1;
                    states[i].retries += 1;
                    retries_log.push(RetryRecord {
                        target: t,
                        frame,
                        attempt,
                        landed,
                    });
                    rhb_telemetry::counter!("dram/recovery/retries", 1);
                    if landed {
                        states[i].flipped = true;
                        states[i].verified = true;
                        states[i].recovered = true;
                        break;
                    }
                }
            }

            // Stage 2: fall back to optimizer-supplied alternate bits for
            // matched targets the retries could not land.
            for i in 0..targets.len() {
                let t = targets[i];
                if states[i].realized() || states[i].matched_frame.is_none() {
                    continue;
                }
                let Some(alts) = alternates.get(&t.file_page) else {
                    continue;
                };
                for &alt in alts {
                    if alt == t {
                        continue;
                    }
                    // Never displace a page another target's flip depends on.
                    if alt.file_page != t.file_page && pinned_pages.contains(&alt.file_page) {
                        continue;
                    }
                    let cost = self.config.pattern.retry_time(1);
                    if hammer_spent + cost > hammer_budget {
                        budget_exhausted = true;
                        break;
                    }
                    match self.match_recovery(&alt, &used_frames, retemplate_rounds) {
                        Ok(frame) => {
                            hammer_spent += cost;
                            used_frames.push(frame);
                            let _ = placement.resteer(alt.file_page, frame);
                            pinned_pages.insert(alt.file_page);
                            let pass =
                                self.hammer_frame_once(data, alt.file_page, frame, &[alt], 1);
                            let landed = pass.verified.contains(&alt);
                            hammered.absorb(pass);
                            fallbacks_log.push(FallbackRecord {
                                primary: t,
                                alternate: alt,
                                frame: Some(frame),
                                landed,
                            });
                            rhb_telemetry::counter!("dram/recovery/fallbacks", 1);
                            if landed {
                                states[i].fallback = true;
                                states[i].rescued = true;
                                states[i].recovered = true;
                                break;
                            }
                        }
                        Err(err) if err.is_recoverable() => {
                            // A starved or denied match: log the attempt and
                            // move to the next alternate.
                            fallbacks_log.push(FallbackRecord {
                                primary: t,
                                alternate: alt,
                                frame: None,
                                landed: false,
                            });
                            rhb_telemetry::counter!("dram/recovery/fallbacks", 1);
                        }
                        Err(_) => break,
                    }
                }
            }

            // Stage 3: re-template fresh pages while matches starve. The
            // modeled templating time counts as recovery time but is gated
            // by `max_retemplate_rounds`, not the hammer budget.
            'rounds: while states
                .iter()
                .any(|s| s.matched_frame.is_none() && !s.rescued)
                && retemplate_rounds < policy.max_retemplate_rounds
                && policy.retemplate_pages > 0
            {
                retemplate_rounds += 1;
                let seed = self
                    .extended_seed
                    .wrapping_add(u64::from(retemplate_rounds).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let _fresh = self.profile.extend_template(policy.retemplate_pages, seed);
                templating_spent += FlipProfile::templating_time(policy.retemplate_pages);
                rhb_telemetry::counter!("dram/recovery/retemplate_rounds", 1);
                for i in 0..targets.len() {
                    let t = targets[i];
                    if states[i].matched_frame.is_some() || states[i].rescued {
                        continue;
                    }
                    match self.match_recovery(&t, &used_frames, retemplate_rounds) {
                        Ok(frame) => {
                            let cost = self.config.pattern.retry_time(1);
                            if hammer_spent + cost > hammer_budget {
                                budget_exhausted = true;
                                break 'rounds;
                            }
                            hammer_spent += cost;
                            used_frames.push(frame);
                            let _ = placement.resteer(t.file_page, frame);
                            pinned_pages.insert(t.file_page);
                            states[i].matched_frame = Some(frame);
                            states[i].placed_frame = Some(frame);
                            states[i].attempts += 1;
                            let pass = self.hammer_frame_once(data, t.file_page, frame, &[t], 1);
                            let landed = pass.verified.contains(&t);
                            hammered.absorb(pass);
                            if landed {
                                states[i].flipped = true;
                                states[i].verified = true;
                                states[i].recovered = true;
                            }
                        }
                        Err(err) => {
                            if !policy.should_retemplate(&err, retemplate_rounds) {
                                break 'rounds;
                            }
                        }
                    }
                }
            }

            rhb_telemetry::counter!(
                "dram/recovery/recovered_targets",
                states.iter().filter(|s| s.recovered).count()
            );
        }

        let recovery_time = hammer_spent + templating_spent;
        let injected_faults = match self.chaos.as_ref() {
            Some(chaos) => {
                let mut faults = chaos.faults().to_vec();
                faults.sort_by_key(|f| (f.kind, f.location, f.bit_offset, f.attempt));
                faults
            }
            None => Vec::new(),
        };
        let verified_targets = states.iter().filter(|s| s.realized()).count();
        let recovered_targets = states.iter().filter(|s| s.recovered).count();
        let recovery_actions = retries_log.len() + fallbacks_log.len() + retemplate_rounds as usize;
        let classification = if injected_faults.is_empty() && recovery_actions == 0 {
            RunClass::Full
        } else if verified_targets * 2 >= targets.len() {
            RunClass::Degraded
        } else {
            RunClass::Failed
        };

        let records: Vec<TargetRecord> = targets
            .iter()
            .zip(&states)
            .map(|(&t, s)| TargetRecord {
                target: t,
                matched_frame: s.matched_frame,
                placed_frame: s.placed_frame,
                hammer_attempts: s.attempts,
                flipped: s.flipped,
                verified: s.verified,
                retries: s.retries,
                fallback: s.fallback,
            })
            .collect();
        let unmatched: Vec<TargetBit> = targets
            .iter()
            .zip(&states)
            .filter(|(_, s)| s.matched_frame.is_none())
            .map(|(&t, _)| t)
            .collect();
        let n_matched = targets.len() - unmatched.len();

        let outcome = OnlineOutcome {
            n_targets: targets.len(),
            n_matched,
            applied: hammered.applied,
            accidental_in_target_pages: hammered.accidental_in_target_pages,
            unmatched,
            attack_time: base_attack_time,
            placement,
            records,
        };
        AdaptiveOutcome {
            outcome,
            classification,
            retries: retries_log,
            fallbacks: fallbacks_log,
            injected_faults,
            verified_targets,
            recovered_targets,
            retemplate_rounds,
            recovery_time,
            budget_exhausted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::FaultKind;
    use crate::chips::ChipModel;
    use crate::hammer::HammerPattern;

    fn ddr3_attack(pages: usize, seed: u64) -> OnlineAttack {
        let profile = FlipProfile::template(ChipModel::reference_ddr3(), pages, seed);
        OnlineAttack::new(
            profile,
            HammerConfig {
                pattern: HammerPattern::double_sided(),
                reliability: 1.0,
            },
        )
        .unwrap()
    }

    /// Builds targets straight from profile cells so matching must succeed.
    fn easy_targets(attack: &OnlineAttack, n: usize, data: &[u8]) -> Vec<TargetBit> {
        let intensity = attack.config.pattern.intensity(attack.profile.chip().kind);
        let mut seen_pages = Vec::new();
        let mut targets = Vec::new();
        for (i, cell) in attack.profile.cells().iter().enumerate() {
            if targets.len() == n {
                break;
            }
            if cell.threshold > intensity || seen_pages.contains(&cell.page) {
                continue;
            }
            // Pick a distinct file page per target; direction must match
            // what is stored there.
            let file_page = targets.len() % (data.len() / PAGE_SIZE);
            let byte = file_page * PAGE_SIZE + cell.bit_offset / 8;
            let stored_zero = data[byte] & (1 << (cell.bit_offset % 8)) == 0;
            let needed = FlipDirection::for_flip_of(stored_zero);
            if needed != cell.direction {
                continue;
            }
            seen_pages.push(cell.page);
            targets.push(TargetBit {
                file_page,
                bit_offset: cell.bit_offset,
                zero_to_one: stored_zero,
            });
            let _ = i;
        }
        targets
    }

    #[test]
    fn single_bit_targets_all_match_and_apply() {
        let mut attack = ddr3_attack(4096, 1);
        let mut data = vec![0b1010_1010u8; 4 * PAGE_SIZE];
        let targets = easy_targets(&attack, 4, &data);
        assert_eq!(targets.len(), 4, "profile too sparse for test setup");
        let before = data.clone();
        let outcome = attack.execute(&mut data, &targets);
        assert_eq!(outcome.n_matched, 4);
        assert_eq!(outcome.intended_applied(), 4);
        // Every intended target bit actually changed.
        for t in &targets {
            let byte = t.file_page * PAGE_SIZE + t.bit_offset / 8;
            let mask = 1u8 << (t.bit_offset % 8);
            assert_ne!(before[byte] & mask, data[byte] & mask);
        }
    }

    #[test]
    fn two_targets_in_same_page_rarely_both_match() {
        let mut attack = ddr3_attack(2048, 2);
        let data = vec![0u8; 2 * PAGE_SIZE];
        // Two flips wanted in file page 0 at arbitrary distinct offsets.
        let targets = vec![
            TargetBit {
                file_page: 0,
                bit_offset: 123,
                zero_to_one: true,
            },
            TargetBit {
                file_page: 0,
                bit_offset: 20_456,
                zero_to_one: true,
            },
        ];
        let mut buf = data;
        let outcome = attack.execute(&mut buf, &targets);
        // The first may match; requiring the *same* flippy frame to also
        // cover the second offset practically never succeeds.
        assert!(outcome.n_matched <= 1, "both offsets matched one page");
    }

    #[test]
    fn direction_pinning_blocks_wrong_way_flips() {
        let mut attack = ddr3_attack(4096, 3);
        // All-ones data: 0→1 cells can never fire.
        let mut data = vec![0xFFu8; PAGE_SIZE];
        let cell = attack
            .profile
            .cells()
            .iter()
            .find(|c| c.direction == FlipDirection::ZeroToOne)
            .copied()
            .unwrap();
        let targets = vec![TargetBit {
            file_page: 0,
            bit_offset: cell.bit_offset,
            zero_to_one: true,
        }];
        let outcome = attack.execute(&mut data, &targets);
        // Matching succeeds (profile has the cell) but the stored bit is 1,
        // so the 0→1 cell cannot flip it.
        let flipped_intended = outcome.applied.iter().any(|f| f.intended);
        assert!(!flipped_intended, "0→1 cell flipped a stored 1");
        // Read-back agrees: nothing to verify, nothing assumed → not refuted.
        assert!(!outcome.records[0].flipped);
        assert!(!outcome.records[0].verified);
    }

    #[test]
    fn records_carry_match_placement_and_hammer_outcome() {
        let mut attack = ddr3_attack(4096, 7);
        let mut data = vec![0b1010_1010u8; 4 * PAGE_SIZE];
        let mut targets = easy_targets(&attack, 3, &data);
        // One hopeless target: a tiny-profile offset that cannot match.
        targets.push(TargetBit {
            file_page: 3,
            bit_offset: 31_999,
            zero_to_one: true,
        });
        let outcome = attack.execute(&mut data, &targets);
        assert_eq!(outcome.records.len(), targets.len());
        for (rec, &t) in outcome.records.iter().zip(&targets) {
            assert_eq!(rec.target, t, "records keep request order");
            // Placement always resolves: matched pages sit in their flippy
            // frame, the rest in bait.
            assert!(rec.placed_frame.is_some());
            if let Some(frame) = rec.matched_frame {
                assert_eq!(rec.placed_frame, Some(frame));
                assert_eq!(rec.hammer_attempts, 1);
            } else {
                assert_eq!(rec.hammer_attempts, 0);
                assert!(!rec.flipped);
            }
            // Cooperative DRAM: read-back confirms exactly what landed,
            // and no recovery stage ever ran.
            assert_eq!(rec.verified, rec.flipped);
            assert_eq!(rec.retries, 0);
            assert!(!rec.fallback);
        }
        let flipped = outcome.records.iter().filter(|r| r.flipped).count();
        assert_eq!(flipped, outcome.intended_applied());
    }

    #[test]
    fn unmatched_targets_are_reported() {
        // A tiny profile cannot match most offsets.
        let mut attack = ddr3_attack(4, 4);
        let mut data = vec![0u8; PAGE_SIZE];
        let targets = vec![TargetBit {
            file_page: 0,
            bit_offset: 31_999,
            zero_to_one: true,
        }];
        let outcome = attack.execute(&mut data, &targets);
        assert_eq!(outcome.n_matched + outcome.unmatched.len(), 1);
    }

    #[test]
    fn attack_time_uses_pattern_model() {
        let mut attack = ddr3_attack(4096, 5);
        let mut data = vec![0b0101_0101u8; 2 * PAGE_SIZE];
        let targets = easy_targets(&attack, 2, &data);
        let outcome = attack.execute(&mut data, &targets);
        let per_row = HammerPattern::double_sided().time_per_row();
        assert_eq!(outcome.attack_time, per_row * outcome.n_matched as u32);
    }

    #[test]
    fn ddr4_online_attack_uses_seven_sided() {
        let profile = FlipProfile::template(ChipModel::online_ddr4(), 4096, 6);
        let mut attack = OnlineAttack::new(profile, HammerConfig::default()).unwrap();
        let mut data = vec![0b1100_0011u8; 2 * PAGE_SIZE];
        let targets = easy_targets(&attack, 2, &data);
        assert!(!targets.is_empty(), "K1 profile should offer matches");
        let outcome = attack.execute(&mut data, &targets);
        assert_eq!(outcome.n_matched, targets.len());
        // Accidental flips stay small per page under the 7-sided pattern.
        let per_page = outcome.accidental_in_target_pages as f64 / targets.len() as f64;
        assert!(per_page < 12.0, "accidental flips per page {per_page}");
    }

    #[test]
    fn execute_matches_adaptive_with_disabled_policy() {
        let attack = ddr3_attack(4096, 11);
        let mut plain = attack.clone();
        let mut adaptive = attack;
        let mut data_plain = vec![0b1010_1010u8; 4 * PAGE_SIZE];
        let mut data_adaptive = data_plain.clone();
        let targets = easy_targets(&plain, 4, &data_plain);
        assert_eq!(targets.len(), 4);

        let out_plain = plain.execute(&mut data_plain, &targets);
        let out_adaptive = adaptive.execute_adaptive(
            &mut data_adaptive,
            &targets,
            &HashMap::new(),
            &RecoveryPolicy::disabled(),
        );
        assert_eq!(data_plain, data_adaptive, "weight bytes must be identical");
        assert_eq!(out_plain.records, out_adaptive.outcome.records);
        // Applied order follows hash-map frame iteration (not meaningful);
        // the flip *set* must be identical.
        let key = |f: &AppliedFlip| (f.file_page, f.bit_offset, f.intended);
        let mut applied_plain = out_plain.applied.clone();
        let mut applied_adaptive = out_adaptive.outcome.applied.clone();
        applied_plain.sort_by_key(key);
        applied_adaptive.sort_by_key(key);
        assert_eq!(applied_plain, applied_adaptive);
        assert_eq!(out_adaptive.classification, RunClass::Full);
        assert!(out_adaptive.injected_faults.is_empty());
        assert!(out_adaptive.retries.is_empty());
        assert!(out_adaptive.fallbacks.is_empty());
        assert_eq!(out_adaptive.recovery_time, Duration::ZERO);
        assert_eq!(out_adaptive.verified_targets, 4);
        assert_eq!(out_adaptive.recovered_targets, 0);
    }

    #[test]
    fn flaky_flips_are_recovered_by_retries() {
        let mut attack = ddr3_attack(4096, 21).with_chaos(ChaosConfig {
            flip_flakiness: 0.3,
            eviction: 0.1,
            ..ChaosConfig::seeded(9)
        });
        let mut data = vec![0b1010_1010u8; 6 * PAGE_SIZE];
        let targets = easy_targets(&attack, 6, &data);
        assert_eq!(targets.len(), 6);
        let out = attack.execute_adaptive(
            &mut data,
            &targets,
            &HashMap::new(),
            &RecoveryPolicy::default(),
        );
        assert!(
            !out.injected_faults.is_empty(),
            "30% flakiness must inject faults"
        );
        assert!(!out.retries.is_empty(), "refuted flips must be retried");
        assert_eq!(
            out.verified_targets,
            targets.len(),
            "retries must land every flaky target"
        );
        assert!(out.recovered_targets > 0);
        assert_eq!(out.classification, RunClass::Degraded);
        assert!(out.recovery_time > Duration::ZERO);
        assert!(out.total_attack_time() > out.outcome.attack_time);
        // The ledger accounts for the recovery: retried targets carry
        // their extra passes.
        for rec in &out.outcome.records {
            if rec.retries > 0 {
                assert_eq!(rec.hammer_attempts, 1 + rec.retries);
            }
        }
    }

    #[test]
    fn phantom_cells_exhaust_retries_and_fail_without_alternates() {
        // Every matched cell is a templating phantom: no retry can land it
        // and no alternates were supplied, so the run fails outright.
        let mut attack = ddr3_attack(4096, 22).with_chaos(ChaosConfig {
            template_false_positive: 1.0,
            ..ChaosConfig::seeded(5)
        });
        let mut data = vec![0b1010_1010u8; 4 * PAGE_SIZE];
        let targets = easy_targets(&attack, 4, &data);
        assert_eq!(targets.len(), 4);
        let out = attack.execute_adaptive(
            &mut data,
            &targets,
            &HashMap::new(),
            &RecoveryPolicy::default(),
        );
        assert_eq!(out.verified_targets, 0, "phantoms never fire");
        assert_eq!(out.classification, RunClass::Failed);
        assert!(out
            .injected_faults
            .iter()
            .any(|f| f.kind == FaultKind::TemplateFalsePositive));
        assert!(!out.retries.is_empty(), "driver must have tried retries");
        assert!(out.retries.iter().all(|r| !r.landed));
    }

    #[test]
    fn refuted_primaries_fall_back_to_alternate_bits() {
        // Half the matched cells are phantoms; each primary gets two
        // alternate bits (different offsets in the same page, drawn from
        // other profile cells so the fallback match can succeed). Chaos
        // seed 2 deterministically yields both a failed fallback attempt
        // and a landed rescue.
        let mut attack = ddr3_attack(4096, 23).with_chaos(ChaosConfig {
            template_false_positive: 0.5,
            ..ChaosConfig::seeded(2)
        });
        let mut data = vec![0b1010_1010u8; 4 * PAGE_SIZE];
        let primaries = easy_targets(&attack, 4, &data);
        assert_eq!(primaries.len(), 4);
        let pool = easy_targets(&attack, 12, &data);
        assert_eq!(pool.len(), 12, "profile too sparse for alternates");
        let mut alternates: HashMap<usize, Vec<TargetBit>> = HashMap::new();
        for (k, primary) in primaries.iter().enumerate() {
            let alts = pool[4 + 2 * k..4 + 2 * k + 2]
                .iter()
                .map(|alt| TargetBit {
                    file_page: primary.file_page,
                    bit_offset: alt.bit_offset,
                    zero_to_one: alt.zero_to_one,
                })
                .collect();
            alternates.insert(primary.file_page, alts);
        }
        let out = attack.execute_adaptive(
            &mut data,
            &primaries,
            &alternates,
            &RecoveryPolicy::default(),
        );
        assert!(
            out.fallbacks.iter().any(|f| f.landed),
            "at least one alternate must land (fallbacks: {:?})",
            out.fallbacks
        );
        let rescued: Vec<&TargetRecord> =
            out.outcome.records.iter().filter(|r| r.fallback).collect();
        assert!(!rescued.is_empty());
        for rec in rescued {
            assert!(!rec.verified, "primary bit itself stays refuted");
        }
        assert!(out.verified_targets > 0);
        assert_ne!(out.classification, RunClass::Full);
    }

    #[test]
    fn ecc_masking_refutes_single_bit_flips() {
        let mut attack = ddr3_attack(4096, 24).with_chaos(ChaosConfig {
            ecc_correction: 1.0,
            ..ChaosConfig::seeded(7)
        });
        let mut data = vec![0b1010_1010u8; 4 * PAGE_SIZE];
        let targets = easy_targets(&attack, 4, &data);
        assert_eq!(targets.len(), 4);
        let out = attack.execute_adaptive(
            &mut data,
            &targets,
            &HashMap::new(),
            &RecoveryPolicy::default(),
        );
        assert!(out
            .injected_faults
            .iter()
            .any(|f| f.kind == FaultKind::EccMasked));
        assert!(
            out.verified_targets < targets.len(),
            "a perfect corrector must refute lone intended flips"
        );
    }

    #[test]
    fn retemplating_recovers_unmatched_targets() {
        // A 4-page profile cannot match an arbitrary offset; re-templating
        // thousands of fresh pages finds one. No chaos needed: recovery
        // engages whenever the policy allows it.
        let mut attack = ddr3_attack(4, 31);
        let mut data = vec![0u8; PAGE_SIZE];
        let targets = vec![TargetBit {
            file_page: 0,
            bit_offset: 31_999,
            zero_to_one: true,
        }];
        let policy = RecoveryPolicy {
            retemplate_pages: 16_384,
            ..RecoveryPolicy::default()
        };
        let out = attack.execute_adaptive(&mut data, &targets, &HashMap::new(), &policy);
        assert!(out.retemplate_rounds >= 1);
        assert_eq!(
            out.verified_targets, 1,
            "fresh pages must cover the target (rounds: {})",
            out.retemplate_rounds
        );
        assert!(out.outcome.records[0].matched_frame.is_some());
        assert!(out.outcome.records[0].verified);
        assert_eq!(out.outcome.n_matched, 1);
        // Needing recovery — even fault-free — is not a Full run, and the
        // modeled templating time is charged.
        assert_eq!(out.classification, RunClass::Degraded);
        assert!(out.recovery_time >= FlipProfile::templating_time(16_384));
    }

    #[test]
    fn recovery_dispatches_on_error_class() {
        let policy = RecoveryPolicy::default();
        let starved = DramError::NoMatchingPage {
            page_bit_offset: 99,
        };
        let fatal = DramError::PatternIneffective("TRR".into());
        // Recoverable error + rounds remaining → keep re-templating.
        assert!(policy.should_retemplate(&starved, 0));
        // Fatal error class aborts regardless of remaining rounds.
        assert!(!policy.should_retemplate(&fatal, 0));
        // Round budget exhausted aborts even recoverable errors.
        assert!(!policy.should_retemplate(&starved, policy.max_retemplate_rounds));
        // A disabled policy never re-templates.
        assert!(!RecoveryPolicy::disabled().should_retemplate(&starved, 0));
    }

    #[test]
    fn run_class_names_round_trip_and_rank() {
        for class in [RunClass::Full, RunClass::Degraded, RunClass::Failed] {
            assert_eq!(RunClass::from_name(class.name()), Some(class));
        }
        assert_eq!(RunClass::from_name("bogus"), None);
        assert!(RunClass::Full.rank() > RunClass::Degraded.rank());
        assert!(RunClass::Degraded.rank() > RunClass::Failed.rank());
    }
}
