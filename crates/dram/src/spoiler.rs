//! SPOILER: the speculative-load-hazard side channel that reveals physical
//! address contiguity (paper §IV-A1, Appendix B, Fig. 11).
//!
//! SPOILER exploits the fact that Intel processors resolve store-to-load
//! dependencies speculatively on *partial* physical addresses: a load whose
//! low physical address bits alias an earlier store suffers a measurable
//! delay. Scanning a large virtual buffer therefore yields timing peaks
//! whenever a page's physical frame aliases the probe window — and because
//! the aliasing bits are the low 8 bits of the frame number, the spacing of
//! peaks exposes which virtual pages are physically contiguous.
//!
//! The simulator assigns a physical frame layout to a virtual buffer
//! (fragmented with a controllable amount of contiguous runs), produces the
//! per-page latency trace of Fig. 11, and implements the detector the
//! attacker runs over it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Number of partial physical-address bits the store buffer compares
/// (SPOILER leaks the 8 bits above the page offset).
pub const ALIAS_BITS: u32 = 8;

/// Baseline measured load time, in cycles.
pub const BASE_LATENCY: f64 = 100.0;

/// Extra latency when the speculative hazard fires, in cycles.
pub const PEAK_LATENCY: f64 = 350.0;

/// A virtual buffer with a (hidden) physical frame assignment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VirtualBuffer {
    frames: Vec<usize>,
}

impl VirtualBuffer {
    /// Allocates a simulated buffer of `pages` virtual pages, fragmented
    /// into physically contiguous runs of random lengths (geometric with
    /// mean `mean_run`), as a buddy allocator under load would produce.
    pub fn allocate(pages: usize, mean_run: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut frames = Vec::with_capacity(pages);
        let mut next_base: usize = rng.gen_range(0..1 << 20);
        while frames.len() < pages {
            let run = run_length(mean_run, &mut rng).min(pages - frames.len());
            for i in 0..run {
                frames.push(next_base + i);
            }
            // Jump to an unrelated region for the next run.
            next_base = rng.gen_range(0..1 << 20);
        }
        VirtualBuffer { frames }
    }

    /// Number of pages.
    pub fn pages(&self) -> usize {
        self.frames.len()
    }

    /// Ground-truth physical frame of a virtual page (not available to the
    /// attacker; used by tests and by downstream placement code after
    /// detection).
    pub fn frame_of(&self, page: usize) -> usize {
        self.frames[page]
    }

    /// Ground-truth contiguous runs `(start_page, len)` of length ≥ 2.
    pub fn true_runs(&self) -> Vec<(usize, usize)> {
        let mut runs = Vec::new();
        let mut start = 0;
        for i in 1..=self.frames.len() {
            let broke = i == self.frames.len() || self.frames[i] != self.frames[i - 1] + 1;
            if broke {
                if i - start >= 2 {
                    runs.push((start, i - start));
                }
                start = i;
            }
        }
        runs
    }
}

/// One SPOILER measurement pass over a buffer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpoilerTrace {
    /// Averaged load latency per virtual page, in cycles.
    pub latencies: Vec<f64>,
}

/// Runs the SPOILER measurement: for each virtual page, issue stores to a
/// probe address and time a dependent load; pages whose physical frame
/// aliases the probe window in the low [`ALIAS_BITS`] show a latency peak.
///
/// The paper performs 100 timing measurements per page and averages after
/// outlier removal; the simulator folds that into small Gaussian noise.
pub fn measure(buffer: &VirtualBuffer, seed: u64) -> SpoilerTrace {
    let _span = rhb_telemetry::span!("spoiler_measure", pages = buffer.pages());
    rhb_telemetry::counter!("dram/spoiler_pages_probed", buffer.pages());
    let mut rng = StdRng::seed_from_u64(seed);
    let mask = (1usize << ALIAS_BITS) - 1;
    // The attacker's probe store lands at a fixed physical alias class.
    let probe_class = 0usize;
    let latencies = buffer
        .frames
        .iter()
        .map(|&frame| {
            let aliases = frame & mask == probe_class;
            let noise: f64 = (0..4).map(|_| rng.gen_range(-4.0..4.0)).sum::<f64>() / 4.0;
            BASE_LATENCY + noise + if aliases { PEAK_LATENCY } else { 0.0 }
        })
        .collect();
    SpoilerTrace { latencies }
}

/// Detects physically contiguous windows from a SPOILER trace: peaks
/// spaced exactly `2^ALIAS_BITS` pages apart witness a contiguous run
/// covering the span between them.
///
/// Returns `(start_page, len)` windows believed physically contiguous.
pub fn detect_contiguous(trace: &SpoilerTrace) -> Vec<(usize, usize)> {
    let threshold = BASE_LATENCY + PEAK_LATENCY / 2.0;
    let peaks: Vec<usize> = trace
        .latencies
        .iter()
        .enumerate()
        .filter_map(|(i, &l)| (l > threshold).then_some(i))
        .collect();
    let stride = 1usize << ALIAS_BITS;
    let mut windows = Vec::new();
    let mut run_start: Option<usize> = None;
    for w in peaks.windows(2) {
        if w[1] - w[0] == stride {
            if run_start.is_none() {
                run_start = Some(w[0]);
            }
        } else if let Some(start) = run_start.take() {
            windows.push((start, w[0] - start + 1));
        }
    }
    if let (Some(start), Some(&last)) = (run_start, peaks.last()) {
        windows.push((start, last - start + 1));
    }
    windows
}

fn run_length(mean: usize, rng: &mut StdRng) -> usize {
    // Geometric distribution with the requested mean, minimum 1.
    let p = 1.0 / mean.max(1) as f64;
    let mut n = 1;
    while !rng.gen_bool(p) && n < mean * 20 {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_has_requested_page_count() {
        let buf = VirtualBuffer::allocate(1000, 300, 1);
        assert_eq!(buf.pages(), 1000);
    }

    #[test]
    fn true_runs_are_contiguous() {
        let buf = VirtualBuffer::allocate(2000, 400, 2);
        for (start, len) in buf.true_runs() {
            for i in 1..len {
                assert_eq!(buf.frame_of(start + i), buf.frame_of(start + i - 1) + 1);
            }
        }
    }

    #[test]
    fn peaks_appear_at_alias_stride_within_runs() {
        let buf = VirtualBuffer::allocate(4096, 2048, 3);
        let trace = measure(&buf, 7);
        let threshold = BASE_LATENCY + PEAK_LATENCY / 2.0;
        let peaks: Vec<usize> = trace
            .latencies
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| (l > threshold).then_some(i))
            .collect();
        assert!(!peaks.is_empty(), "no SPOILER peaks observed");
        // Within the longest true run, consecutive peaks sit 256 apart.
        let (start, len) = buf
            .true_runs()
            .into_iter()
            .max_by_key(|&(_, l)| l)
            .expect("runs exist");
        let inside: Vec<usize> = peaks
            .iter()
            .copied()
            .filter(|&p| p >= start && p < start + len)
            .collect();
        assert!(inside.len() >= 2, "run too short for stride check");
        for w in inside.windows(2) {
            assert_eq!(w[1] - w[0], 1 << ALIAS_BITS);
        }
    }

    #[test]
    fn detector_finds_large_contiguous_windows() {
        let buf = VirtualBuffer::allocate(8192, 4096, 5);
        let trace = measure(&buf, 11);
        let windows = detect_contiguous(&trace);
        assert!(!windows.is_empty(), "detector found nothing");
        // Every detected window must be truly contiguous.
        for (start, len) in windows {
            for i in 1..len {
                assert_eq!(
                    buf.frame_of(start + i),
                    buf.frame_of(start + i - 1) + 1,
                    "window ({start},{len}) not contiguous at {i}"
                );
            }
        }
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let buf = VirtualBuffer::allocate(512, 128, 9);
        let a = measure(&buf, 1);
        let b = measure(&buf, 1);
        assert_eq!(a.latencies, b.latencies);
    }
}
