//! n-sided Rowhammer patterns, the TRR model, and hammer timing.
//!
//! The paper bypasses DDR4 Target Row Refresh with many-sided patterns
//! (TRRespass-style): extra aggressor rows saturate the TRR sampler so the
//! true victim is not refreshed in time. Two empirical behaviours matter to
//! the attack and are reproduced here:
//!
//! * **Fig. 5** — the number of flips observed on a buffer grows with the
//!   number of sides (once past the TRR threshold) and saturates;
//! * **Fig. 6** — hammering *gentler* than the templating pattern (7-sided
//!   vs 15-sided) reproduces the targeted flips while cutting accidental
//!   flips in a target page to ~4 bits.
//!
//! Per-row hammer times follow §VII: 800 ms with the 15-sided templating
//! pattern, 400 ms with the 7-sided online pattern.

use crate::chips::{ChipKind, ChipModel};
use crate::error::{DramError, Result};
use crate::geometry::DramGeometry;
use crate::profile::{FlipCell, FlipProfile};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

/// Histogram of aggressor-row activations absorbed per bank during one
/// hammering campaign (each hammered frame costs `sides` activations in
/// its bank). Registered with explicit bounds by
/// [`record_bank_accesses`]; summarized in the end-of-run report and the
/// run artifact.
pub const BANK_ACCESS_HISTOGRAM: &str = "dram/hammer/bank_accesses";

/// An n-sided hammer pattern: `sides` aggressor rows interleaved with
/// victims within one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HammerPattern {
    /// Number of aggressor rows.
    pub sides: usize,
}

impl HammerPattern {
    /// Classic double-sided hammering (effective on DDR3 only).
    pub fn double_sided() -> Self {
        HammerPattern { sides: 2 }
    }

    /// The paper's templating pattern for DDR4.
    pub fn fifteen_sided() -> Self {
        HammerPattern { sides: 15 }
    }

    /// The paper's online pattern, chosen to minimize accidental flips.
    pub fn seven_sided() -> Self {
        HammerPattern { sides: 7 }
    }

    /// The *intensity* of this pattern on a chip: the fraction of that
    /// chip's vulnerable cells (by aggression threshold) the pattern can
    /// flip. Encodes the TRR model: on DDR4, patterns with fewer than 3
    /// sides never beat the TRR sampler and have intensity 0.
    pub fn intensity(&self, kind: ChipKind) -> f64 {
        match kind {
            ChipKind::Ddr3 => {
                if self.sides < 2 {
                    0.0
                } else {
                    // Double-sided already reaches nearly every cell on DDR3;
                    // extra sides add aggressors farther away with little gain.
                    (1.0 - (-(self.sides as f64 - 1.0)).exp()).min(1.0)
                }
            }
            ChipKind::Ddr4 => {
                if self.sides < 3 {
                    0.0 // TRR tracks and refreshes both aggressors in time.
                } else {
                    // Cubic ramp saturating at the 15-sided templating
                    // pattern: gentle patterns reach only the most
                    // vulnerable cells (Fig. 6).
                    let x = (self.sides as f64 - 2.0) / 13.0;
                    x.powi(3).min(1.0)
                }
            }
        }
    }

    /// Time to hammer one row with this pattern, interpolating the paper's
    /// measurements (400 ms at 7 sides, 800 ms at 15 sides: more aggressors
    /// mean more activations per refresh interval are spent per side, so
    /// the attack must run longer to deliver the same per-victim toggles).
    pub fn time_per_row(&self) -> Duration {
        let ms = 400.0 * self.sides as f64 / 7.0;
        Duration::from_millis(ms.round() as u64)
    }

    /// Total online attack time for `n_flip` target bits (§VII: hammering
    /// time × N_flip).
    pub fn attack_time(&self, n_flip: usize) -> Duration {
        let per = self.time_per_row();
        per * n_flip as u32
    }

    /// Time charged against the recovery budget for one *retry* pass of a
    /// single row. Attempt 1 is the initial pass (plain
    /// [`HammerPattern::time_per_row`]); each further attempt doubles the
    /// dwell time, capped at 8×, modeling an attacker that hammers refuted
    /// rows progressively longer before giving up. This is the backoff
    /// half of the paper's attack-time model under chaos.
    pub fn retry_time(&self, attempt: u32) -> Duration {
        let backoff = 1u32 << attempt.saturating_sub(1).min(3);
        self.time_per_row() * backoff
    }
}

/// Configuration of a hammering campaign against profiled memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HammerConfig {
    /// The aggressor pattern.
    pub pattern: HammerPattern,
    /// Per-cell manifestation noise: a cell whose threshold is *just*
    /// reachable flips with this probability (1.0 = deterministic).
    pub reliability: f64,
}

impl Default for HammerConfig {
    fn default() -> Self {
        HammerConfig {
            pattern: HammerPattern::seven_sided(),
            reliability: 1.0,
        }
    }
}

/// Simulates hammering the row(s) hosting `page` in a templated buffer:
/// returns every profiled cell of that page the pattern reaches.
///
/// The caller maps the returned cells onto whatever data is resident in
/// the frame (the weight-file page, in the online attack).
pub fn hammer_page<'p>(
    profile: &'p FlipProfile,
    page: usize,
    config: &HammerConfig,
) -> Vec<&'p FlipCell> {
    let intensity = config.pattern.intensity(profile.chip().kind);
    profile
        .flips_in_page(page)
        .into_iter()
        .filter(|c| c.threshold <= intensity)
        .collect()
}

/// Folds hammered frames onto their banks and records one
/// [`BANK_ACCESS_HISTOGRAM`] sample per touched bank: the total number of
/// aggressor-row activations that bank absorbed (`sides` per frame). The
/// distribution shows how evenly — or not — a campaign loads the device's
/// banks, which bounds how much hammering can overlap in time.
pub fn record_bank_accesses(
    geometry: &DramGeometry,
    frames: impl IntoIterator<Item = usize>,
    pattern: HammerPattern,
) {
    rhb_telemetry::register_histogram(
        BANK_ACCESS_HISTOGRAM,
        &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0],
    );
    let mut per_bank: HashMap<usize, u64> = HashMap::new();
    for frame in frames {
        let bank = geometry.bank_of_row(geometry.row_of_frame(frame));
        *per_bank.entry(bank).or_default() += pattern.sides as u64;
    }
    for accesses in per_bank.into_values() {
        rhb_telemetry::observe!(BANK_ACCESS_HISTOGRAM, accesses as f64);
    }
}

/// Checks that a pattern can flip anything at all on a chip.
///
/// # Errors
///
/// Returns [`DramError::PatternIneffective`] for double-sided patterns on
/// TRR-protected DDR4, or single-sided patterns anywhere.
pub fn validate_pattern(pattern: HammerPattern, chip: ChipModel) -> Result<()> {
    if pattern.intensity(chip.kind) <= 0.0 {
        return Err(DramError::PatternIneffective(format!(
            "{}-sided hammering cannot flip bits on {} ({:?})",
            pattern.sides, chip.tag, chip.kind
        )));
    }
    Ok(())
}

/// Average flips observable on a buffer of `num_pages` pages with the given
/// pattern — the quantity plotted in Fig. 5 (per 8 MB buffer) and Fig. 6
/// (per page).
pub fn expected_flips(profile: &FlipProfile, pattern: HammerPattern) -> f64 {
    let intensity = pattern.intensity(profile.chip().kind);
    profile
        .cells()
        .iter()
        .filter(|c| c.threshold <= intensity)
        .count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chips::ChipModel;

    #[test]
    fn trr_blocks_double_sided_on_ddr4() {
        assert_eq!(HammerPattern::double_sided().intensity(ChipKind::Ddr4), 0.0);
        assert!(validate_pattern(HammerPattern::double_sided(), ChipModel::online_ddr4()).is_err());
    }

    #[test]
    fn double_sided_works_on_ddr3() {
        let i = HammerPattern::double_sided().intensity(ChipKind::Ddr3);
        assert!(i > 0.6, "DDR3 double-sided intensity {i}");
        assert!(
            validate_pattern(HammerPattern::double_sided(), ChipModel::reference_ddr3()).is_ok()
        );
    }

    #[test]
    fn intensity_is_monotonic_in_sides() {
        for kind in [ChipKind::Ddr3, ChipKind::Ddr4] {
            let mut prev = -1.0;
            for sides in 1..=20 {
                let i = HammerPattern { sides }.intensity(kind);
                assert!(i >= prev, "{kind:?} intensity dropped at {sides} sides");
                prev = i;
            }
        }
    }

    #[test]
    fn fifteen_sided_saturates_ddr4() {
        assert!((HammerPattern::fifteen_sided().intensity(ChipKind::Ddr4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn seven_sided_reaches_small_fraction_on_ddr4() {
        // Fig. 6: 7-sided cuts accidental flips on the K1-like chip
        // (~100 flips/page) down to a handful per page.
        let i = HammerPattern::seven_sided().intensity(ChipKind::Ddr4);
        let expected_extras = i * ChipModel::online_ddr4().avg_flips_per_page;
        assert!(
            (2.0..8.0).contains(&expected_extras),
            "expected extras per page {expected_extras}, paper reports ~4"
        );
    }

    #[test]
    fn hammer_times_match_paper() {
        assert_eq!(HammerPattern::seven_sided().time_per_row().as_millis(), 400);
        assert_eq!(
            HammerPattern::fifteen_sided().time_per_row().as_millis(),
            857
        );
    }

    #[test]
    fn attack_time_scales_with_nflip() {
        let t = HammerPattern::seven_sided().attack_time(10);
        assert_eq!(t.as_secs(), 4);
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let p = HammerPattern::seven_sided();
        let base = p.time_per_row();
        assert_eq!(p.retry_time(1), base);
        assert_eq!(p.retry_time(2), base * 2);
        assert_eq!(p.retry_time(3), base * 4);
        assert_eq!(p.retry_time(4), base * 8);
        assert_eq!(p.retry_time(9), base * 8, "backoff must cap");
        assert_eq!(p.retry_time(0), base, "attempt 0 charges one pass");
    }

    #[test]
    fn gentler_pattern_manifests_fewer_flips() {
        let profile = FlipProfile::template(ChipModel::online_ddr4(), 2048, 3);
        let full = expected_flips(&profile, HammerPattern::fifteen_sided());
        let gentle = expected_flips(&profile, HammerPattern::seven_sided());
        assert!(gentle < full * 0.15, "gentle {gentle} vs full {full}");
        assert!(gentle > 0.0);
    }

    #[test]
    fn hammer_page_respects_intensity() {
        let profile = FlipProfile::template(ChipModel::online_ddr4(), 64, 5);
        // Find a page that actually has cells.
        let page = profile.cells()[0].page;
        let gentle = hammer_page(&profile, page, &HammerConfig::default());
        let full = hammer_page(
            &profile,
            page,
            &HammerConfig {
                pattern: HammerPattern::fifteen_sided(),
                reliability: 1.0,
            },
        );
        assert!(gentle.len() <= full.len());
        assert_eq!(full.len(), profile.flips_in_page(page).len());
    }
}
