//! DRAM, Rowhammer, and memory-placement simulator.
//!
//! The paper's online attack phase runs on physical DDR3/DDR4 DIMMs. This
//! crate simulates every hardware mechanism that phase depends on, with
//! parameters measured by the paper:
//!
//! * [`geometry`] — banks, rows, frames, and the physical-address mapping;
//! * [`chips`] — the 20-chip catalog of Table I (average flips per page);
//! * [`profile`] — memory templating: which cells flip, in which direction,
//!   and how aggressively they must be hammered (sparsity of Fig. 2);
//! * [`hammer`] — n-sided Rowhammer patterns, the TRR mitigation model,
//!   per-row hammering time, and accidental-flip behaviour (Figs. 5–6);
//! * [`spoiler`] — the SPOILER contiguity side channel (Fig. 11);
//! * [`rowconflict`] — row-buffer-conflict bank detection (Fig. 12);
//! * [`placement`] — the Linux per-CPU page-frame cache exploit that steers
//!   weight-file pages onto flippy frames (Listing 1, Fig. 4);
//! * [`online`] — the end-to-end online executor: template → match →
//!   place → hammer, producing the corrupted weight bytes plus match
//!   statistics, and the adaptive recovery driver that survives a
//!   hostile DRAM;
//! * [`chaos`] — deterministic, seeded fault injection (templating
//!   false positives/negatives, flaky flips, eviction, ECC masking,
//!   latency noise) that the recovery driver is tested against;
//! * [`plundervolt`] — the appendix's negative-result fault model.

pub mod chaos;
pub mod chips;
pub mod error;
pub mod geometry;
pub mod hammer;
pub mod online;
pub mod placement;
pub mod plundervolt;
pub mod profile;
pub mod rowconflict;
pub mod spoiler;
pub mod template_cache;

pub use chaos::{ChaosConfig, ChaosEngine, FaultKind, InjectedFault};
pub use chips::{ChipKind, ChipModel};
pub use error::{DramError, Result};
pub use geometry::DramGeometry;
pub use hammer::{HammerConfig, HammerPattern};
pub use online::{
    AdaptiveOutcome, FallbackRecord, HammerOutcome, OnlineAttack, OnlineOutcome, RecoveryPolicy,
    RetryRecord, RunClass, TargetRecord,
};
pub use profile::{FlipCell, FlipDirection, FlipProfile};
pub use template_cache::TemplateCache;
