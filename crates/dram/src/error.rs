//! Error type for the DRAM simulator.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, DramError>;

/// Errors raised by the DRAM and placement simulators.
///
/// Variants split into two recovery classes (see
/// [`DramError::is_recoverable`]): *recoverable* errors describe a
/// transient or per-target condition the online attack's adaptive driver
/// can route around (re-template, retry, fall back to an alternate bit),
/// while *fatal* errors describe misconfiguration or an exhausted budget
/// where retrying is wasted work. The enum is non-exhaustive so future
/// fault classes can be added without breaking downstream matches.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// A frame, row, or page index was out of range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        len: usize,
        /// What was being indexed.
        what: &'static str,
    },
    /// The page-frame cache cannot satisfy an allocation.
    CacheExhausted {
        /// Frames requested.
        requested: usize,
        /// Frames available.
        available: usize,
    },
    /// No flippy page in the profile matches a required bit target.
    NoMatchingPage {
        /// Bit offset within the page that was required.
        page_bit_offset: usize,
    },
    /// A hammer pattern cannot run on this chip (e.g. double-sided vs TRR).
    PatternIneffective(String),
    /// Read-back verification refuted an intended flip after hammering:
    /// the targeted bit does not hold its required value.
    FlipRefuted {
        /// Frame whose row was hammered.
        frame: usize,
        /// Bit offset of the refuted target within its page.
        bit_offset: usize,
        /// Hammer passes delivered before giving up.
        attempts: u32,
    },
    /// The adaptive recovery driver exhausted its retry/re-templating
    /// budget with targets still unrealized.
    RecoveryExhausted {
        /// Targets that never verifiably landed.
        failed_targets: usize,
    },
}

impl DramError {
    /// Whether the online attack's recovery driver should keep working on
    /// the condition (`true`) or abandon it (`false`).
    ///
    /// Recoverable: a starving match ([`DramError::NoMatchingPage`]) can be
    /// fed by re-templating fresh pages; a transient allocation shortfall
    /// ([`DramError::CacheExhausted`]) by releasing more bait; a refuted
    /// flip ([`DramError::FlipRefuted`]) by retrying the pass or falling
    /// back to an alternate bit target.
    ///
    /// Fatal: an out-of-range index or an ineffective pattern is a
    /// configuration bug retries cannot fix, and an exhausted recovery
    /// budget is terminal by definition.
    pub fn is_recoverable(&self) -> bool {
        match self {
            DramError::NoMatchingPage { .. }
            | DramError::CacheExhausted { .. }
            | DramError::FlipRefuted { .. } => true,
            DramError::IndexOutOfRange { .. }
            | DramError::PatternIneffective(_)
            | DramError::RecoveryExhausted { .. } => false,
        }
    }
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::IndexOutOfRange { index, len, what } => {
                write!(f, "index {index} out of range for {what} of length {len}")
            }
            DramError::CacheExhausted {
                requested,
                available,
            } => write!(
                f,
                "page frame cache exhausted: requested {requested}, available {available}"
            ),
            DramError::NoMatchingPage { page_bit_offset } => write!(
                f,
                "no flippy page matches bit offset {page_bit_offset} in the profile"
            ),
            DramError::PatternIneffective(msg) => write!(f, "hammer pattern ineffective: {msg}"),
            DramError::FlipRefuted {
                frame,
                bit_offset,
                attempts,
            } => write!(
                f,
                "read-back refuted flip at frame {frame} bit {bit_offset} after {attempts} attempt(s)"
            ),
            DramError::RecoveryExhausted { failed_targets } => write!(
                f,
                "recovery budget exhausted with {failed_targets} target(s) unrealized"
            ),
        }
    }
}

impl std::error::Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_specifics() {
        let e = DramError::NoMatchingPage {
            page_bit_offset: 77,
        };
        assert!(e.to_string().contains("77"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }

    #[test]
    fn transient_conditions_are_recoverable() {
        assert!(DramError::NoMatchingPage { page_bit_offset: 3 }.is_recoverable());
        assert!(DramError::CacheExhausted {
            requested: 8,
            available: 2
        }
        .is_recoverable());
        assert!(DramError::FlipRefuted {
            frame: 7,
            bit_offset: 1234,
            attempts: 2
        }
        .is_recoverable());
    }

    #[test]
    fn configuration_and_budget_errors_are_fatal() {
        assert!(!DramError::IndexOutOfRange {
            index: 9,
            len: 4,
            what: "frames"
        }
        .is_recoverable());
        assert!(!DramError::PatternIneffective("TRR".into()).is_recoverable());
        assert!(!DramError::RecoveryExhausted { failed_targets: 2 }.is_recoverable());
    }

    #[test]
    fn new_variants_display_specifics() {
        let refuted = DramError::FlipRefuted {
            frame: 12,
            bit_offset: 345,
            attempts: 3,
        };
        let text = refuted.to_string();
        assert!(text.contains("12") && text.contains("345") && text.contains('3'));
        assert!(DramError::RecoveryExhausted { failed_targets: 5 }
            .to_string()
            .contains('5'));
    }
}
