//! Error type for the DRAM simulator.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, DramError>;

/// Errors raised by the DRAM and placement simulators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DramError {
    /// A frame, row, or page index was out of range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        len: usize,
        /// What was being indexed.
        what: &'static str,
    },
    /// The page-frame cache cannot satisfy an allocation.
    CacheExhausted {
        /// Frames requested.
        requested: usize,
        /// Frames available.
        available: usize,
    },
    /// No flippy page in the profile matches a required bit target.
    NoMatchingPage {
        /// Bit offset within the page that was required.
        page_bit_offset: usize,
    },
    /// A hammer pattern cannot run on this chip (e.g. double-sided vs TRR).
    PatternIneffective(String),
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::IndexOutOfRange { index, len, what } => {
                write!(f, "index {index} out of range for {what} of length {len}")
            }
            DramError::CacheExhausted {
                requested,
                available,
            } => write!(
                f,
                "page frame cache exhausted: requested {requested}, available {available}"
            ),
            DramError::NoMatchingPage { page_bit_offset } => write!(
                f,
                "no flippy page matches bit offset {page_bit_offset} in the profile"
            ),
            DramError::PatternIneffective(msg) => write!(f, "hammer pattern ineffective: {msg}"),
        }
    }
}

impl std::error::Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_specifics() {
        let e = DramError::NoMatchingPage {
            page_bit_offset: 77,
        };
        assert!(e.to_string().contains("77"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }
}
