//! Memory templating: the flip profile of a buffer.
//!
//! Templating (paper §IV-A2) hammers a large attacker-owned buffer with
//! all-ones/all-zeros data patterns and records every cell that flips, its
//! direction, and — implicitly, by varying the hammer pattern — how much
//! aggression it needs. The outcome is a *flip profile*: a sparse list of
//! `(page, bit-offset, direction, threshold)` tuples. The paper measures
//! 94 minutes to template 128 MB and finds only ~0.036 % of cells
//! vulnerable on its reference DDR3 chip.

use crate::chips::ChipModel;
use crate::error::{DramError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

/// Bits in a 4 KB page.
pub const PAGE_BITS: usize = 4096 * 8;

/// The direction a faulty cell flips. A physical cell flips in exactly one
/// direction (determined by its true-cell/anti-cell wiring), which is why
/// matching a target page must respect direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlipDirection {
    /// Charged cell discharges: stored 0 becomes 1 in anti-cell encoding.
    ZeroToOne,
    /// Stored 1 becomes 0.
    OneToZero,
}

impl FlipDirection {
    /// Direction needed to take a bit with current value `bit` to its
    /// complement.
    pub fn for_flip_of(bit_is_zero: bool) -> Self {
        if bit_is_zero {
            FlipDirection::ZeroToOne
        } else {
            FlipDirection::OneToZero
        }
    }
}

/// One vulnerable DRAM cell found by templating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlipCell {
    /// Page index within the templated buffer.
    pub page: usize,
    /// Bit offset within the page (0..32768).
    pub bit_offset: usize,
    /// The only direction this cell can flip.
    pub direction: FlipDirection,
    /// Hammer-aggression threshold in (0, 1]: the cell flips when a hammer
    /// pattern's intensity reaches this value. Full templating (intensity
    /// 1.0) reveals every cell; gentler online patterns reach only cells
    /// with low thresholds (this models Fig. 6's 15- vs 7-sided contrast).
    pub threshold: f64,
}

/// The flip profile of a templated buffer.
#[derive(Debug, Clone, Serialize)]
pub struct FlipProfile {
    chip: ChipModel,
    num_pages: usize,
    cells: Vec<FlipCell>,
    /// Cells indexed by page for fast lookup.
    #[serde(skip)]
    by_page: HashMap<usize, Vec<usize>>,
}

impl FlipProfile {
    /// Templates `num_pages` pages of a buffer on the given chip.
    ///
    /// Each page receives a Poisson-distributed number of vulnerable cells
    /// with mean [`ChipModel::avg_flips_per_page`], at uniform bit offsets,
    /// each pinned to a uniform direction — the paper observes 0→1 and 1→0
    /// counts to be nearly equal — and a uniform aggression threshold.
    pub fn template(chip: ChipModel, num_pages: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cells = Vec::new();
        for page in 0..num_pages {
            let n = sample_poisson(chip.avg_flips_per_page, &mut rng);
            for _ in 0..n {
                cells.push(FlipCell {
                    page,
                    bit_offset: rng.gen_range(0..PAGE_BITS),
                    direction: if rng.gen_bool(0.5) {
                        FlipDirection::ZeroToOne
                    } else {
                        FlipDirection::OneToZero
                    },
                    threshold: rng.gen_range(f64::EPSILON..=1.0),
                });
            }
        }
        rhb_telemetry::counter!("dram/pages_templated", num_pages);
        rhb_telemetry::counter!("dram/cells_templated", cells.len());
        let mut profile = FlipProfile {
            chip,
            num_pages,
            cells,
            by_page: HashMap::new(),
        };
        profile.rebuild_index();
        profile
    }

    /// Reconstructs a profile from previously templated cells — the
    /// deserialization path for the on-disk template cache, so resumed
    /// campaigns re-hammer instead of re-template. No templating
    /// telemetry is emitted: these pages were already paid for.
    pub fn from_cells(chip: ChipModel, num_pages: usize, cells: Vec<FlipCell>) -> Self {
        let mut profile = FlipProfile {
            chip,
            num_pages,
            cells,
            by_page: HashMap::new(),
        };
        profile.rebuild_index();
        profile
    }

    fn rebuild_index(&mut self) {
        self.by_page.clear();
        for (i, c) in self.cells.iter().enumerate() {
            self.by_page.entry(c.page).or_default().push(i);
        }
    }

    /// The chip this profile was measured on.
    pub fn chip(&self) -> ChipModel {
        self.chip
    }

    /// Number of templated pages.
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// All vulnerable cells.
    pub fn cells(&self) -> &[FlipCell] {
        &self.cells
    }

    /// Total vulnerable cells found.
    pub fn total_flips(&self) -> usize {
        self.cells.len()
    }

    /// Fraction of all templated cells that are vulnerable (Fig. 2's
    /// sparsity number).
    pub fn sparsity(&self) -> f64 {
        self.total_flips() as f64 / (self.num_pages as f64 * PAGE_BITS as f64)
    }

    /// Vulnerable cells in one page.
    pub fn flips_in_page(&self, page: usize) -> Vec<&FlipCell> {
        self.by_page
            .get(&page)
            .map(|idx| idx.iter().map(|&i| &self.cells[i]).collect())
            .unwrap_or_default()
    }

    /// Average flips per page actually realized in this profile.
    pub fn measured_avg_flips_per_page(&self) -> f64 {
        self.total_flips() as f64 / self.num_pages as f64
    }

    /// Finds a page containing a cell at exactly `bit_offset` flipping in
    /// `direction`, whose threshold is reachable by a hammer pattern of the
    /// given `intensity`, and which is not in `exclude`.
    ///
    /// This is the matching step of the online phase: the attacker needs a
    /// flippy page whose vulnerable cell lines up with the weight bit the
    /// optimizer chose.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::NoMatchingPage`] when the profile has no such
    /// page — the situation the paper shows is almost certain for two or
    /// more required offsets in a single page.
    pub fn find_matching_page(
        &self,
        bit_offset: usize,
        direction: FlipDirection,
        intensity: f64,
        exclude: &[usize],
    ) -> Result<usize> {
        let matches = |c: &FlipCell| {
            c.bit_offset == bit_offset
                && c.direction == direction
                && c.threshold <= intensity
                && !exclude.contains(&c.page)
        };
        const SCAN_GRAIN: usize = 64 * 1024;
        let pool = rhb_par::pool();
        // Small profiles or a lone thread: plain first-match with early
        // exit. Extended-templating profiles hold millions of cells, so
        // chunk the scan; taking the first hit in chunk order equals the
        // serial first match, and a shared low-water mark lets later
        // chunks bail out once an earlier cell already matched.
        if pool.threads() == 1 || self.cells.len() <= SCAN_GRAIN {
            return self
                .cells
                .iter()
                .find(|c| matches(c))
                .map(|c| c.page)
                .ok_or(DramError::NoMatchingPage {
                    page_bit_offset: bit_offset,
                });
        }
        let earliest = std::sync::atomic::AtomicUsize::new(usize::MAX);
        pool.parallel_map(self.cells.len(), SCAN_GRAIN, |range| {
            if range.start > earliest.load(std::sync::atomic::Ordering::Relaxed) {
                return None;
            }
            let hit = self.cells[range.clone()]
                .iter()
                .position(&matches)
                .map(|off| range.start + off);
            if let Some(i) = hit {
                earliest.fetch_min(i, std::sync::atomic::Ordering::Relaxed);
            }
            hit
        })
        .into_iter()
        .flatten()
        .next()
        .map(|i| self.cells[i].page)
        .ok_or(DramError::NoMatchingPage {
            page_bit_offset: bit_offset,
        })
    }

    /// Finds a page whose vulnerable cells cover *all* the given
    /// (offset, direction) pairs — needed by the baselines, which demand
    /// several specific flips inside one page. Almost always fails, per the
    /// paper's probability analysis.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::NoMatchingPage`] when no single page covers
    /// every requirement.
    pub fn find_page_covering(
        &self,
        requirements: &[(usize, FlipDirection)],
        intensity: f64,
        exclude: &[usize],
    ) -> Result<usize> {
        if requirements.is_empty() {
            return Err(DramError::NoMatchingPage { page_bit_offset: 0 });
        }
        'pages: for (&page, idx) in &self.by_page {
            if exclude.contains(&page) {
                continue;
            }
            for &(offset, dir) in requirements {
                let covered = idx.iter().any(|&i| {
                    let c = &self.cells[i];
                    c.bit_offset == offset && c.direction == dir && c.threshold <= intensity
                });
                if !covered {
                    continue 'pages;
                }
            }
            return Ok(page);
        }
        Err(DramError::NoMatchingPage {
            page_bit_offset: requirements[0].0,
        })
    }

    /// Re-templates `additional_pages` *fresh* pages (appended after the
    /// existing ones) and returns their index range.
    ///
    /// The adaptive recovery driver calls this when matching starves: the
    /// attacker grabs another buffer, templates it, and retries the failed
    /// matches against the enlarged profile. Sampling is identical to
    /// [`FlipProfile::template`] and deterministic per `seed`, so extending
    /// never perturbs the already-templated pages. The wall-clock cost is
    /// accounted separately via [`FlipProfile::templating_time`].
    pub fn extend_template(
        &mut self,
        additional_pages: usize,
        seed: u64,
    ) -> std::ops::Range<usize> {
        let start = self.num_pages;
        let mut rng = StdRng::seed_from_u64(seed);
        for page in start..start + additional_pages {
            let n = sample_poisson(self.chip.avg_flips_per_page, &mut rng);
            for _ in 0..n {
                let cell = FlipCell {
                    page,
                    bit_offset: rng.gen_range(0..PAGE_BITS),
                    direction: if rng.gen_bool(0.5) {
                        FlipDirection::ZeroToOne
                    } else {
                        FlipDirection::OneToZero
                    },
                    threshold: rng.gen_range(f64::EPSILON..=1.0),
                };
                self.by_page.entry(page).or_default().push(self.cells.len());
                self.cells.push(cell);
            }
        }
        self.num_pages += additional_pages;
        rhb_telemetry::counter!("dram/pages_retemplated", additional_pages);
        start..self.num_pages
    }

    /// Templating wall-clock time model: the paper measures 94 minutes for
    /// 128 MB (32,768 pages).
    pub fn templating_time(num_pages: usize) -> Duration {
        let minutes = 94.0 * num_pages as f64 / 32_768.0;
        Duration::from_secs_f64(minutes * 60.0)
    }
}

/// Knuth's Poisson sampler, adequate for the per-page means in Table I.
/// Falls back to a normal approximation for large means to avoid the
/// exponential underflow regime.
pub(crate) fn sample_poisson(mean: f64, rng: &mut StdRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 60.0 {
        let sample = mean + mean.sqrt() * normal(rng);
        return sample.max(0.0).round() as usize;
    }
    let limit = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0..1.0);
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_profile_matches_paper_sparsity() {
        // 128 MB = 32,768 pages on the reference DDR3 chip should find
        // roughly 382k flips = 0.036% of cells (Fig. 2).
        let profile = FlipProfile::template(ChipModel::reference_ddr3(), 32_768, 1);
        let sparsity = profile.sparsity();
        assert!(
            (sparsity - 0.000_356).abs() < 0.000_05,
            "sparsity {sparsity} deviates from the paper's 0.036%"
        );
        let flips = profile.total_flips();
        assert!(
            (300_000..460_000).contains(&flips),
            "total flips {flips} far from the paper's 381,962"
        );
    }

    #[test]
    fn profile_is_deterministic_per_seed() {
        let chip = ChipModel::by_tag("L1").unwrap();
        let a = FlipProfile::template(chip, 512, 9);
        let b = FlipProfile::template(chip, 512, 9);
        assert_eq!(a.cells(), b.cells());
    }

    #[test]
    fn direction_split_is_roughly_even() {
        let profile = FlipProfile::template(ChipModel::reference_ddr3(), 4096, 3);
        let zto = profile
            .cells()
            .iter()
            .filter(|c| c.direction == FlipDirection::ZeroToOne)
            .count();
        let total = profile.total_flips();
        let frac = zto as f64 / total as f64;
        assert!((0.45..0.55).contains(&frac), "0→1 fraction {frac}");
    }

    #[test]
    fn flippy_chip_has_denser_profile() {
        let sparse = FlipProfile::template(ChipModel::by_tag("M1").unwrap(), 1024, 5);
        let dense = FlipProfile::template(ChipModel::by_tag("K2").unwrap(), 1024, 5);
        assert!(dense.total_flips() > 10 * sparse.total_flips());
    }

    #[test]
    fn single_offset_match_succeeds_on_large_buffer() {
        // The paper: p(target page | one offset) ≈ 1 for a 128MB buffer.
        let profile = FlipProfile::template(ChipModel::reference_ddr3(), 32_768, 7);
        let hits = (0..20)
            .filter(|i| {
                profile
                    .find_matching_page(i * 1000 + 13, FlipDirection::ZeroToOne, 1.0, &[])
                    .is_ok()
            })
            .count();
        assert!(hits >= 19, "only {hits}/20 single-offset matches found");
    }

    #[test]
    fn multi_offset_match_fails_in_practice() {
        // The paper: p vanishes for 3 offsets in the same page.
        let profile = FlipProfile::template(ChipModel::reference_ddr3(), 8192, 11);
        let reqs = [
            (100, FlipDirection::ZeroToOne),
            (8_000, FlipDirection::OneToZero),
            (20_000, FlipDirection::ZeroToOne),
        ];
        assert!(profile.find_page_covering(&reqs, 1.0, &[]).is_err());
    }

    #[test]
    fn exclusion_list_is_respected() {
        let profile = FlipProfile::template(ChipModel::by_tag("K1").unwrap(), 256, 2);
        let cell = profile.cells()[0];
        let page = profile
            .find_matching_page(cell.bit_offset, cell.direction, 1.0, &[])
            .unwrap();
        // Excluding every page must fail.
        let all: Vec<usize> = (0..256).collect();
        assert!(profile
            .find_matching_page(cell.bit_offset, cell.direction, 1.0, &all)
            .is_err());
        assert!(!all.is_empty() && page < 256);
    }

    #[test]
    fn templating_time_scales_linearly() {
        let t128 = FlipProfile::templating_time(32_768);
        assert_eq!(t128.as_secs(), 94 * 60);
        let t64 = FlipProfile::templating_time(16_384);
        assert_eq!(t64.as_secs(), 47 * 60);
    }

    #[test]
    fn extend_template_appends_fresh_pages_without_touching_old_ones() {
        let chip = ChipModel::reference_ddr3();
        let mut profile = FlipProfile::template(chip, 1024, 21);
        let before = profile.cells().to_vec();
        let range = profile.extend_template(512, 22);
        assert_eq!(range, 1024..1536);
        assert_eq!(profile.num_pages(), 1536);
        assert_eq!(&profile.cells()[..before.len()], &before[..]);
        // The fresh pages carry cells and the index reaches them.
        let fresh: Vec<_> = profile
            .cells()
            .iter()
            .filter(|c| range.contains(&c.page))
            .collect();
        assert!(!fresh.is_empty(), "no cells templated in extension");
        let sample = fresh[0];
        assert!(profile
            .flips_in_page(sample.page)
            .iter()
            .any(|c| c.bit_offset == sample.bit_offset));
        // Matching can now land in the extension.
        assert_eq!(
            profile.find_matching_page(
                sample.bit_offset,
                sample.direction,
                1.0,
                &(0..1024).collect::<Vec<_>>()
            ),
            Ok(sample.page)
        );
    }

    #[test]
    fn extend_template_is_deterministic_per_seed() {
        let chip = ChipModel::reference_ddr3();
        let mut a = FlipProfile::template(chip, 256, 5);
        let mut b = FlipProfile::template(chip, 256, 5);
        a.extend_template(128, 77);
        b.extend_template(128, 77);
        assert_eq!(a.cells(), b.cells());
    }

    #[test]
    fn poisson_mean_is_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean = 3.7;
        let sum: usize = (0..n).map(|_| sample_poisson(mean, &mut rng)).sum();
        let observed = sum as f64 / n as f64;
        assert!((observed - mean).abs() < 0.1, "observed {observed}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_tail() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 5_000;
        let mean = 100.68; // chip K1
        let sum: usize = (0..n).map(|_| sample_poisson(mean, &mut rng)).sum();
        let observed = sum as f64 / n as f64;
        assert!((observed - mean).abs() < 1.0, "observed {observed}");
    }
}
