//! Declarative alert rules evaluated over metrics snapshots.
//!
//! An [`AlertEngine`] holds a list of [`Rule`]s and is fed every
//! [`MetricsSnapshot`] the observability sampler publishes. Each rule is
//! a predicate over one signal — a gauge, a counter (total, per-window
//! delta, or rate), or a histogram-digest percentile — wrapped in a
//! sustained-window trigger: the predicate must hold for `sustain`
//! consecutive snapshots to fire, and fail for `clear` consecutive
//! snapshots to resolve (hysteresis, so a single noisy window cannot
//! flap an alert). Fired and resolved transitions are edge-triggered
//! [`Alert`] events carrying the triggering snapshot's seq, phase,
//! window, and observed value, and they increment `core/alerts/*`
//! counters in the global registry so alerts are themselves observable.
//!
//! The engine is deterministic: alerts are a pure function of the
//! snapshot sequence, so a fixed seed and fixed chaos config reproduce
//! the same alert trail on every run.
//!
//! Built-in rules cover the attack-health failure modes the paper's
//! §VII attack-time model cares about (hammer-success collapse,
//! templating-yield starvation, ETA blowup, run-classification
//! downgrade) plus infrastructure health (worker-pool idle saturation,
//! eval p99 latency breach, recovery pressure). Extra rules come from
//! the `RHB_ALERT_RULES` environment DSL — see [`parse_rules`].

use rhb_telemetry::MetricsSnapshot;
use std::fmt::Write as _;

/// Env var holding extra rules in the [`parse_rules`] DSL.
pub const RULES_ENV: &str = "RHB_ALERT_RULES";

/// How many fired/resolved events the engine keeps for `/alerts`.
const LOG_CAP: usize = 256;

/// Alert urgency, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warn,
    Critical,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }

    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warn" | "warning" => Some(Severity::Warn),
            "critical" | "crit" => Some(Severity::Critical),
            _ => None,
        }
    }
}

/// Comparison operator for threshold predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cmp {
    fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            Cmp::Lt => value < threshold,
            Cmp::Le => value <= threshold,
            Cmp::Gt => value > threshold,
            Cmp::Ge => value >= threshold,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Cmp::Lt => "lt",
            Cmp::Le => "le",
            Cmp::Gt => "gt",
            Cmp::Ge => "ge",
        }
    }

    pub fn parse(s: &str) -> Option<Cmp> {
        match s {
            "lt" | "<" => Some(Cmp::Lt),
            "le" | "<=" => Some(Cmp::Le),
            "gt" | ">" => Some(Cmp::Gt),
            "ge" | ">=" => Some(Cmp::Ge),
            _ => None,
        }
    }
}

/// The scalar a threshold predicate reads out of each snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum Signal {
    /// A gauge's current value; absent gauge → predicate is false.
    Gauge(String),
    /// A counter's monotonic total.
    CounterTotal(String),
    /// A counter's increase over the snapshot window.
    CounterDelta(String),
    /// A counter's events/s over the snapshot window.
    CounterRate(String),
    /// Max p99 across histograms whose name starts with the prefix and
    /// which saw new samples this window.
    HistP99(String),
}

impl Signal {
    pub fn metric(&self) -> &str {
        match self {
            Signal::Gauge(m)
            | Signal::CounterTotal(m)
            | Signal::CounterDelta(m)
            | Signal::CounterRate(m)
            | Signal::HistP99(m) => m,
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            Signal::Gauge(_) => "gauge",
            Signal::CounterTotal(_) => "counter_total",
            Signal::CounterDelta(_) => "counter_delta",
            Signal::CounterRate(_) => "counter_rate",
            Signal::HistP99(_) => "hist_p99",
        }
    }

    /// Reads the signal from a snapshot; `None` when the underlying
    /// metric does not exist (yet) or saw no samples this window.
    fn read(&self, snap: &MetricsSnapshot) -> Option<f64> {
        match self {
            Signal::Gauge(name) => snap.gauge(name),
            Signal::CounterTotal(name) => snap.counter(name).map(|c| c.total as f64),
            Signal::CounterDelta(name) => snap.counter(name).map(|c| c.delta as f64),
            Signal::CounterRate(name) => snap.counter(name).map(|c| c.rate),
            Signal::HistP99(prefix) => snap
                .histograms
                .iter()
                .filter(|h| h.name.starts_with(prefix.as_str()) && h.delta_count > 0)
                .map(|h| h.summary().p99)
                .fold(None, |acc: Option<f64>, p| {
                    Some(acc.map_or(p, |a| a.max(p)))
                }),
        }
    }
}

/// What a rule tests each snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `signal cmp threshold`.
    Compare {
        signal: Signal,
        cmp: Cmp,
        threshold: f64,
    },
    /// The gauge grew by more than `factor`× since the previous
    /// snapshot (rate-of-change; e.g. the §VII ETA estimate doubling in
    /// one window means observed flip rate collapsed).
    GaugeGrowth { gauge: String, factor: f64 },
    /// The gauge dropped below its previous value. On first
    /// observation, `baseline` (when given) stands in for the previous
    /// value, so a gauge that *appears* already degraded still fires.
    GaugeDrop {
        gauge: String,
        baseline: Option<f64>,
    },
    /// Idle fraction of worker-pool time this window, summed over the
    /// per-worker `par/worker/*/{idle,busy}_us` counters.
    PoolIdleFraction { threshold: f64 },
}

/// One observation of a predicate that held: the value that tripped it,
/// the threshold it tripped against, and (for rate-of-change rules) the
/// previous value.
#[derive(Debug, Clone, Copy)]
struct Trip {
    value: f64,
    threshold: f64,
    prev: Option<f64>,
}

impl Predicate {
    fn evaluate(&self, snap: &MetricsSnapshot, prev_gauges: &[(String, f64)]) -> Option<Trip> {
        let prev_gauge = |name: &str| prev_gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v);
        match self {
            Predicate::Compare {
                signal,
                cmp,
                threshold,
            } => {
                let value = signal.read(snap)?;
                cmp.holds(value, *threshold).then_some(Trip {
                    value,
                    threshold: *threshold,
                    prev: None,
                })
            }
            Predicate::GaugeGrowth { gauge, factor } => {
                let value = snap.gauge(gauge)?;
                let prev = prev_gauge(gauge)?;
                (prev > 0.0 && value.is_finite() && value > prev * factor).then_some(Trip {
                    value,
                    threshold: prev * factor,
                    prev: Some(prev),
                })
            }
            Predicate::GaugeDrop { gauge, baseline } => {
                let value = snap.gauge(gauge)?;
                let prev = prev_gauge(gauge).or(*baseline)?;
                (value < prev).then_some(Trip {
                    value,
                    threshold: prev,
                    prev: Some(prev),
                })
            }
            Predicate::PoolIdleFraction { threshold } => {
                let (mut idle, mut busy) = (0u64, 0u64);
                for c in &snap.counters {
                    if let Some(rest) = c.name.strip_prefix("par/worker/") {
                        if rest.ends_with("/idle_us") {
                            idle += c.delta;
                        } else if rest.ends_with("/busy_us") {
                            busy += c.delta;
                        }
                    }
                }
                let total = idle + busy;
                if total == 0 {
                    return None;
                }
                let frac = idle as f64 / total as f64;
                (frac > *threshold).then_some(Trip {
                    value: frac,
                    threshold: *threshold,
                    prev: None,
                })
            }
        }
    }

    /// Human-readable description of the condition for messages.
    fn describe(&self) -> String {
        match self {
            Predicate::Compare {
                signal,
                cmp,
                threshold,
            } => format!(
                "{}({}) {} {threshold}",
                signal.kind(),
                signal.metric(),
                cmp.as_str()
            ),
            Predicate::GaugeGrowth { gauge, factor } => {
                format!("gauge({gauge}) grew more than {factor}x in one window")
            }
            Predicate::GaugeDrop { gauge, .. } => format!("gauge({gauge}) dropped"),
            Predicate::PoolIdleFraction { threshold } => {
                format!("worker-pool idle fraction gt {threshold}")
            }
        }
    }
}

/// A named, severity-tagged predicate with sustained-window hysteresis.
#[derive(Debug, Clone)]
pub struct Rule {
    pub name: String,
    pub severity: Severity,
    pub predicate: Predicate,
    /// Consecutive snapshots the predicate must hold to fire (≥ 1).
    pub sustain: usize,
    /// Consecutive snapshots the predicate must fail to resolve (≥ 1).
    pub clear: usize,
    pub message: String,
}

impl Rule {
    pub fn new(name: &str, severity: Severity, predicate: Predicate, message: &str) -> Rule {
        Rule {
            name: name.to_string(),
            severity,
            predicate,
            sustain: 1,
            clear: 1,
            message: message.to_string(),
        }
    }

    pub fn sustained(mut self, sustain: usize, clear: usize) -> Rule {
        self.sustain = sustain.max(1);
        self.clear = clear.max(1);
        self
    }
}

/// Fired/resolved state of an [`Alert`] event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    Fired,
    Resolved,
}

impl AlertState {
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Fired => "fired",
            AlertState::Resolved => "resolved",
        }
    }
}

/// One edge-triggered alert transition, carrying the triggering
/// snapshot's coordinates and the observation that tripped the rule.
#[derive(Debug, Clone)]
pub struct Alert {
    pub rule: String,
    pub severity: Severity,
    pub state: AlertState,
    /// Sequence number of the triggering snapshot.
    pub seq: u64,
    pub uptime_s: f64,
    /// Snapshot window the trigger was observed over.
    pub interval_s: Option<f64>,
    /// Live span path at trigger time.
    pub phase: String,
    /// Observed signal value (the last trip for fired; NaN-free).
    pub value: f64,
    pub threshold: f64,
    /// Previous value for rate-of-change rules.
    pub prev: Option<f64>,
    pub message: String,
}

fn esc(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn num(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

impl Alert {
    /// Renders the alert as a single-line JSON object — the shape used
    /// for timeline annotations (`"kind": "alert"`), the `/alerts`
    /// endpoint log, and the artifact alerts block.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"kind\": \"alert\", \"rule\": ");
        esc(&self.rule, &mut out);
        let _ = write!(
            out,
            ", \"severity\": \"{}\", \"state\": \"{}\", \"seq\": {}, \"uptime_s\": ",
            self.severity.as_str(),
            self.state.as_str(),
            self.seq
        );
        num(self.uptime_s, &mut out);
        out.push_str(", \"interval_s\": ");
        match self.interval_s {
            Some(v) => num(v, &mut out),
            None => out.push_str("null"),
        }
        out.push_str(", \"phase\": ");
        esc(&self.phase, &mut out);
        out.push_str(", \"value\": ");
        num(self.value, &mut out);
        out.push_str(", \"threshold\": ");
        num(self.threshold, &mut out);
        out.push_str(", \"prev\": ");
        match self.prev {
            Some(v) => num(v, &mut out),
            None => out.push_str("null"),
        }
        out.push_str(", \"message\": ");
        esc(&self.message, &mut out);
        out.push('}');
        out
    }
}

#[derive(Debug, Default, Clone)]
struct RuleState {
    consecutive_true: usize,
    consecutive_false: usize,
    active: bool,
    fired: u64,
    last_trip: Option<Trip>,
}

/// Evaluates a rule set against a stream of snapshots.
pub struct AlertEngine {
    rules: Vec<Rule>,
    states: Vec<RuleState>,
    prev_gauges: Vec<(String, f64)>,
    log: Vec<Alert>,
    fired_total: u64,
    resolved_total: u64,
}

impl AlertEngine {
    pub fn new(rules: Vec<Rule>) -> AlertEngine {
        let states = vec![RuleState::default(); rules.len()];
        AlertEngine {
            rules,
            states,
            prev_gauges: Vec::new(),
            log: Vec::new(),
            fired_total: 0,
            resolved_total: 0,
        }
    }

    /// The built-in rule set (see module docs).
    pub fn builtin() -> AlertEngine {
        AlertEngine::new(builtin_rules())
    }

    /// Built-ins plus any extras from `RHB_ALERT_RULES`. Invalid DSL
    /// entries are reported on stderr and skipped — a typo in an env
    /// var must not take down the attack run it was meant to watch.
    pub fn from_env() -> AlertEngine {
        let mut rules = builtin_rules();
        if let Ok(spec) = std::env::var(RULES_ENV) {
            match parse_rules(&spec) {
                Ok(extra) => rules.extend(extra),
                Err(e) => eprintln!("rhb-alert: ignoring {RULES_ENV}: {e}"),
            }
        }
        AlertEngine::new(rules)
    }

    /// Built-ins with sustain/clear forced to 1 — for post-hoc
    /// evaluation of a single end-of-run snapshot, where every window
    /// requirement would otherwise go unmet by construction.
    pub fn postmortem() -> AlertEngine {
        let rules = builtin_rules()
            .into_iter()
            .map(|r| r.sustained(1, 1))
            .collect();
        AlertEngine::new(rules)
    }

    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Names of currently-active (fired, unresolved) rules.
    pub fn active(&self) -> Vec<&str> {
        self.rules
            .iter()
            .zip(&self.states)
            .filter(|(_, s)| s.active)
            .map(|(r, _)| r.name.as_str())
            .collect()
    }

    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// The retained fired/resolved event log, oldest first.
    pub fn log(&self) -> &[Alert] {
        &self.log
    }

    /// Feeds one snapshot through every rule; returns the edge-triggered
    /// transitions (fired and resolved alerts) this snapshot caused.
    /// Also mirrors fire events into `core/alerts/*` counters and the
    /// `core/alerts/active` gauge on the global registry.
    pub fn evaluate(&mut self, snap: &MetricsSnapshot) -> Vec<Alert> {
        let mut events = Vec::new();
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            match rule.predicate.evaluate(snap, &self.prev_gauges) {
                Some(trip) => {
                    state.consecutive_true += 1;
                    state.consecutive_false = 0;
                    state.last_trip = Some(trip);
                    if !state.active && state.consecutive_true >= rule.sustain {
                        state.active = true;
                        state.fired += 1;
                        events.push(make_alert(rule, AlertState::Fired, snap, trip));
                    }
                }
                None => {
                    state.consecutive_false += 1;
                    state.consecutive_true = 0;
                    if state.active && state.consecutive_false >= rule.clear {
                        state.active = false;
                        let trip = state.last_trip.take().unwrap_or(Trip {
                            value: 0.0,
                            threshold: 0.0,
                            prev: None,
                        });
                        events.push(make_alert(rule, AlertState::Resolved, snap, trip));
                    }
                }
            }
        }
        self.prev_gauges = snap.gauges.clone();
        for event in &events {
            match event.state {
                AlertState::Fired => {
                    self.fired_total += 1;
                    rhb_telemetry::add_counter("core/alerts/fired", 1);
                    rhb_telemetry::add_counter(&format!("core/alerts/{}", event.rule), 1);
                }
                AlertState::Resolved => {
                    self.resolved_total += 1;
                    rhb_telemetry::add_counter("core/alerts/resolved", 1);
                }
            }
        }
        if !events.is_empty() {
            rhb_telemetry::set_gauge(
                "core/alerts/active",
                self.states.iter().filter(|s| s.active).count() as f64,
            );
        }
        self.log.extend(events.iter().cloned());
        if self.log.len() > LOG_CAP {
            let drop = self.log.len() - LOG_CAP;
            self.log.drain(..drop);
        }
        events
    }

    /// Renders the engine state as the `/alerts` JSON document.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"fired_total\": {},", self.fired_total);
        let _ = writeln!(out, "  \"resolved_total\": {},", self.resolved_total);
        out.push_str("  \"active\": [");
        for (i, name) in self.active().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            esc(name, &mut out);
        }
        out.push_str("],\n  \"rules\": [\n");
        let n = self.rules.len();
        for (i, (rule, state)) in self.rules.iter().zip(&self.states).enumerate() {
            out.push_str("    {\"name\": ");
            esc(&rule.name, &mut out);
            let _ = write!(
                out,
                ", \"severity\": \"{}\", \"condition\": ",
                rule.severity.as_str()
            );
            esc(&rule.predicate.describe(), &mut out);
            let _ = write!(
                out,
                ", \"sustain\": {}, \"clear\": {}, \"active\": {}, \"fired\": {}}}{}",
                rule.sustain,
                rule.clear,
                state.active,
                state.fired,
                if i + 1 == n { "" } else { "," }
            );
            out.push('\n');
        }
        out.push_str("  ],\n  \"log\": [\n");
        let n = self.log.len();
        for (i, alert) in self.log.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&alert.to_json());
            out.push_str(if i + 1 == n { "\n" } else { ",\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn make_alert(rule: &Rule, state: AlertState, snap: &MetricsSnapshot, trip: Trip) -> Alert {
    Alert {
        rule: rule.name.clone(),
        severity: rule.severity,
        state,
        seq: snap.seq,
        uptime_s: snap.uptime.as_secs_f64(),
        interval_s: snap.interval.map(|d| d.as_secs_f64()),
        phase: snap.current_span.clone(),
        value: trip.value,
        threshold: trip.threshold,
        prev: trip.prev,
        message: rule.message.clone(),
    }
}

/// The built-in rule set.
pub fn builtin_rules() -> Vec<Rule> {
    vec![
        Rule::new(
            "hammer-success-collapse",
            Severity::Warn,
            Predicate::Compare {
                signal: Signal::Gauge("core/health/hammer_success_rate".into()),
                cmp: Cmp::Lt,
                threshold: 0.5,
            },
            "rolling hammer verification rate collapsed below 50%",
        )
        .sustained(2, 2),
        Rule::new(
            "templating-yield-starvation",
            Severity::Warn,
            Predicate::Compare {
                signal: Signal::Gauge("core/health/templating_yield".into()),
                cmp: Cmp::Lt,
                threshold: 0.25,
            },
            "templating match yield starved below 25%",
        )
        .sustained(2, 2),
        Rule::new(
            "eta-blowup",
            Severity::Warn,
            Predicate::GaugeGrowth {
                gauge: "core/health/eta_s".into(),
                factor: 2.0,
            },
            "attack-time ETA more than doubled in one window (observed rate collapsed vs the \u{a7}VII model)",
        ),
        Rule::new(
            "worker-pool-idle-saturation",
            Severity::Warn,
            Predicate::PoolIdleFraction { threshold: 0.95 },
            "worker pool spent >95% of this window idle",
        )
        .sustained(2, 2),
        Rule::new(
            "eval-p99-latency-breach",
            Severity::Warn,
            Predicate::Compare {
                signal: Signal::HistP99("nn/eval/".into()),
                cmp: Cmp::Gt,
                threshold: 0.25,
            },
            "model eval p99 latency breached 250ms",
        ),
        Rule::new(
            "run-class-downgrade",
            Severity::Critical,
            Predicate::GaugeDrop {
                gauge: "core/run_class".into(),
                baseline: Some(2.0),
            },
            "run classification downgraded from full success",
        ),
        Rule::new(
            "attack-stall",
            Severity::Warn,
            Predicate::Compare {
                signal: Signal::CounterDelta("core/health/stalls".into()),
                cmp: Cmp::Gt,
                threshold: 0.0,
            },
            "attack health model entered a stall",
        ),
        // Totals (not deltas): counters reset at run start, so "any
        // retry happened this run" is deterministic even when another
        // snapshot consumer (artifact finalization) drains the delta
        // between the retry burst and the sampler's next tick.
        Rule::new(
            "recovery-pressure",
            Severity::Info,
            Predicate::Compare {
                signal: Signal::CounterTotal("dram/recovery/retries".into()),
                cmp: Cmp::Gt,
                threshold: 0.0,
            },
            "hammer recovery retries observed this run",
        ),
        // Victim-serving SLO: end-to-end request latency of the
        // inference service (rhb-serve). The histogram only exists when
        // a server is running, so offline runs never see this fire.
        Rule::new(
            "serve-slo-breach",
            Severity::Warn,
            Predicate::Compare {
                signal: Signal::HistP99("serve/latency_s".into()),
                cmp: Cmp::Gt,
                threshold: 0.5,
            },
            "serving p99 end-to-end latency breached the 500ms SLO",
        )
        .sustained(2, 2),
        // Admission control engaged: the bounded queue shed load this
        // window — expected under hammering interference, worth marking
        // on the timeline either way.
        Rule::new(
            "serve-load-shedding",
            Severity::Info,
            Predicate::Compare {
                signal: Signal::CounterDelta("serve/shed".into()),
                cmp: Cmp::Gt,
                threshold: 0.0,
            },
            "inference service shed requests at admission control",
        ),
        // Campaign fleet health: the supervisor's heartbeat exports
        // seconds-since-last-settled-run. A missing gauge makes the
        // rule inert, so non-campaign runs never see it fire.
        Rule::new(
            "campaign-stall",
            Severity::Warn,
            Predicate::Compare {
                signal: Signal::Gauge("campaign/stall_s".into()),
                cmp: Cmp::Gt,
                threshold: 120.0,
            },
            "campaign made no progress for 2 minutes (watchdogs and retries may be churning)",
        )
        .sustained(2, 2),
    ]
}

/// Parses the `RHB_ALERT_RULES` DSL: `;`-separated entries of
///
/// ```text
/// name:kind:metric:op:value[:sustain=N][:clear=N][:severity=LEVEL]
/// ```
///
/// with `kind` ∈ `gauge|counter_total|counter_delta|counter_rate|hist_p99`,
/// `op` ∈ `lt|le|gt|ge`, and `severity` ∈ `info|warn|critical`
/// (default `warn`). Example:
///
/// ```text
/// slow-eval:hist_p99:nn/eval/:gt:0.1:sustain=2:severity=critical
/// ```
pub fn parse_rules(spec: &str) -> Result<Vec<Rule>, String> {
    let mut rules = Vec::new();
    for entry in spec.split(';') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let parts: Vec<&str> = entry.split(':').collect();
        if parts.len() < 5 {
            return Err(format!(
                "rule '{entry}': expected name:kind:metric:op:value[:k=v...]"
            ));
        }
        let (name, kind, metric, op, value) = (parts[0], parts[1], parts[2], parts[3], parts[4]);
        if name.is_empty() {
            return Err(format!("rule '{entry}': empty name"));
        }
        let signal = match kind {
            "gauge" => Signal::Gauge(metric.to_string()),
            "counter_total" => Signal::CounterTotal(metric.to_string()),
            "counter_delta" => Signal::CounterDelta(metric.to_string()),
            "counter_rate" => Signal::CounterRate(metric.to_string()),
            "hist_p99" => Signal::HistP99(metric.to_string()),
            other => return Err(format!("rule '{name}': unknown signal kind '{other}'")),
        };
        let cmp = Cmp::parse(op).ok_or_else(|| format!("rule '{name}': unknown op '{op}'"))?;
        let threshold: f64 = value
            .parse()
            .map_err(|_| format!("rule '{name}': bad threshold '{value}'"))?;
        let mut rule = Rule::new(
            name,
            Severity::Warn,
            Predicate::Compare {
                signal,
                cmp,
                threshold,
            },
            &format!("{kind}({metric}) {op} {value}"),
        );
        for opt in &parts[5..] {
            let (key, val) = opt
                .split_once('=')
                .ok_or_else(|| format!("rule '{name}': bad option '{opt}' (want k=v)"))?;
            match key {
                "sustain" => {
                    rule.sustain = val
                        .parse::<usize>()
                        .map_err(|_| format!("rule '{name}': bad sustain '{val}'"))?
                        .max(1);
                }
                "clear" => {
                    rule.clear = val
                        .parse::<usize>()
                        .map_err(|_| format!("rule '{name}': bad clear '{val}'"))?
                        .max(1);
                }
                "severity" => {
                    rule.severity = Severity::parse(val)
                        .ok_or_else(|| format!("rule '{name}': bad severity '{val}'"))?;
                }
                other => return Err(format!("rule '{name}': unknown option '{other}'")),
            }
        }
        rules.push(rule);
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhb_telemetry::{NoopSink, Telemetry};
    use std::sync::Arc;

    /// A fabricated deterministic snapshot stream: each call installs
    /// the given gauge value and returns the next snapshot.
    struct Stream {
        tel: Telemetry,
    }

    impl Stream {
        fn new() -> Stream {
            let tel = Telemetry::new();
            tel.install(Arc::new(NoopSink));
            Stream { tel }
        }

        fn snap_with_gauge(&self, name: &str, value: f64) -> MetricsSnapshot {
            self.tel.gauge(name, value);
            self.tel.snapshot()
        }
    }

    fn collapse_rule(sustain: usize, clear: usize) -> Rule {
        Rule::new(
            "collapse",
            Severity::Warn,
            Predicate::Compare {
                signal: Signal::Gauge("core/health/hammer_success_rate".into()),
                cmp: Cmp::Lt,
                threshold: 0.5,
            },
            "collapsed",
        )
        .sustained(sustain, clear)
    }

    #[test]
    fn sustained_window_fires_only_after_n_consecutive_trips() {
        let stream = Stream::new();
        let mut engine = AlertEngine::new(vec![collapse_rule(3, 1)]);
        let g = "core/health/hammer_success_rate";
        assert!(engine.evaluate(&stream.snap_with_gauge(g, 0.4)).is_empty());
        assert!(engine.evaluate(&stream.snap_with_gauge(g, 0.4)).is_empty());
        // A healthy window resets the streak.
        assert!(engine.evaluate(&stream.snap_with_gauge(g, 0.9)).is_empty());
        assert!(engine.evaluate(&stream.snap_with_gauge(g, 0.3)).is_empty());
        assert!(engine.evaluate(&stream.snap_with_gauge(g, 0.3)).is_empty());
        let fired = engine.evaluate(&stream.snap_with_gauge(g, 0.3));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].state, AlertState::Fired);
        assert_eq!(fired[0].rule, "collapse");
        assert_eq!(fired[0].value, 0.3);
        assert_eq!(fired[0].threshold, 0.5);
        assert_eq!(engine.active(), vec!["collapse"]);
    }

    #[test]
    fn hysteresis_requires_clear_consecutive_healthy_windows() {
        let stream = Stream::new();
        let mut engine = AlertEngine::new(vec![collapse_rule(1, 2)]);
        let g = "core/health/hammer_success_rate";
        let fired = engine.evaluate(&stream.snap_with_gauge(g, 0.1));
        assert_eq!(fired.len(), 1);
        // One healthy window is not enough to resolve...
        assert!(engine.evaluate(&stream.snap_with_gauge(g, 0.9)).is_empty());
        // ...and a relapse resets the clear streak without re-firing.
        assert!(engine.evaluate(&stream.snap_with_gauge(g, 0.2)).is_empty());
        assert!(engine.evaluate(&stream.snap_with_gauge(g, 0.9)).is_empty());
        let resolved = engine.evaluate(&stream.snap_with_gauge(g, 0.9));
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].state, AlertState::Resolved);
        assert!(engine.active().is_empty());
        assert_eq!(engine.fired_total(), 1);
    }

    #[test]
    fn counter_delta_rule_is_edge_triggered_per_window() {
        let tel = Telemetry::new();
        tel.install(Arc::new(NoopSink));
        let mut engine = AlertEngine::new(vec![Rule::new(
            "stall",
            Severity::Warn,
            Predicate::Compare {
                signal: Signal::CounterDelta("core/health/stalls".into()),
                cmp: Cmp::Gt,
                threshold: 0.0,
            },
            "stalled",
        )]);
        tel.add_counter("core/health/stalls", 1);
        let fired = engine.evaluate(&tel.snapshot());
        assert_eq!(fired.len(), 1, "delta 1 > 0 fires");
        // Quiet window: delta 0 resolves.
        let resolved = engine.evaluate(&tel.snapshot());
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].state, AlertState::Resolved);
        // Another stall re-fires.
        tel.add_counter("core/health/stalls", 1);
        let fired = engine.evaluate(&tel.snapshot());
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].state, AlertState::Fired);
    }

    #[test]
    fn gauge_growth_detects_eta_blowup() {
        let stream = Stream::new();
        let mut engine = AlertEngine::new(vec![Rule::new(
            "eta-blowup",
            Severity::Warn,
            Predicate::GaugeGrowth {
                gauge: "core/health/eta_s".into(),
                factor: 2.0,
            },
            "blowup",
        )]);
        assert!(
            engine
                .evaluate(&stream.snap_with_gauge("core/health/eta_s", 100.0))
                .is_empty(),
            "first observation has no previous value"
        );
        assert!(engine
            .evaluate(&stream.snap_with_gauge("core/health/eta_s", 150.0))
            .is_empty());
        let fired = engine.evaluate(&stream.snap_with_gauge("core/health/eta_s", 400.0));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].prev, Some(150.0));
        assert_eq!(fired[0].value, 400.0);
    }

    #[test]
    fn gauge_drop_uses_baseline_on_first_observation() {
        let stream = Stream::new();
        let mut engine = AlertEngine::new(vec![Rule::new(
            "downgrade",
            Severity::Critical,
            Predicate::GaugeDrop {
                gauge: "core/run_class".into(),
                baseline: Some(2.0),
            },
            "downgraded",
        )]);
        // run_class first appears already degraded (1 < baseline 2).
        let fired = engine.evaluate(&stream.snap_with_gauge("core/run_class", 1.0));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].severity, Severity::Critical);
        assert_eq!(fired[0].prev, Some(2.0));
    }

    #[test]
    fn pool_idle_fraction_sums_worker_deltas() {
        let tel = Telemetry::new();
        tel.install(Arc::new(NoopSink));
        let mut engine = AlertEngine::new(vec![Rule::new(
            "idle",
            Severity::Warn,
            Predicate::PoolIdleFraction { threshold: 0.9 },
            "idle",
        )]);
        tel.add_counter("par/worker/0/idle_us", 990);
        tel.add_counter("par/worker/0/busy_us", 5);
        tel.add_counter("par/worker/1/idle_us", 990);
        tel.add_counter("par/worker/1/busy_us", 5);
        let fired = engine.evaluate(&tel.snapshot());
        assert_eq!(fired.len(), 1);
        assert!((fired[0].value - 1980.0 / 1990.0).abs() < 1e-9);
        // Busy window: fraction below threshold resolves.
        tel.add_counter("par/worker/0/busy_us", 10_000);
        let resolved = engine.evaluate(&tel.snapshot());
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].state, AlertState::Resolved);
    }

    #[test]
    fn hist_p99_prefix_rule_sees_only_moving_histograms() {
        let tel = Telemetry::new();
        tel.install(Arc::new(NoopSink));
        let mut engine = AlertEngine::new(vec![Rule::new(
            "slow-eval",
            Severity::Warn,
            Predicate::Compare {
                signal: Signal::HistP99("nn/eval/".into()),
                cmp: Cmp::Gt,
                threshold: 0.25,
            },
            "slow",
        )]);
        tel.observe("nn/eval/fc_s", 2.0);
        tel.observe("other/op_s", 99.0);
        let fired = engine.evaluate(&tel.snapshot());
        assert_eq!(fired.len(), 1, "slow eval histogram trips the rule");
        assert!(fired[0].value >= 2.0 * 0.5, "p99 near the observed value");
        // No new samples: the digest still holds 2.0 but the window saw
        // nothing, so the rule resolves rather than latching forever.
        let resolved = engine.evaluate(&tel.snapshot());
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].state, AlertState::Resolved);
    }

    #[test]
    fn identical_snapshot_streams_produce_identical_alert_trails() {
        let run = || -> Vec<String> {
            let stream = Stream::new();
            let mut engine = AlertEngine::new(builtin_rules());
            let mut trail = Vec::new();
            for v in [0.9, 0.4, 0.4, 0.4, 0.9, 0.9, 0.9] {
                stream.tel.gauge("core/health/templating_yield", v * 0.3);
                for a in
                    engine.evaluate(&stream.snap_with_gauge("core/health/hammer_success_rate", v))
                {
                    trail.push(format!(
                        "{}@{}:{}={}",
                        a.rule,
                        a.seq,
                        a.state.as_str(),
                        a.value
                    ));
                }
            }
            trail
        };
        let a = run();
        assert_eq!(a, run(), "alert trail must be deterministic");
        assert!(!a.is_empty());
    }

    #[test]
    fn dsl_parses_rules_with_options() {
        let rules = parse_rules(
            "slow-eval:hist_p99:nn/eval/:gt:0.1:sustain=2:severity=critical; \
             flips:counter_rate:dram/bits_flipped:lt:0.5:clear=3",
        )
        .unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name, "slow-eval");
        assert_eq!(rules[0].sustain, 2);
        assert_eq!(rules[0].severity, Severity::Critical);
        assert_eq!(
            rules[0].predicate,
            Predicate::Compare {
                signal: Signal::HistP99("nn/eval/".into()),
                cmp: Cmp::Gt,
                threshold: 0.1,
            }
        );
        assert_eq!(rules[1].clear, 3);
        assert_eq!(rules[1].severity, Severity::Warn);
    }

    #[test]
    fn dsl_rejects_malformed_entries() {
        assert!(parse_rules("short:gauge:x").is_err());
        assert!(parse_rules("r:nope:x:lt:1").is_err());
        assert!(parse_rules("r:gauge:x:between:1").is_err());
        assert!(parse_rules("r:gauge:x:lt:abc").is_err());
        assert!(parse_rules("r:gauge:x:lt:1:sustain=zero").is_err());
        assert!(parse_rules("r:gauge:x:lt:1:bogus=1").is_err());
        assert!(parse_rules("").unwrap().is_empty());
        assert!(parse_rules(" ; ").unwrap().is_empty());
    }

    #[test]
    fn alert_json_is_one_line_and_escaped() {
        let alert = Alert {
            rule: "a\"b".into(),
            severity: Severity::Critical,
            state: AlertState::Fired,
            seq: 7,
            uptime_s: 1.5,
            interval_s: Some(0.25),
            phase: "pipeline/hammering".into(),
            value: f64::NAN,
            threshold: 0.5,
            prev: None,
            message: "m".into(),
        };
        let json = alert.to_json();
        assert!(!json.contains('\n'));
        assert!(json.contains("\"rule\": \"a\\\"b\""));
        assert!(json.contains("\"value\": null"), "NaN renders as null");
        assert!(json.contains("\"seq\": 7"));
        assert!(json.contains("\"state\": \"fired\""));
    }

    #[test]
    fn render_json_lists_rules_counts_and_log() {
        let stream = Stream::new();
        let mut engine = AlertEngine::new(vec![collapse_rule(1, 1)]);
        engine.evaluate(&stream.snap_with_gauge("core/health/hammer_success_rate", 0.1));
        let doc = engine.render_json();
        assert!(doc.contains("\"fired_total\": 1"));
        assert!(doc.contains("\"active\": [\"collapse\"]"));
        assert!(doc.contains("\"kind\": \"alert\""));
        assert!(doc.contains("\"condition\": \"gauge(core/health/hammer_success_rate) lt 0.5\""));
    }

    #[test]
    fn builtin_rules_cover_the_documented_failure_modes() {
        let names: Vec<String> = builtin_rules().into_iter().map(|r| r.name).collect();
        for expected in [
            "hammer-success-collapse",
            "templating-yield-starvation",
            "eta-blowup",
            "worker-pool-idle-saturation",
            "eval-p99-latency-breach",
            "run-class-downgrade",
            "attack-stall",
            "recovery-pressure",
            "serve-slo-breach",
            "serve-load-shedding",
            "campaign-stall",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn log_is_bounded() {
        let tel = Telemetry::new();
        tel.install(Arc::new(NoopSink));
        let mut engine = AlertEngine::new(vec![Rule::new(
            "tick",
            Severity::Info,
            Predicate::Compare {
                signal: Signal::CounterDelta("c".into()),
                cmp: Cmp::Gt,
                threshold: 0.0,
            },
            "tick",
        )]);
        for _ in 0..400 {
            tel.add_counter("c", 1);
            engine.evaluate(&tel.snapshot());
            engine.evaluate(&tel.snapshot());
        }
        assert!(engine.log().len() <= LOG_CAP);
    }
}
