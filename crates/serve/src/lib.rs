//! # rhb-serve — the victim as a service
//!
//! The paper's victim is a *deployed* model serving live traffic while
//! Rowhammer flips its weight pages. This crate makes that concrete and
//! dependency-free:
//!
//! - [`queue`]: a bounded request queue with admission control — under
//!   attack-induced slowdown the victim sheds load instead of growing an
//!   unbounded backlog.
//! - [`server`]: [`VictimServer`] — a worker pool draining the queue in
//!   batches through the deployed int8 engine, with per-request
//!   `serve/latency_s` SLO histograms and a completion log. Weight
//!   mutations applied through [`VictimServer::with_model`] are visible
//!   to the very next batch (PR 9's generation-counter packed-panel
//!   invalidation), which is what "flips propagate into in-flight
//!   serving" means operationally.
//! - [`traffic`]: a seeded, strictly serial open-loop traffic generator
//!   (Poisson arrivals, configurable clean/triggered mix) whose schedule
//!   is bit-identical at any `RHB_THREADS`.
//! - [`trajectory`]: post-hoc windowing of the completion log into
//!   clean-accuracy/ASR trajectories, time-to-first-activation, and
//!   tail-latency interference.
//!
//! The `exp_serve_attack` driver in `rhb-bench` wires these against the
//! real attack pipeline; see `DESIGN.md`, "Victim serving".

pub mod queue;
pub mod server;
pub mod traffic;
pub mod trajectory;

pub use queue::{Request, RequestQueue};
pub use server::{CompletionRecord, ServeConfig, ServeLog, VictimServer};
pub use traffic::{RequestSpec, Schedule, TrafficConfig};

use std::time::{Duration, Instant};

/// Outcome of replaying a schedule against a live server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveStats {
    /// Requests admitted into the queue.
    pub admitted: usize,
    /// Requests shed by admission control.
    pub shed: usize,
}

/// Replays a [`Schedule`] against a running [`VictimServer`] on the wall
/// clock (open loop: each request is submitted at its scheduled arrival,
/// never waiting for responses). `time_scale` stretches (>1) or
/// compresses (<1) the schedule; `payload` materializes each request's
/// image and true label — the client stamps the trigger there, keeping
/// the server trigger-agnostic like a real deployment.
pub fn drive_schedule(
    server: &VictimServer,
    schedule: &Schedule,
    time_scale: f64,
    mut payload: impl FnMut(&RequestSpec) -> (Vec<f32>, usize),
) -> DriveStats {
    let start = Instant::now();
    let mut stats = DriveStats {
        admitted: 0,
        shed: 0,
    };
    for spec in schedule.specs() {
        let due =
            start + Duration::from_secs_f64(spec.arrival().as_secs_f64() * time_scale.max(0.0));
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let (input, true_label) = payload(spec);
        if server.submit(spec.seq, input, true_label, spec.triggered) {
            stats.admitted += 1;
        } else {
            stats.shed += 1;
        }
    }
    stats
}
