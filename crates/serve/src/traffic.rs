//! Deterministic open-loop synthetic traffic.
//!
//! The generator materializes the *entire* request schedule up front from
//! one seed: a Poisson arrival process (exponential inter-arrival gaps at
//! the configured rate), a uniformly drawn test-set sample per request,
//! and a Bernoulli clean/triggered coin. Generation is strictly serial
//! and never touches the `rhb-par` pool, so the same seed and config
//! yield a bit-identical schedule at any `RHB_THREADS` — the property
//! the determinism suite pins. Only *submission* happens on the wall
//! clock (open loop: requests arrive when the schedule says, whether or
//! not the victim has kept up, which is what makes queue pressure and
//! shedding measurable).

use std::time::Duration;

/// Configuration of one synthetic traffic session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Seed for arrivals, sample choice, and clean/triggered labeling.
    pub seed: u64,
    /// Total requests to generate.
    pub requests: usize,
    /// Mean arrival rate, requests per second (Poisson process).
    pub rate_rps: f64,
    /// Fraction of requests carrying the backdoor trigger.
    pub trigger_fraction: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            seed: 41,
            requests: 600,
            rate_rps: 150.0,
            trigger_fraction: 0.35,
        }
    }
}

/// One scheduled request, before payload materialization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestSpec {
    /// Position in the schedule (also the request id).
    pub seq: usize,
    /// Arrival offset from session start, microseconds.
    pub arrival_us: u64,
    /// Test-set sample index the client sends.
    pub sample_idx: usize,
    /// Whether the client stamps the backdoor trigger on the image.
    pub triggered: bool,
}

impl RequestSpec {
    /// Arrival offset as a [`Duration`].
    pub fn arrival(&self) -> Duration {
        Duration::from_micros(self.arrival_us)
    }
}

/// The fully materialized arrival schedule of one session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    specs: Vec<RequestSpec>,
}

impl Schedule {
    /// Generates the schedule for `config` over a test set of
    /// `samples` images. Purely serial and seed-deterministic.
    ///
    /// # Panics
    ///
    /// Panics when `samples == 0` or the rate is not positive.
    pub fn generate(config: &TrafficConfig, samples: usize) -> Schedule {
        assert!(samples > 0, "traffic needs a non-empty test set");
        assert!(
            config.rate_rps > 0.0 && config.rate_rps.is_finite(),
            "arrival rate must be positive"
        );
        let mut rng = TrafficRng::new(config.seed);
        let mean_gap_us = 1e6 / config.rate_rps;
        let mut clock_us = 0f64;
        let specs = (0..config.requests)
            .map(|seq| {
                // Exponential inter-arrival gap: -ln(U) * mean.
                clock_us += -rng.unit_open().ln() * mean_gap_us;
                RequestSpec {
                    seq,
                    arrival_us: clock_us as u64,
                    sample_idx: rng.below(samples),
                    triggered: rng.unit() < config.trigger_fraction,
                }
            })
            .collect();
        Schedule { specs }
    }

    /// The scheduled requests, in arrival order.
    pub fn specs(&self) -> &[RequestSpec] {
        &self.specs
    }

    /// Number of scheduled requests.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Count of triggered requests in the schedule.
    pub fn triggered(&self) -> usize {
        self.specs.iter().filter(|s| s.triggered).count()
    }

    /// Scheduled end of the session (last arrival offset).
    pub fn span(&self) -> Duration {
        self.specs
            .last()
            .map(RequestSpec::arrival)
            .unwrap_or(Duration::ZERO)
    }
}

/// splitmix64-backed generator: tiny, full-avalanche, and — unlike the
/// global pool — owned entirely by the schedule being built.
struct TrafficRng {
    state: u64,
}

impl TrafficRng {
    fn new(seed: u64) -> TrafficRng {
        TrafficRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `(0, 1]` — safe to feed `ln()`.
    fn unit_open(&mut self) -> f64 {
        1.0 - self.unit()
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let cfg = TrafficConfig::default();
        assert_eq!(Schedule::generate(&cfg, 64), Schedule::generate(&cfg, 64));
    }

    #[test]
    fn different_seeds_diverge() {
        let a = Schedule::generate(&TrafficConfig::default(), 64);
        let b = Schedule::generate(
            &TrafficConfig {
                seed: 42,
                ..TrafficConfig::default()
            },
            64,
        );
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_monotone_and_rate_is_roughly_honored() {
        let cfg = TrafficConfig {
            seed: 7,
            requests: 4000,
            rate_rps: 1000.0,
            trigger_fraction: 0.3,
        };
        let schedule = Schedule::generate(&cfg, 10);
        for pair in schedule.specs().windows(2) {
            assert!(pair[0].arrival_us <= pair[1].arrival_us);
        }
        // 4000 requests at 1000 rps should take ~4s; allow wide slack.
        let span = schedule.span().as_secs_f64();
        assert!((2.5..6.0).contains(&span), "span {span}s");
    }

    #[test]
    fn trigger_fraction_is_roughly_honored() {
        let cfg = TrafficConfig {
            seed: 9,
            requests: 4000,
            rate_rps: 500.0,
            trigger_fraction: 0.35,
        };
        let schedule = Schedule::generate(&cfg, 32);
        let frac = schedule.triggered() as f64 / schedule.len() as f64;
        assert!((0.30..0.40).contains(&frac), "triggered fraction {frac}");
        for s in schedule.specs() {
            assert!(s.sample_idx < 32);
        }
    }

    #[test]
    fn zero_trigger_fraction_is_all_clean() {
        let cfg = TrafficConfig {
            trigger_fraction: 0.0,
            ..TrafficConfig::default()
        };
        assert_eq!(Schedule::generate(&cfg, 8).triggered(), 0);
    }
}
