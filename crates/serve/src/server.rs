//! The victim inference service.
//!
//! A [`VictimServer`] owns a deployed [`Network`] behind a mutex and a
//! pool of worker threads that drain the bounded [`RequestQueue`] in
//! batches: each worker pops up to `max_batch` requests, assembles one
//! `[batch, C, H, W]` tensor, runs the deployed engine (int8 by
//! default — the same bytes Rowhammer flips), and records a completion
//! per request. Data-level parallelism inside the forward pass still
//! goes through the `rhb-par` pool (the int8 GEMM row-split), so worker
//! count trades batching latency against queueing, not GEMM throughput.
//!
//! **Flip-visibility contract:** the served weights live in the same
//! [`Parameter`](rhb_nn::param::Parameter) storage an attacker mutates
//! through [`VictimServer::with_model`]. Every weight mutation bumps the
//! parameter's generation counter, which invalidates the persistent
//! packed int8 panels (PR 9), so the first batch scheduled after the
//! mutex is released computes with the flipped bytes — no restart, no
//! cache flush, no stale panel masking the flip.
//!
//! Telemetry: `serve/latency_s` (end-to-end SLO histogram),
//! `serve/queue_wait_s`, `serve/batch_size`, `serve/completed` and
//! `serve/batches` counters, plus the queue's submitted/shed/depth
//! family — all visible live on the rhb-obs plane.

use crate::queue::{Request, RequestQueue};
use rhb_nn::network::{argmax_classes, eval_mode, Network};
use rhb_nn::tensor::Tensor;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// SLO histogram boundaries for `serve/latency_s`, in seconds.
const LATENCY_BOUNDS: [f64; 12] = [
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
];

/// Server shape: worker pool, batching, and admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Most requests folded into one forward pass.
    pub max_batch: usize,
    /// Admission bound of the request queue.
    pub queue_capacity: usize,
    /// Input channels (batch tensors are `[n, channels, side, side]`).
    pub channels: usize,
    /// Input image side length.
    pub side: usize,
}

impl ServeConfig {
    /// A sane default for the tiny zoo victims: two workers, batches of
    /// up to 16, and a queue bounding ~4 batches of backlog.
    pub fn for_input(channels: usize, side: usize) -> ServeConfig {
        ServeConfig {
            workers: 2,
            max_batch: 16,
            queue_capacity: 64,
            channels,
            side,
        }
    }
}

/// One served request, as the completion log records it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionRecord {
    /// Request id (schedule position).
    pub seq: usize,
    /// Completion offset from server start, microseconds.
    pub done_us: u64,
    /// End-to-end latency (submission to response), seconds.
    pub latency_s: f64,
    /// Time spent queued before a worker picked the request up, seconds.
    pub queue_wait_s: f64,
    /// Predicted class (argmax of the served logits).
    pub predicted: usize,
    /// Ground-truth label of the underlying sample.
    pub true_label: usize,
    /// Whether the request carried the backdoor trigger.
    pub triggered: bool,
}

/// Everything a session leaves behind: the completion log (in
/// completion order) and the instant the serving clock started.
#[derive(Debug)]
pub struct ServeLog {
    /// Completions, ordered by `done_us`.
    pub completions: Vec<CompletionRecord>,
    /// The server's epoch: all `done_us` offsets are relative to this.
    pub started: Instant,
}

/// The victim inference service: bounded queue, worker pool, shared
/// mutable model.
pub struct VictimServer {
    queue: Arc<RequestQueue>,
    model: Arc<Mutex<Box<dyn Network>>>,
    completions: Arc<Mutex<Vec<CompletionRecord>>>,
    workers: Vec<JoinHandle<()>>,
    started: Instant,
}

impl VictimServer {
    /// Starts the worker pool over a deployed model.
    ///
    /// # Panics
    ///
    /// Panics when `config.workers == 0`.
    pub fn start(model: Box<dyn Network>, config: ServeConfig) -> VictimServer {
        assert!(config.workers > 0, "server needs at least one worker");
        rhb_telemetry::register_histogram("serve/latency_s", &LATENCY_BOUNDS);
        let queue = Arc::new(RequestQueue::new(config.queue_capacity));
        let model = Arc::new(Mutex::new(model));
        let completions = Arc::new(Mutex::new(Vec::new()));
        let started = Instant::now();
        let workers = (0..config.workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let model = Arc::clone(&model);
                let completions = Arc::clone(&completions);
                std::thread::Builder::new()
                    .name(format!("rhb-serve-{i}"))
                    .spawn(move || worker_loop(&queue, &model, &completions, config, started))
                    .expect("spawn serve worker")
            })
            .collect();
        VictimServer {
            queue,
            model,
            completions,
            workers,
            started,
        }
    }

    /// The admission queue (producers submit here).
    pub fn queue(&self) -> Arc<RequestQueue> {
        Arc::clone(&self.queue)
    }

    /// The serving clock's epoch.
    pub fn started(&self) -> Instant {
        self.started
    }

    /// Builds and submits one request; sheds (returning `false`) when
    /// the queue is at capacity.
    pub fn submit(&self, seq: usize, input: Vec<f32>, true_label: usize, triggered: bool) -> bool {
        self.queue
            .submit(Request {
                seq,
                input,
                true_label,
                triggered,
                submitted: Instant::now(),
            })
            .is_ok()
    }

    /// Runs `f` with exclusive access to the served model — the hook the
    /// attack uses to flip weight bits mid-flight. The first batch
    /// scheduled after `f` returns sees the mutation (generation-counter
    /// packed-panel invalidation; see the module docs).
    pub fn with_model<R>(&self, f: impl FnOnce(&mut dyn Network) -> R) -> R {
        let mut guard = self.model.lock().unwrap_or_else(|e| e.into_inner());
        f(guard.as_mut())
    }

    /// Requests completed so far (the log keeps growing until shutdown).
    pub fn completed(&self) -> usize {
        self.completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Closes the queue, drains the backlog, joins every worker, and
    /// returns the completion log (sorted by completion time).
    pub fn shutdown(mut self) -> ServeLog {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        let mut completions =
            std::mem::take(&mut *self.completions.lock().unwrap_or_else(|e| e.into_inner()));
        completions.sort_by_key(|c| (c.done_us, c.seq));
        ServeLog {
            completions,
            started: self.started,
        }
    }
}

fn worker_loop(
    queue: &RequestQueue,
    model: &Mutex<Box<dyn Network>>,
    completions: &Mutex<Vec<CompletionRecord>>,
    config: ServeConfig,
    started: Instant,
) {
    let image_len = config.channels * config.side * config.side;
    loop {
        let batch = queue.pop_batch(config.max_batch);
        if batch.is_empty() {
            return; // closed and drained
        }
        let picked = Instant::now();
        let mut data = Vec::with_capacity(batch.len() * image_len);
        for req in &batch {
            debug_assert_eq!(req.input.len(), image_len, "payload shape mismatch");
            data.extend_from_slice(&req.input);
        }
        let input = Tensor::from_vec(
            data,
            &[batch.len(), config.channels, config.side, config.side],
        );
        let predictions = {
            let mut net = model.lock().unwrap_or_else(|e| e.into_inner());
            let mode = eval_mode(net.as_ref());
            let _span = rhb_telemetry::span!("serve/batch", size = batch.len());
            let logits = net.forward(&input, mode);
            argmax_classes(&logits)
        };
        let done = Instant::now();
        let done_us = done.duration_since(started).as_micros() as u64;
        rhb_telemetry::counter!("serve/batches", 1);
        rhb_telemetry::counter!("serve/completed", batch.len());
        rhb_telemetry::observe!("serve/batch_size", batch.len() as f64);
        let mut log = completions.lock().unwrap_or_else(|e| e.into_inner());
        for (req, &predicted) in batch.iter().zip(&predictions) {
            let latency_s = done.duration_since(req.submitted).as_secs_f64();
            let queue_wait_s = picked.duration_since(req.submitted).as_secs_f64();
            rhb_telemetry::observe!("serve/latency_s", latency_s);
            rhb_telemetry::observe!("serve/queue_wait_s", queue_wait_s);
            log.push(CompletionRecord {
                seq: req.seq,
                done_us,
                latency_s,
                queue_wait_s,
                predicted,
                true_label: req.true_label,
                triggered: req.triggered,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhb_nn::init::Rng;
    use rhb_nn::layer::{Layer, Mode, Sequential};
    use rhb_nn::linear::Linear;
    use rhb_nn::param::Parameter;

    /// A 1x2x2 image in, 3 classes out — small enough that every test
    /// is instant, deployed so the int8 engine serves it.
    struct TinyNet(Sequential);

    impl TinyNet {
        fn deployed(seed: u64) -> Box<dyn Network> {
            let mut rng = Rng::seed_from(seed);
            let mut seq = Sequential::new();
            seq.push(Box::new(Linear::new(4, 8, true, &mut rng)));
            seq.push(Box::new(rhb_nn::activation::Relu::new()));
            seq.push(Box::new(Linear::new(8, 3, true, &mut rng)));
            let mut net: Box<dyn Network> = Box::new(TinyNet(seq));
            net.deploy().expect("deploy tiny net");
            net
        }
    }

    impl Network for TinyNet {
        fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
            // Serving flattens [n, 1, 2, 2] into the MLP's [n, 4].
            let n = input.shape().dim(0);
            let flat = Tensor::from_vec(input.data().to_vec(), &[n, 4]);
            self.0.forward_mode(&flat, mode)
        }
        fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
            self.0.backward(grad_logits)
        }
        fn params(&self) -> Vec<&Parameter> {
            self.0.params()
        }
        fn params_mut(&mut self) -> Vec<&mut Parameter> {
            self.0.params_mut()
        }
        fn describe(&self) -> String {
            "tiny-serve-mlp".into()
        }
    }

    fn config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            max_batch: 4,
            queue_capacity: 32,
            channels: 1,
            side: 2,
        }
    }

    #[test]
    fn serves_submitted_requests_and_logs_completions() {
        let server = VictimServer::start(TinyNet::deployed(3), config());
        for seq in 0..10 {
            assert!(server.submit(seq, vec![0.25; 4], seq % 3, seq % 2 == 0));
        }
        let log = loop {
            if server.completed() == 10 {
                break server.shutdown();
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };
        assert_eq!(log.completions.len(), 10);
        let mut seqs: Vec<usize> = log.completions.iter().map(|c| c.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
        for c in &log.completions {
            assert!(c.predicted < 3);
            assert!(c.latency_s >= c.queue_wait_s);
            assert!(c.latency_s >= 0.0 && c.latency_s < 60.0);
        }
        // Identical payloads get identical predictions regardless of
        // which worker served them.
        let first = log.completions[0].predicted;
        assert!(log.completions.iter().all(|c| c.predicted == first));
    }

    #[test]
    fn shutdown_drains_the_backlog_before_joining() {
        let server = VictimServer::start(TinyNet::deployed(4), config());
        let mut admitted = 0;
        for seq in 0..20 {
            if server.submit(seq, vec![0.1; 4], 0, false) {
                admitted += 1;
            }
        }
        let log = server.shutdown();
        assert_eq!(
            log.completions.len(),
            admitted,
            "every admitted request is answered before shutdown"
        );
    }

    #[test]
    fn weight_mutation_mid_serving_changes_predictions_without_restart() {
        // The PR 9 contract end to end at the serving layer: flip enough
        // of the deployed weight bytes through with_model and the *same
        // server* must start predicting differently — a stale packed
        // panel would keep the old logits.
        let server = VictimServer::start(TinyNet::deployed(5), config());
        let probe = vec![0.9, -0.6, 0.7, 0.2];
        server.submit(0, probe.clone(), 0, false);
        while server.completed() < 1 {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        // Sabotage the head: zero the final linear weights and point the
        // bias at a class the clean model does not predict, so the new
        // argmax is fully determined by the injected bytes.
        let sabotage_target = server.with_model(|net| {
            let input = Tensor::from_vec(probe.clone(), &[1, 1, 2, 2]);
            let before = rhb_nn::network::classify_batch(net, &input)[0];
            let target = (before + 1) % 3;
            let mut images = net.quantized_params();
            let n = images.len();
            for s in images[n - 2].values_mut() {
                *s = 0; // head weights
            }
            for (i, s) in images[n - 1].values_mut().iter_mut().enumerate() {
                *s = if i == target { 127 } else { -127 }; // head bias
            }
            net.load_quantized(&images);
            target
        });
        server.submit(1, probe.clone(), 0, false);
        let log = server.shutdown();
        assert_eq!(log.completions.len(), 2);
        let by_seq = |seq: usize| log.completions.iter().find(|c| c.seq == seq).unwrap();
        assert_ne!(
            by_seq(0).predicted,
            sabotage_target,
            "sabotage target is fresh"
        );
        assert_eq!(
            by_seq(1).predicted,
            sabotage_target,
            "injected head bytes must steer the served argmax in-flight"
        );
    }
}
