//! Post-hoc trajectory analysis of a serving session.
//!
//! Folds the completion log into fixed-width time windows and derives
//! the quantities the paper cannot measure offline: the per-window
//! clean-accuracy and attack-success-rate trajectories, the instant the
//! backdoor first *activates* on live traffic (first triggered request
//! funneled into the target class after the flip window opens), the
//! first window where ASR crosses a threshold, and the tail-latency
//! interference of hammering versus the pre-attack baseline.

use crate::server::CompletionRecord;

/// Aggregates of one fixed-width trajectory window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowStat {
    /// Window start offset from server start, microseconds.
    pub start_us: u64,
    /// Window end offset (exclusive), microseconds.
    pub end_us: u64,
    /// Clean requests completed in the window.
    pub clean_total: u64,
    /// Clean requests answered with the true label.
    pub clean_correct: u64,
    /// Triggered requests (true label ≠ target) completed in the window.
    pub triggered_total: u64,
    /// Triggered requests funneled into the target class.
    pub triggered_hits: u64,
}

impl WindowStat {
    /// Clean accuracy over the window; `None` when no clean traffic landed.
    pub fn clean_accuracy(&self) -> Option<f64> {
        (self.clean_total > 0).then(|| self.clean_correct as f64 / self.clean_total as f64)
    }

    /// Attack success rate over the window; `None` without triggered traffic.
    pub fn asr(&self) -> Option<f64> {
        (self.triggered_total > 0).then(|| self.triggered_hits as f64 / self.triggered_total as f64)
    }
}

/// Bins completions into windows of `window_us` microseconds, covering
/// `[0, last completion]`. A triggered request counts toward ASR only
/// when its true label differs from `target_label`, mirroring
/// `rhb_core::metrics::attack_success_rate` — a correct classification
/// of a target-class sample is not an attack success.
///
/// # Panics
///
/// Panics when `window_us == 0`.
pub fn windows(
    records: &[CompletionRecord],
    window_us: u64,
    target_label: usize,
) -> Vec<WindowStat> {
    assert!(window_us > 0, "trajectory windows need a positive width");
    let Some(last) = records.iter().map(|r| r.done_us).max() else {
        return Vec::new();
    };
    let n = (last / window_us + 1) as usize;
    let mut out: Vec<WindowStat> = (0..n)
        .map(|i| WindowStat {
            start_us: i as u64 * window_us,
            end_us: (i as u64 + 1) * window_us,
            ..WindowStat::default()
        })
        .collect();
    for r in records {
        let w = &mut out[(r.done_us / window_us) as usize];
        if r.triggered {
            if r.true_label != target_label {
                w.triggered_total += 1;
                if r.predicted == target_label {
                    w.triggered_hits += 1;
                }
            }
        } else {
            w.clean_total += 1;
            if r.predicted == r.true_label {
                w.clean_correct += 1;
            }
        }
    }
    out
}

/// Time-to-first-backdoor-activation: the completion offset of the first
/// triggered request (true label ≠ target) answered with the target
/// class at or after `after_us` (the flip-window start). `None` when the
/// backdoor never fires.
pub fn first_activation_us(
    records: &[CompletionRecord],
    target_label: usize,
    after_us: u64,
) -> Option<u64> {
    records
        .iter()
        .filter(|r| {
            r.done_us >= after_us
                && r.triggered
                && r.true_label != target_label
                && r.predicted == target_label
        })
        .map(|r| r.done_us)
        .min()
}

/// End offset of the first window whose ASR reaches `threshold`, looking
/// only at windows ending after `after_us`. `None` when no window crosses.
pub fn first_asr_cross_us(stats: &[WindowStat], threshold: f64, after_us: u64) -> Option<u64> {
    stats
        .iter()
        .filter(|w| w.end_us > after_us)
        .find(|w| w.asr().is_some_and(|asr| asr >= threshold))
        .map(|w| w.end_us)
}

/// The p-th percentile (`p` in `[0, 1]`) of the given latencies, by the
/// nearest-rank method over a `total_cmp` sort (NaN-safe: NaN sorts
/// last, so a corrupted sample can only inflate, never poison, the
/// tail). `None` on an empty set.
pub fn latency_percentile(latencies: &[f64], p: f64) -> Option<f64> {
    if latencies.is_empty() {
        return None;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1) - 1;
    Some(sorted[rank.min(sorted.len() - 1)])
}

/// Tail-latency interference: p99 end-to-end latency of requests
/// completing before `split_us` versus at-or-after it. Either side is
/// `None` when it saw no traffic.
pub fn tail_latency_split(
    records: &[CompletionRecord],
    split_us: u64,
) -> (Option<f64>, Option<f64>) {
    let (mut before, mut after) = (Vec::new(), Vec::new());
    for r in records {
        if r.done_us < split_us {
            before.push(r.latency_s);
        } else {
            after.push(r.latency_s);
        }
    }
    (
        latency_percentile(&before, 0.99),
        latency_percentile(&after, 0.99),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        done_us: u64,
        triggered: bool,
        true_label: usize,
        predicted: usize,
        latency_s: f64,
    ) -> CompletionRecord {
        CompletionRecord {
            seq: done_us as usize,
            done_us,
            latency_s,
            queue_wait_s: 0.0,
            predicted,
            true_label,
            triggered,
        }
    }

    const TARGET: usize = 2;

    #[test]
    fn windows_bin_clean_and_triggered_traffic_separately() {
        let records = vec![
            record(100, false, 1, 1, 0.01),            // window 0: clean correct
            record(900, false, 3, 0, 0.01),            // window 0: clean wrong
            record(1_100, true, 1, TARGET, 0.01),      // window 1: hit
            record(1_900, true, 4, 4, 0.01),           // window 1: miss
            record(2_500, true, TARGET, TARGET, 0.01), // target-class: excluded
        ];
        let stats = windows(&records, 1_000, TARGET);
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].clean_accuracy(), Some(0.5));
        assert_eq!(stats[0].asr(), None);
        assert_eq!(stats[1].asr(), Some(0.5));
        assert_eq!(
            stats[2].triggered_total, 0,
            "target-class samples never count toward ASR"
        );
        assert_eq!(stats[1].start_us, 1_000);
        assert_eq!(stats[1].end_us, 2_000);
    }

    #[test]
    fn activation_is_first_target_funnel_after_the_flip_start() {
        let records = vec![
            record(500, true, 1, TARGET, 0.01),   // before flips: ignored
            record(1_200, true, 0, 0, 0.01),      // miss
            record(1_400, true, 1, TARGET, 0.01), // first real activation
            record(1_600, true, 3, TARGET, 0.01),
        ];
        assert_eq!(first_activation_us(&records, TARGET, 1_000), Some(1_400));
        assert_eq!(first_activation_us(&records, TARGET, 2_000), None);
    }

    #[test]
    fn asr_cross_reports_the_first_qualifying_window() {
        let records: Vec<CompletionRecord> = (0..40)
            .map(|i| {
                let done = i * 100;
                // First 2 windows (0..2000us): all misses; later: all hits.
                let hit = done >= 2_000;
                record(done, true, 1, if hit { TARGET } else { 1 }, 0.01)
            })
            .collect();
        let stats = windows(&records, 1_000, TARGET);
        assert_eq!(first_asr_cross_us(&stats, 0.9, 0), Some(3_000));
        assert_eq!(first_asr_cross_us(&stats, 0.9, 3_500), Some(4_000));
    }

    #[test]
    fn latency_percentile_is_nan_safe_and_nearest_rank() {
        let lat = vec![0.010, 0.020, 0.030, 0.040];
        assert_eq!(latency_percentile(&lat, 0.5), Some(0.020));
        assert_eq!(latency_percentile(&lat, 0.99), Some(0.040));
        assert_eq!(latency_percentile(&[], 0.99), None);
        // NaN sorts last and the median stays finite.
        let with_nan = vec![0.010, f64::NAN, 0.020, 0.030];
        assert_eq!(latency_percentile(&with_nan, 0.5), Some(0.020));
    }

    #[test]
    fn tail_latency_split_partitions_on_the_flip_instant() {
        let records = vec![
            record(100, false, 0, 0, 0.010),
            record(200, false, 0, 0, 0.012),
            record(5_000, false, 0, 0, 0.050),
            record(6_000, false, 0, 0, 0.055),
        ];
        let (before, after) = tail_latency_split(&records, 1_000);
        assert_eq!(before, Some(0.012));
        assert_eq!(after, Some(0.055));
        let (none_before, all_after) = tail_latency_split(&records, 0);
        assert_eq!(none_before, None);
        assert_eq!(all_after, Some(0.055));
    }
}
