//! Bounded request queue with admission control.
//!
//! The queue is the service's only buffer: submissions beyond the
//! capacity bound are *shed* immediately (admission control) instead of
//! growing an unbounded backlog — under a hammering-induced slowdown the
//! victim degrades by rejecting load, never by queueing toward OOM or
//! unbounded latency. Workers drain in FIFO order, up to a batch at a
//! time, so the int8 engine amortizes its per-forward cost.
//!
//! Telemetry: `serve/submitted` / `serve/shed` counters,
//! `serve/queue_depth` gauge (sampled on every transition), and the
//! `serve/queue_wait_s` histogram is recorded by the worker that
//! dequeues (see `server.rs`).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One inference request as it sits in the queue.
#[derive(Debug, Clone)]
pub struct Request {
    /// Schedule position (request id).
    pub seq: usize,
    /// Flattened `[C*H*W]` image payload, trigger already stamped by the
    /// client when `triggered`.
    pub input: Vec<f32>,
    /// Ground-truth label of the underlying test sample.
    pub true_label: usize,
    /// Whether the client stamped the backdoor trigger.
    pub triggered: bool,
    /// Submission instant (starts the end-to-end latency clock).
    pub submitted: Instant,
}

struct QueueState {
    items: VecDeque<Request>,
    closed: bool,
}

/// Bounded MPMC queue: producers shed when full, consumers block for
/// work until the queue is closed *and* drained.
pub struct RequestQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

impl RequestQueue {
    /// Creates a queue admitting at most `capacity` waiting requests.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn new(capacity: usize) -> RequestQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        RequestQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current backlog depth.
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// Admits a request, or sheds it when the queue is full or closed.
    /// The shed request is handed back so the caller can account for it.
    ///
    /// # Errors
    ///
    /// Returns the request itself when shed.
    pub fn submit(&self, request: Request) -> Result<(), Request> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed || state.items.len() >= self.capacity {
            drop(state);
            rhb_telemetry::counter!("serve/shed", 1);
            return Err(request);
        }
        state.items.push_back(request);
        let depth = state.items.len();
        drop(state);
        rhb_telemetry::counter!("serve/submitted", 1);
        rhb_telemetry::gauge!("serve/queue_depth", depth);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until work is available, then pops up to `max_batch`
    /// requests in FIFO order. Returns an empty vector only when the
    /// queue has been closed and fully drained (worker shutdown signal).
    pub fn pop_batch(&self, max_batch: usize) -> Vec<Request> {
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !state.items.is_empty() {
                let n = state.items.len().min(max_batch);
                let batch: Vec<Request> = state.items.drain(..n).collect();
                let depth = state.items.len();
                drop(state);
                rhb_telemetry::gauge!("serve/queue_depth", depth);
                return batch;
            }
            if state.closed {
                return Vec::new();
            }
            state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: further submissions shed, and blocked workers
    /// wake to drain the remaining backlog and exit.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn request(seq: usize) -> Request {
        Request {
            seq,
            input: vec![0.0; 4],
            true_label: 0,
            triggered: false,
            submitted: Instant::now(),
        }
    }

    #[test]
    fn submissions_beyond_capacity_are_shed() {
        let q = RequestQueue::new(2);
        assert!(q.submit(request(0)).is_ok());
        assert!(q.submit(request(1)).is_ok());
        let shed = q.submit(request(2)).unwrap_err();
        assert_eq!(shed.seq, 2, "the shed request is handed back");
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn pop_batch_is_fifo_and_bounded() {
        let q = RequestQueue::new(8);
        for seq in 0..5 {
            q.submit(request(seq)).unwrap();
        }
        let batch = q.pop_batch(3);
        assert_eq!(batch.iter().map(|r| r.seq).collect::<Vec<_>>(), [0, 1, 2]);
        let batch = q.pop_batch(3);
        assert_eq!(batch.iter().map(|r| r.seq).collect::<Vec<_>>(), [3, 4]);
    }

    #[test]
    fn close_wakes_blocked_workers_and_drains_backlog() {
        let q = Arc::new(RequestQueue::new(4));
        q.submit(request(7)).unwrap();
        let worker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                loop {
                    let batch = q.pop_batch(16);
                    if batch.is_empty() {
                        return seen;
                    }
                    seen.extend(batch.into_iter().map(|r| r.seq));
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.submit(request(8)).unwrap();
        q.close();
        let seen = worker.join().unwrap();
        assert_eq!(seen, [7, 8], "backlog drains before shutdown");
        assert!(q.submit(request(9)).is_err(), "closed queue sheds");
    }
}
