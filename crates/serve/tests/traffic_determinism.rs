//! Traffic-generator determinism across thread counts, in the style of
//! the int8/gemm parallel-determinism suites: the same seed and config
//! must yield a bit-identical arrival schedule and clean/triggered
//! labeling at any `RHB_THREADS`, because generation is strictly serial
//! and never consults the `rhb-par` pool.

use rhb_serve::traffic::{Schedule, TrafficConfig};

#[test]
fn schedule_is_bit_identical_at_any_thread_count() {
    let cfg = TrafficConfig {
        seed: 1234,
        requests: 2_000,
        rate_rps: 800.0,
        trigger_fraction: 0.25,
    };
    rhb_par::set_global_threads(1);
    let baseline = Schedule::generate(&cfg, 128);
    for threads in [2, 4, 8] {
        rhb_par::set_global_threads(threads);
        let schedule = Schedule::generate(&cfg, 128);
        assert_eq!(
            schedule, baseline,
            "schedule diverged at RHB_THREADS={threads}"
        );
    }
    rhb_par::set_global_threads(rhb_par::default_threads());
    // The labeling alone is also pinned (not just arrival offsets): the
    // exact triggered set feeds the ASR trajectory, so drift here would
    // silently move activation timestamps between runs.
    let labels: Vec<bool> = baseline.specs().iter().map(|s| s.triggered).collect();
    let again: Vec<bool> = Schedule::generate(&cfg, 128)
        .specs()
        .iter()
        .map(|s| s.triggered)
        .collect();
    assert_eq!(labels, again);
}
