//! # rowhammer-backdoor
//!
//! A full-system Rust reproduction of *"Don't Knock! Rowhammer at the
//! Backdoor of DNN Models"* (DSN 2023): an end-to-end backdoor injection
//! attack on deployed, 8-bit-quantized DNN classifiers using Rowhammer as
//! the fault-injection vector.
//!
//! The workspace is re-exported here as one façade:
//!
//! * [`nn`] — the neural-network substrate (tensors, layers, quantization,
//!   page-structured weight files);
//! * [`models`] — victim architectures, synthetic datasets, and the
//!   deterministic pretrained-model zoo;
//! * [`dram`] — the DRAM/Rowhammer simulator (chip catalog, templating,
//!   n-sided hammering, side channels, page placement, online executor);
//! * [`attack`] — the paper's contribution: CFT+BR constrained
//!   optimization, the BadNet/FT/TBT baselines, metrics, probability
//!   analysis, and the offline+online pipeline;
//! * [`defense`] — the §VI countermeasures and their adaptive bypasses;
//! * [`telemetry`] — spans, counters, histograms, and event sinks
//!   instrumenting the whole pipeline (see the example below).
//!
//! # Quickstart
//!
//! ```no_run
//! use rowhammer_backdoor::attack::{AttackMethod, AttackPipeline};
//! use rowhammer_backdoor::models::zoo::{pretrained, Architecture, ZooConfig};
//! use rowhammer_backdoor::telemetry;
//! use std::sync::Arc;
//!
//! // Observe the run: progress spans on stderr, end-of-run report.
//! telemetry::install(Arc::new(telemetry::ProgressSink::default()));
//!
//! // Fetch a deterministic "pretrained" quantized victim.
//! let victim = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 7);
//! // Offline: learn the trigger and the bit flips; online: hammer them in.
//! let mut pipeline = AttackPipeline::new(victim, /*target label*/ 2, 7);
//! let offline = pipeline.run_offline(AttackMethod::CftBr);
//! let online = pipeline.run_online(&offline);
//! telemetry::progress!(
//!     "N_flip {} → TA {:.1}%  ASR {:.1}%  r_match {:.2}%",
//!     online.n_flip,
//!     online.test_accuracy * 100.0,
//!     online.attack_success_rate * 100.0,
//!     online.r_match
//! );
//! // Per-phase durations, counter totals, histogram percentiles.
//! eprint!("{}", telemetry::report().render());
//! telemetry::shutdown();
//! ```

pub use rhb_core as attack;
pub use rhb_defense as defense;
pub use rhb_dram as dram;
pub use rhb_models as models;
pub use rhb_nn as nn;
pub use rhb_telemetry as telemetry;
