//! Declarative sweep grids and the per-run specs they expand into.
//!
//! A [`CampaignSpec`] is the cartesian product the ROADMAP's campaign
//! orchestrator calls for: models × methods × chips × chaos rates ×
//! seeds. [`CampaignSpec::expand`] flattens it into [`RunSpec`]s with
//! stable, filename-safe run-ids — the identity the checkpoint journal
//! keys resume on, so expansion order and id derivation must never
//! depend on anything but the grid itself.

/// One axis-point of the sweep grid: a single attack run to execute.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Position in the expanded grid (stable across resumes, used for
    /// deterministic per-run behaviors such as sabotage injection).
    pub index: usize,
    /// Stable identity; the journal's resume key.
    pub run_id: String,
    /// Victim architecture name (e.g. `ResNet20`).
    pub model: String,
    /// Attack method name (e.g. `CFT+BR`).
    pub method: String,
    /// DRAM chip tag from Table I (e.g. `K1`).
    pub chip: String,
    /// Chaos fault-injection rate in `[0, 1]`.
    pub chaos_rate: f64,
    /// Base seed; per-attempt seeds derive from it deterministically.
    pub seed: u64,
}

/// The declarative sweep grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (journal header + report label).
    pub name: String,
    /// Victim architectures to sweep.
    pub models: Vec<String>,
    /// Attack methods to sweep.
    pub methods: Vec<String>,
    /// Chip tags to sweep.
    pub chips: Vec<String>,
    /// Chaos rates to sweep.
    pub chaos_rates: Vec<f64>,
    /// Base seeds to sweep.
    pub seeds: Vec<u64>,
}

impl CampaignSpec {
    /// A single-cell grid, for tests and smoke campaigns.
    pub fn single(name: &str, model: &str, method: &str, chip: &str, seed: u64) -> Self {
        CampaignSpec {
            name: name.to_string(),
            models: vec![model.to_string()],
            methods: vec![method.to_string()],
            chips: vec![chip.to_string()],
            chaos_rates: vec![0.0],
            seeds: vec![seed],
        }
    }

    /// Total grid size.
    pub fn len(&self) -> usize {
        self.models.len()
            * self.methods.len()
            * self.chips.len()
            * self.chaos_rates.len()
            * self.seeds.len()
    }

    /// Whether the grid is empty (any empty axis empties the product).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into run specs, slowest axis first (model,
    /// method, chip, rate, seed), with stable run-ids.
    pub fn expand(&self) -> Vec<RunSpec> {
        let mut out = Vec::with_capacity(self.len());
        for model in &self.models {
            for method in &self.methods {
                for chip in &self.chips {
                    for &rate in &self.chaos_rates {
                        for &seed in &self.seeds {
                            let index = out.len();
                            out.push(RunSpec {
                                index,
                                run_id: run_id(model, method, chip, rate, seed),
                                model: model.clone(),
                                method: method.clone(),
                                chip: chip.clone(),
                                chaos_rate: rate,
                                seed,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// Derives the stable, filename-safe run-id for one grid point. Chaos
/// rates are encoded in permille so distinct sweep rates (paper-scale
/// steps are 0.05) can never collide.
pub fn run_id(model: &str, method: &str, chip: &str, rate: f64, seed: u64) -> String {
    let raw = format!(
        "{}-{}-{}-c{:04}-s{}",
        model,
        method,
        chip,
        (rate * 1000.0).round() as u64,
        seed
    );
    sanitize(&raw)
}

/// Maps a label onto the `[A-Za-z0-9._-]` filename-safe alphabet.
pub fn sanitize(raw: &str) -> String {
    raw.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> CampaignSpec {
        CampaignSpec {
            name: "unit".into(),
            models: vec!["ResNet20".into()],
            methods: vec!["CFT+BR".into(), "FT".into()],
            chips: vec!["K1".into()],
            chaos_rates: vec![0.0, 0.2],
            seeds: vec![41, 42],
        }
    }

    #[test]
    fn expand_covers_the_product_with_unique_stable_ids() {
        let spec = grid();
        let runs = spec.expand();
        assert_eq!(runs.len(), spec.len());
        assert_eq!(runs.len(), 8);
        let mut ids: Vec<&str> = runs.iter().map(|r| r.run_id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8, "run ids must be unique");
        // Expansion is deterministic: same grid, same order, same ids.
        let again = spec.expand();
        assert_eq!(runs, again);
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.index, i);
        }
    }

    #[test]
    fn run_ids_are_filename_safe_and_rate_distinct() {
        let a = run_id("ResNet20", "CFT+BR", "K1", 0.2, 41);
        let b = run_id("ResNet20", "CFT+BR", "K1", 0.25, 41);
        assert_ne!(a, b, "close rates must not collide");
        assert_eq!(a, "ResNet20-CFT_BR-K1-c0200-s41");
        for id in [&a, &b] {
            assert!(id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')));
        }
    }

    #[test]
    fn empty_axis_empties_the_grid() {
        let mut spec = grid();
        spec.seeds.clear();
        assert!(spec.is_empty());
        assert!(spec.expand().is_empty());
    }
}
