//! The campaign supervisor: sharded execution with per-run fault
//! domains, deadline watchdogs, retry budgets, and quarantine.
//!
//! Each worker lane claims pending runs off a shared atomic cursor and
//! drives one run at a time through its attempt loop. Every attempt
//! executes on a **dedicated thread** under `catch_unwind` with a
//! deadline-armed [`CancelToken`]; the lane waits on a channel with
//! `recv_timeout`, so a hung attempt (one that never reaches a
//! cancellation checkpoint) is abandoned at the deadline and the lane
//! is reclaimed immediately — the watchdog guarantee is wall-clock, not
//! cooperative. Failed attempts retry with exponential backoff and
//! deterministic per-attempt seeds; `max_attempts` consecutive recorded
//! failures quarantine the configuration instead of wedging the queue.
//!
//! All journal writes happen on lane threads (never on attempt
//! threads), so an abandoned runaway can corrupt nothing but its own
//! sandboxed result, which nobody is listening for anymore.

use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use rhb_par::CancelToken;

use crate::journal::{Journal, JournalEvent, JournalState};
use crate::spec::{CampaignSpec, RunSpec};

/// Classification recorded for a run whose *pipeline* verdict was a
/// clean failure (attack ran, trigger did not take).
pub const CLASS_FAILED: &str = "failed";
/// Classification for a run retired after exhausting its retry budget
/// on panics/errors.
pub const CLASS_QUARANTINED: &str = "quarantined";
/// Classification for a run retired after exhausting its retry budget
/// on deadline overruns.
pub const CLASS_TIMED_OUT: &str = "timed_out";

/// Failure reason strings recorded in `fail` journal lines.
pub const REASON_PANIC: &str = "panic";
pub const REASON_TIMEOUT: &str = "timeout";
pub const REASON_ERROR: &str = "error";

/// Supervisor tuning knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Concurrent worker lanes.
    pub workers: usize,
    /// Per-attempt wall-clock deadline.
    pub run_timeout: Duration,
    /// Consecutive failures before a config is quarantined.
    pub max_attempts: u32,
    /// First retry backoff, milliseconds.
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_cap_ms: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(2);
        SupervisorConfig {
            workers,
            run_timeout: Duration::from_secs(120),
            max_attempts: 3,
            backoff_base_ms: 250,
            backoff_cap_ms: 4_000,
        }
    }
}

/// One attempt's identity, handed to the run closure. The seed derives
/// deterministically from the spec seed and the attempt number, so a
/// resumed campaign replays the exact attempt schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// 1-based attempt number for this run (carries over across resume).
    pub number: u32,
    /// Deterministic per-attempt seed.
    pub seed: u64,
}

/// What a successful run closure returns.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Pipeline classification name (`full` / `degraded` / `failed`).
    pub class: String,
    /// Attack success rate.
    pub asr: f64,
    /// Modeled §VII attack time, milliseconds.
    pub attack_time_ms: u64,
}

/// The run closure the caller supplies: executes one attempt of one
/// grid point. `Err` is an orderly failure (retried like a panic);
/// panics are caught; ignoring the token only costs cooperative
/// cancellation — the watchdog reclaims the lane regardless.
pub type RunFn =
    Arc<dyn Fn(&RunSpec, &Attempt, &CancelToken) -> Result<RunResult, String> + Send + Sync>;

/// What `run_campaign` hands back after the fleet drains.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Final journal state, re-replayed from disk after the run (so the
    /// outcome is exactly what a resume would see).
    pub state: JournalState,
    /// Runs skipped because the journal already settled them.
    pub resumed_skips: usize,
    /// Attempts executed by this process.
    pub attempts_run: usize,
    /// Runs quarantined by this process.
    pub quarantined_now: usize,
    /// Wall-clock duration of this process's share, milliseconds.
    pub wall_ms: u64,
}

impl CampaignOutcome {
    /// Whether every grid point is settled (completed or quarantined).
    pub fn is_complete(&self, spec: &CampaignSpec) -> bool {
        self.state.completed.len() + self.state.quarantined.len() >= spec.len()
    }
}

/// splitmix64 — the standard 64-bit mixer; full-avalanche, so adjacent
/// attempt numbers produce unrelated seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic per-attempt seed: same (base seed, attempt) always
/// yields the same seed, on first run and on resume.
pub fn attempt_seed(base: u64, attempt: u32) -> u64 {
    splitmix64(base ^ splitmix64(u64::from(attempt)))
}

/// Exponential backoff before retry `attempt` (the attempt about to
/// run): `base << (attempt - 2)` capped, zero before the first attempt.
pub fn backoff_ms(config: &SupervisorConfig, attempt: u32) -> u64 {
    if attempt <= 1 {
        return 0;
    }
    let shift = (attempt - 2).min(16);
    config
        .backoff_base_ms
        .saturating_shl(shift)
        .min(config.backoff_cap_ms)
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

/// Shared progress the heartbeat thread exports as gauges.
struct Heartbeat {
    total: usize,
    settled: AtomicUsize,
    in_flight: AtomicUsize,
    /// Milliseconds since `start` of the last settle event.
    last_progress_ms: AtomicU64,
    done: AtomicBool,
    start: Instant,
}

impl Heartbeat {
    fn new(total: usize, already_settled: usize) -> Self {
        Heartbeat {
            total,
            settled: AtomicUsize::new(already_settled),
            in_flight: AtomicUsize::new(0),
            last_progress_ms: AtomicU64::new(0),
            done: AtomicBool::new(false),
            start: Instant::now(),
        }
    }

    fn mark_progress(&self) {
        self.settled.fetch_add(1, Ordering::Relaxed);
        self.last_progress_ms
            .store(self.start.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    fn publish(&self) {
        let settled = self.settled.load(Ordering::Relaxed);
        let progress = if self.total == 0 {
            1.0
        } else {
            settled as f64 / self.total as f64
        };
        let last = self.last_progress_ms.load(Ordering::Relaxed);
        let stall_s =
            (self.start.elapsed().as_millis() as u64).saturating_sub(last) as f64 / 1000.0;
        rhb_telemetry::set_gauge("campaign/total_runs", self.total as f64);
        rhb_telemetry::set_gauge(
            "campaign/in_flight",
            self.in_flight.load(Ordering::Relaxed) as f64,
        );
        rhb_telemetry::set_gauge("campaign/progress", progress);
        rhb_telemetry::set_gauge("campaign/stall_s", stall_s);
    }
}

/// The outcome of one sandboxed attempt.
enum AttemptVerdict {
    Ok(RunResult),
    Err(String),
    Panic(String),
    Timeout,
}

/// Runs one attempt on a dedicated thread under `catch_unwind`, waiting
/// at most `timeout`. On deadline the token is cancelled (cooperative
/// unwinding for checkpoint-aware runs) and the thread abandoned — the
/// lane returns immediately either way.
fn run_attempt(run: &RunFn, spec: &RunSpec, attempt: Attempt, timeout: Duration) -> AttemptVerdict {
    let token = CancelToken::with_deadline(timeout);
    let (tx, rx) = mpsc::channel::<Result<Result<RunResult, String>, String>>();
    let thread_run = Arc::clone(run);
    let thread_spec = spec.clone();
    let thread_token = token.clone();
    let builder = std::thread::Builder::new()
        .name(format!("rhb-attempt-{}", spec.run_id))
        .stack_size(8 * 1024 * 1024);
    let spawned = builder.spawn(move || {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            thread_run(&thread_spec, &attempt, &thread_token)
        }))
        .map_err(|payload| panic_detail(payload.as_ref()));
        // The receiver may be gone (watchdog fired): ignore send errors.
        let _ = tx.send(outcome);
    });
    if spawned.is_err() {
        return AttemptVerdict::Err("failed to spawn attempt thread".to_string());
    }
    match rx.recv_timeout(timeout) {
        Ok(Ok(Ok(result))) => AttemptVerdict::Ok(result),
        Ok(Ok(Err(msg))) => AttemptVerdict::Err(msg),
        Ok(Err(panic_msg)) => AttemptVerdict::Panic(panic_msg),
        Err(_) => {
            // Deadline. Cancel cooperatively and abandon the thread; the
            // lane moves on now. join() would re-block on the runaway.
            token.cancel();
            AttemptVerdict::Timeout
        }
    }
}

fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Executes (or resumes) a campaign: expands the grid, replays the
/// checkpoint journal under `dir`, skips settled runs, and drives the
/// rest through worker lanes until every run is completed or
/// quarantined. Returns the final state re-replayed from disk.
///
/// # Errors
///
/// Propagates journal I/O errors. Run failures never error — they are
/// retried and ultimately quarantined.
pub fn run_campaign(
    spec: &CampaignSpec,
    dir: &Path,
    config: &SupervisorConfig,
    run: RunFn,
) -> io::Result<CampaignOutcome> {
    let start = Instant::now();
    let runs = spec.expand();
    let (journal, state) = Journal::open(dir)?;
    let journal = Arc::new(Mutex::new(journal));
    append(
        &journal,
        &JournalEvent::Campaign {
            name: spec.name.clone(),
            total_runs: runs.len(),
        },
    )?;

    let pending: Vec<RunSpec> = runs
        .iter()
        .filter(|r| !state.is_settled(&r.run_id))
        .cloned()
        .collect();
    let resumed_skips = runs.len() - pending.len();
    if resumed_skips > 0 {
        rhb_telemetry::add_counter("campaign/resumed_skips", resumed_skips as u64);
    }

    let heartbeat = Arc::new(Heartbeat::new(runs.len(), runs.len() - pending.len()));
    heartbeat.publish();
    let beat = Arc::clone(&heartbeat);
    let beat_thread = std::thread::spawn(move || {
        while !beat.done.load(Ordering::Acquire) {
            beat.publish();
            std::thread::sleep(Duration::from_millis(100));
        }
        beat.publish();
    });

    let cursor = Arc::new(AtomicUsize::new(0));
    let attempts_run = Arc::new(AtomicUsize::new(0));
    let quarantined_now = Arc::new(AtomicUsize::new(0));
    let pending = Arc::new(pending);
    let state = Arc::new(state);
    let io_failure: Arc<Mutex<Option<io::Error>>> = Arc::new(Mutex::new(None));

    let lanes = config.workers.max(1).min(pending.len().max(1));
    let mut handles = Vec::with_capacity(lanes);
    for lane in 0..lanes {
        let pending = Arc::clone(&pending);
        let cursor = Arc::clone(&cursor);
        let journal = Arc::clone(&journal);
        let state = Arc::clone(&state);
        let run = Arc::clone(&run);
        let config = config.clone();
        let heartbeat = Arc::clone(&heartbeat);
        let attempts_run = Arc::clone(&attempts_run);
        let quarantined_now = Arc::clone(&quarantined_now);
        let io_failure = Arc::clone(&io_failure);
        let builder = std::thread::Builder::new().name(format!("rhb-campaign-lane-{lane}"));
        handles.push(
            builder
                .spawn(move || {
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(run_spec) = pending.get(i) else {
                            break;
                        };
                        heartbeat.in_flight.fetch_add(1, Ordering::Relaxed);
                        let outcome =
                            drive_run(run_spec, &state, &config, &run, &journal, &attempts_run);
                        heartbeat.in_flight.fetch_sub(1, Ordering::Relaxed);
                        match outcome {
                            Ok(settled_as_quarantine) => {
                                if settled_as_quarantine {
                                    quarantined_now.fetch_add(1, Ordering::Relaxed);
                                }
                                heartbeat.mark_progress();
                            }
                            Err(err) => {
                                // Journal I/O failure: stop claiming work — a
                                // campaign that cannot checkpoint must not run
                                // ahead of its own crash safety.
                                io_failure.lock().unwrap().get_or_insert(err);
                                break;
                            }
                        }
                    }
                })
                .expect("spawn campaign lane"),
        );
    }
    for handle in handles {
        let _ = handle.join();
    }
    heartbeat.done.store(true, Ordering::Release);
    let _ = beat_thread.join();

    if let Some(err) = io_failure.lock().unwrap().take() {
        return Err(err);
    }

    // Re-replay from disk: the outcome is exactly what a resume would
    // reconstruct, so any divergence between in-memory bookkeeping and
    // the journal surfaces here instead of in the next crash.
    let final_state = Journal::replay(dir)?;
    Ok(CampaignOutcome {
        state: final_state,
        resumed_skips,
        attempts_run: attempts_run.load(Ordering::Relaxed),
        quarantined_now: quarantined_now.load(Ordering::Relaxed),
        wall_ms: start.elapsed().as_millis() as u64,
    })
}

fn append(journal: &Arc<Mutex<Journal>>, event: &JournalEvent) -> io::Result<()> {
    journal.lock().unwrap().append(event)
}

/// Drives one run to a settled state (done or quarantined). Returns
/// `Ok(true)` when the run was quarantined by this call.
fn drive_run(
    spec: &RunSpec,
    resume: &JournalState,
    config: &SupervisorConfig,
    run: &RunFn,
    journal: &Arc<Mutex<Journal>>,
    attempts_run: &AtomicUsize,
) -> io::Result<bool> {
    // Carry attempt history across resume: recorded failures count
    // toward the quarantine budget, and a crashed in-flight attempt
    // advances the attempt number so its seed is never replayed.
    let prior_failures = resume.failures.get(&spec.run_id).copied().unwrap_or(0);
    let prior_started = resume
        .attempts_started
        .get(&spec.run_id)
        .copied()
        .unwrap_or(0);
    let mut failures = prior_failures;
    let mut attempt_no = prior_failures.max(prior_started);
    let mut last_reason = resume
        .last_fail_reason
        .get(&spec.run_id)
        .cloned()
        .unwrap_or_else(|| REASON_ERROR.to_string());

    while failures < config.max_attempts {
        attempt_no += 1;
        let attempt = Attempt {
            number: attempt_no,
            seed: attempt_seed(spec.seed, attempt_no),
        };
        let pause_ms = backoff_ms(config, attempt_no);
        if pause_ms > 0 {
            rhb_telemetry::add_counter("campaign/backoff_ms", pause_ms);
            rhb_telemetry::add_counter("campaign/retries", 1);
            std::thread::sleep(Duration::from_millis(pause_ms));
        }
        append(
            journal,
            &JournalEvent::Attempt {
                run_id: spec.run_id.clone(),
                attempt: attempt.number,
                seed: attempt.seed,
            },
        )?;
        rhb_telemetry::add_counter("campaign/attempts", 1);
        attempts_run.fetch_add(1, Ordering::Relaxed);

        match run_attempt(run, spec, attempt, config.run_timeout) {
            AttemptVerdict::Ok(result) => {
                append(
                    journal,
                    &JournalEvent::Done {
                        run_id: spec.run_id.clone(),
                        attempt: attempt.number,
                        class: result.class,
                        asr: result.asr,
                        attack_time_ms: result.attack_time_ms,
                        backoff_ms: pause_ms,
                    },
                )?;
                rhb_telemetry::add_counter("campaign/completed", 1);
                return Ok(false);
            }
            AttemptVerdict::Err(detail) => {
                failures += 1;
                last_reason = REASON_ERROR.to_string();
                append(
                    journal,
                    &JournalEvent::Fail {
                        run_id: spec.run_id.clone(),
                        attempt: attempt.number,
                        reason: REASON_ERROR.to_string(),
                        detail,
                        backoff_ms: pause_ms,
                    },
                )?;
            }
            AttemptVerdict::Panic(detail) => {
                failures += 1;
                last_reason = REASON_PANIC.to_string();
                rhb_telemetry::add_counter("campaign/panics", 1);
                append(
                    journal,
                    &JournalEvent::Fail {
                        run_id: spec.run_id.clone(),
                        attempt: attempt.number,
                        reason: REASON_PANIC.to_string(),
                        detail,
                        backoff_ms: pause_ms,
                    },
                )?;
            }
            AttemptVerdict::Timeout => {
                failures += 1;
                last_reason = REASON_TIMEOUT.to_string();
                rhb_telemetry::add_counter("campaign/timeouts", 1);
                append(
                    journal,
                    &JournalEvent::Fail {
                        run_id: spec.run_id.clone(),
                        attempt: attempt.number,
                        reason: REASON_TIMEOUT.to_string(),
                        detail: format!("exceeded {} ms deadline", config.run_timeout.as_millis()),
                        backoff_ms: pause_ms,
                    },
                )?;
            }
        }
    }
    append(
        journal,
        &JournalEvent::Quarantine {
            run_id: spec.run_id.clone(),
            attempts: attempt_no,
            reason: last_reason,
        },
    )?;
    rhb_telemetry::add_counter("campaign/quarantined", 1);
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU32;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rhb-supervisor-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fast_config() -> SupervisorConfig {
        SupervisorConfig {
            workers: 2,
            run_timeout: Duration::from_millis(400),
            max_attempts: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
        }
    }

    fn ok_result() -> RunResult {
        RunResult {
            class: "full".into(),
            asr: 0.99,
            attack_time_ms: 10,
        }
    }

    #[test]
    fn attempt_seeds_are_deterministic_and_distinct() {
        assert_eq!(attempt_seed(42, 1), attempt_seed(42, 1));
        assert_ne!(attempt_seed(42, 1), attempt_seed(42, 2));
        assert_ne!(attempt_seed(42, 1), attempt_seed(43, 1));
        // Same schedule on "resume": recompute from scratch.
        let schedule: Vec<u64> = (1..=5).map(|a| attempt_seed(7, a)).collect();
        let replayed: Vec<u64> = (1..=5).map(|a| attempt_seed(7, a)).collect();
        assert_eq!(schedule, replayed);
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let config = SupervisorConfig {
            backoff_base_ms: 100,
            backoff_cap_ms: 450,
            ..fast_config()
        };
        assert_eq!(backoff_ms(&config, 1), 0, "first attempt is free");
        assert_eq!(backoff_ms(&config, 2), 100);
        assert_eq!(backoff_ms(&config, 3), 200);
        assert_eq!(backoff_ms(&config, 4), 400);
        assert_eq!(backoff_ms(&config, 5), 450, "capped");
        assert_eq!(backoff_ms(&config, 60), 450, "huge attempts stay capped");
    }

    #[test]
    fn panicking_run_is_retried_then_succeeds() {
        let dir = temp_dir("retry");
        let spec = CampaignSpec::single("retry", "ResNet20", "CFT+BR", "K1", 41);
        let calls = Arc::new(AtomicU32::new(0));
        let calls_in = Arc::clone(&calls);
        let run: RunFn = Arc::new(move |_spec, attempt, _token| {
            calls_in.fetch_add(1, Ordering::SeqCst);
            if attempt.number == 1 {
                panic!("sabotage on first attempt");
            }
            Ok(ok_result())
        });
        let outcome = run_campaign(&spec, &dir, &fast_config(), run).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(outcome.state.completed.len(), 1);
        let record = outcome.state.completed.values().next().unwrap();
        assert_eq!(record.attempt, 2, "completed on the retry");
        assert!(record.backoff_ms > 0, "retry was charged backoff");
        assert_eq!(outcome.state.retried_runs(), 1);
        assert!(outcome.is_complete(&spec));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poison_config_is_quarantined_without_wedging_the_queue() {
        let dir = temp_dir("quarantine");
        let spec = CampaignSpec {
            name: "q".into(),
            models: vec!["ResNet20".into()],
            methods: vec!["CFT+BR".into()],
            chips: vec!["K1".into()],
            chaos_rates: vec![0.0],
            seeds: vec![1, 2, 3],
        };
        let run: RunFn = Arc::new(|spec, _attempt, _token| {
            if spec.seed == 2 {
                panic!("always fails");
            }
            Ok(ok_result())
        });
        let outcome = run_campaign(&spec, &dir, &fast_config(), run).unwrap();
        assert_eq!(outcome.state.completed.len(), 2);
        assert_eq!(outcome.state.quarantined.len(), 1);
        assert_eq!(outcome.quarantined_now, 1);
        assert!(outcome.is_complete(&spec));
        // 2 clean + 3 attempts burned on the poison config.
        assert_eq!(outcome.attempts_run, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hung_run_trips_the_watchdog_and_is_reclaimed() {
        let dir = temp_dir("watchdog");
        let spec = CampaignSpec::single("w", "ResNet20", "CFT+BR", "K1", 9);
        let run: RunFn = Arc::new(|_spec, attempt, _token| {
            if attempt.number == 1 {
                // Ignores the cancel token entirely: only the wall-clock
                // watchdog can reclaim this lane.
                std::thread::sleep(Duration::from_secs(30));
            }
            Ok(ok_result())
        });
        let config = SupervisorConfig {
            run_timeout: Duration::from_millis(50),
            ..fast_config()
        };
        let started = Instant::now();
        let outcome = run_campaign(&spec, &dir, &config, run).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "watchdog must reclaim the lane long before the 30s sleep"
        );
        assert_eq!(outcome.state.completed.len(), 1);
        let record = outcome.state.completed.values().next().unwrap();
        assert_eq!(record.attempt, 2, "first attempt timed out");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cooperative_cancellation_is_signalled_at_the_deadline() {
        let dir = temp_dir("coop");
        let spec = CampaignSpec::single("c", "ResNet20", "CFT+BR", "K1", 5);
        let observed_cancel = Arc::new(AtomicBool::new(false));
        let observed_in = Arc::clone(&observed_cancel);
        let run: RunFn = Arc::new(move |_spec, attempt, token| {
            if attempt.number == 1 {
                let deadline = Instant::now() + Duration::from_secs(5);
                while Instant::now() < deadline {
                    if token.is_cancelled() {
                        observed_in.store(true, Ordering::SeqCst);
                        return Err("cancelled".into());
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            Ok(ok_result())
        });
        let config = SupervisorConfig {
            run_timeout: Duration::from_millis(60),
            ..fast_config()
        };
        let outcome = run_campaign(&spec, &dir, &config, run).unwrap();
        assert_eq!(outcome.state.completed.len(), 1);
        assert!(
            observed_cancel.load(Ordering::SeqCst),
            "deadline token must flip for checkpoint-aware runs"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_skips_settled_runs_and_never_re_executes_them() {
        let dir = temp_dir("resume-skip");
        let spec = CampaignSpec {
            name: "r".into(),
            models: vec!["ResNet20".into()],
            methods: vec!["CFT+BR".into()],
            chips: vec!["K1".into()],
            chaos_rates: vec![0.0],
            seeds: vec![1, 2],
        };
        // First pass: complete everything.
        let run: RunFn = Arc::new(|_s, _a, _t| Ok(ok_result()));
        let first = run_campaign(&spec, &dir, &fast_config(), run).unwrap();
        assert_eq!(first.state.completed.len(), 2);
        // Second pass: the closure must never fire.
        let run: RunFn = Arc::new(|spec, _a, _t| {
            panic!("re-executed settled run {}", spec.run_id);
        });
        let second = run_campaign(&spec, &dir, &fast_config(), run).unwrap();
        assert_eq!(second.resumed_skips, 2);
        assert_eq!(second.attempts_run, 0);
        assert_eq!(second.state.completed.len(), 2);
        assert_eq!(second.state.duplicate_done, 0, "no run recorded twice");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
