//! Crash-safe checkpoint journal: the campaign's single source of truth.
//!
//! Append-only JSONL over rotating segment files
//! (`journal-00000000.jsonl`, …) under the campaign directory, one
//! event per line, every line flushed as it is written — the same
//! discipline as the flight recorder's timeline, minus the ring-buffer
//! pruning (a checkpoint journal must never forget). A crash therefore
//! loses at most the line in flight, and [`Journal::replay`] parses
//! leniently: a truncated tail or corrupt line is skipped and counted,
//! never fatal.
//!
//! Replay semantics (what resume is built on):
//!
//! * the **first** `done` line for a run-id wins; later duplicates are
//!   counted but change nothing — re-executing a run can never double
//!   its results;
//! * `fail` lines accumulate a consecutive-failure count per run-id,
//!   reset by nothing (a `done` removes the run from the pending set
//!   entirely);
//! * a `quarantine` line permanently retires the run-id;
//! * an `attempt` line without a matching `done`/`fail` after it is an
//!   in-flight attempt the crash interrupted — the run stays pending
//!   and is re-executed on resume.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Schema tag written in every campaign header line.
pub const SCHEMA: &str = "rhb-campaign-journal/v1";
/// Lines per journal segment before rotation.
pub const SEGMENT_LINES: usize = 512;

/// One journal event. Field layout is flat (strings and numbers only)
/// so the lenient line parser stays trivial.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// Process-start header: campaign identity and grid size.
    Campaign { name: String, total_runs: usize },
    /// An attempt started (in-flight marker).
    Attempt {
        run_id: String,
        attempt: u32,
        seed: u64,
    },
    /// An attempt finished successfully.
    Done {
        run_id: String,
        attempt: u32,
        class: String,
        asr: f64,
        attack_time_ms: u64,
        backoff_ms: u64,
    },
    /// An attempt failed (panic, timeout, or error verdict).
    Fail {
        run_id: String,
        attempt: u32,
        reason: String,
        detail: String,
        backoff_ms: u64,
    },
    /// The run exhausted its retry budget and is retired.
    Quarantine {
        run_id: String,
        attempts: u32,
        reason: String,
    },
}

impl JournalEvent {
    /// Renders the event as a single JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::with_capacity(128);
        match self {
            JournalEvent::Campaign { name, total_runs } => {
                out.push_str("{\"kind\": \"campaign\", \"schema\": ");
                write_json_str(SCHEMA, &mut out);
                out.push_str(", \"name\": ");
                write_json_str(name, &mut out);
                let _ = write!(out, ", \"total_runs\": {total_runs}}}");
            }
            JournalEvent::Attempt {
                run_id,
                attempt,
                seed,
            } => {
                out.push_str("{\"kind\": \"attempt\", \"run_id\": ");
                write_json_str(run_id, &mut out);
                let _ = write!(out, ", \"attempt\": {attempt}, \"seed\": {seed}}}");
            }
            JournalEvent::Done {
                run_id,
                attempt,
                class,
                asr,
                attack_time_ms,
                backoff_ms,
            } => {
                out.push_str("{\"kind\": \"done\", \"run_id\": ");
                write_json_str(run_id, &mut out);
                let _ = write!(out, ", \"attempt\": {attempt}, \"class\": ");
                write_json_str(class, &mut out);
                let asr = if asr.is_finite() { *asr } else { 0.0 };
                let _ = write!(
                    out,
                    ", \"asr\": {asr}, \"attack_time_ms\": {attack_time_ms}, \
                     \"backoff_ms\": {backoff_ms}}}"
                );
            }
            JournalEvent::Fail {
                run_id,
                attempt,
                reason,
                detail,
                backoff_ms,
            } => {
                out.push_str("{\"kind\": \"fail\", \"run_id\": ");
                write_json_str(run_id, &mut out);
                let _ = write!(out, ", \"attempt\": {attempt}, \"reason\": ");
                write_json_str(reason, &mut out);
                out.push_str(", \"detail\": ");
                write_json_str(detail, &mut out);
                let _ = write!(out, ", \"backoff_ms\": {backoff_ms}}}");
            }
            JournalEvent::Quarantine {
                run_id,
                attempts,
                reason,
            } => {
                out.push_str("{\"kind\": \"quarantine\", \"run_id\": ");
                write_json_str(run_id, &mut out);
                let _ = write!(out, ", \"attempts\": {attempts}, \"reason\": ");
                write_json_str(reason, &mut out);
                out.push('}');
            }
        }
        out
    }

    /// Parses one journal line; `None` for corrupt/truncated/unknown
    /// lines (the lenient-reader contract).
    pub fn parse(line: &str) -> Option<JournalEvent> {
        let fields = parse_flat_object(line)?;
        let s = |k: &str| fields.get(k).and_then(Field::as_str).map(str::to_string);
        let n = |k: &str| fields.get(k).and_then(Field::as_f64);
        let u = |k: &str| n(k).filter(|v| *v >= 0.0).map(|v| v as u64);
        match fields.get("kind").and_then(Field::as_str)? {
            "campaign" => Some(JournalEvent::Campaign {
                name: s("name")?,
                total_runs: u("total_runs")? as usize,
            }),
            "attempt" => Some(JournalEvent::Attempt {
                run_id: s("run_id")?,
                attempt: u("attempt")? as u32,
                seed: u("seed")?,
            }),
            "done" => Some(JournalEvent::Done {
                run_id: s("run_id")?,
                attempt: u("attempt")? as u32,
                class: s("class")?,
                asr: n("asr")?,
                attack_time_ms: u("attack_time_ms")?,
                backoff_ms: u("backoff_ms")?,
            }),
            "fail" => Some(JournalEvent::Fail {
                run_id: s("run_id")?,
                attempt: u("attempt")? as u32,
                reason: s("reason")?,
                detail: s("detail").unwrap_or_default(),
                backoff_ms: u("backoff_ms")?,
            }),
            "quarantine" => Some(JournalEvent::Quarantine {
                run_id: s("run_id")?,
                attempts: u("attempts")? as u32,
                reason: s("reason").unwrap_or_default(),
            }),
            _ => None,
        }
    }
}

/// The completed record replay keeps for one run (first `done` wins).
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Attempt number that succeeded (≥ 2 means the run was retried).
    pub attempt: u32,
    /// Pipeline classification (`full` / `degraded` / `failed`).
    pub class: String,
    /// Attack success rate of the run.
    pub asr: f64,
    /// Modeled attack time, milliseconds (hammering + recovery).
    pub attack_time_ms: u64,
    /// Backoff charged to this run before it succeeded, milliseconds.
    pub backoff_ms: u64,
}

/// Everything replay reconstructs from the journal.
#[derive(Debug, Clone, Default)]
pub struct JournalState {
    /// Campaign name from the latest header line.
    pub name: String,
    /// Grid size from the latest header line (0 when no header survived).
    pub total_runs: usize,
    /// First `done` record per run-id.
    pub completed: HashMap<String, RunRecord>,
    /// Consecutive recorded failures per still-pending run-id.
    pub failures: HashMap<String, u32>,
    /// Last failure reason per run-id (keyed alongside `failures`).
    pub last_fail_reason: HashMap<String, String>,
    /// Permanently retired run-ids.
    pub quarantined: HashSet<String>,
    /// Attempts started per run-id (max attempt number seen).
    pub attempts_started: HashMap<String, u32>,
    /// `done` lines beyond the first for an already-completed run-id.
    pub duplicate_done: usize,
    /// Lines that failed to parse (truncated tails, corruption).
    pub skipped_lines: usize,
    /// Total backoff recorded across all fail/done lines, milliseconds.
    pub total_backoff_ms: u64,
}

impl JournalState {
    /// Applies one event in journal order.
    pub fn apply(&mut self, event: &JournalEvent) {
        match event {
            JournalEvent::Campaign { name, total_runs } => {
                self.name = name.clone();
                self.total_runs = *total_runs;
            }
            JournalEvent::Attempt {
                run_id, attempt, ..
            } => {
                let started = self.attempts_started.entry(run_id.clone()).or_insert(0);
                *started = (*started).max(*attempt);
            }
            JournalEvent::Done {
                run_id,
                attempt,
                class,
                asr,
                attack_time_ms,
                backoff_ms,
            } => {
                if self.completed.contains_key(run_id) || self.quarantined.contains(run_id) {
                    self.duplicate_done += 1;
                    return;
                }
                self.total_backoff_ms += backoff_ms;
                self.completed.insert(
                    run_id.clone(),
                    RunRecord {
                        attempt: *attempt,
                        class: class.clone(),
                        asr: *asr,
                        attack_time_ms: *attack_time_ms,
                        backoff_ms: *backoff_ms,
                    },
                );
                self.failures.remove(run_id);
                self.last_fail_reason.remove(run_id);
            }
            JournalEvent::Fail {
                run_id,
                reason,
                backoff_ms,
                ..
            } => {
                if self.completed.contains_key(run_id) || self.quarantined.contains(run_id) {
                    return;
                }
                *self.failures.entry(run_id.clone()).or_insert(0) += 1;
                self.last_fail_reason.insert(run_id.clone(), reason.clone());
                self.total_backoff_ms += backoff_ms;
            }
            JournalEvent::Quarantine { run_id, .. } => {
                if !self.completed.contains_key(run_id) {
                    self.quarantined.insert(run_id.clone());
                }
            }
        }
    }

    /// Whether resume should skip this run-id entirely.
    pub fn is_settled(&self, run_id: &str) -> bool {
        self.completed.contains_key(run_id) || self.quarantined.contains(run_id)
    }

    /// Run-ids that needed more than one attempt (recorded retries),
    /// completed or not.
    pub fn retried_runs(&self) -> usize {
        let completed_retried = self.completed.iter().filter(|(_, r)| r.attempt > 1).count();
        let pending_retried = self
            .attempts_started
            .iter()
            .filter(|(id, &max)| max > 1 && !self.completed.contains_key(*id))
            .count();
        completed_retried + pending_retried
    }
}

/// Appends events to rotating journal segments with per-line flush, and
/// replays existing segments on open.
pub struct Journal {
    dir: PathBuf,
    segment_lines: usize,
    current_index: u64,
    current_lines: usize,
    current: File,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("journal-{index:08}.jsonl"))
}

/// Journal segment file names under `dir`, sorted by index.
fn segment_indices(dir: &Path) -> io::Result<Vec<u64>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(index) = name
            .strip_prefix("journal-")
            .and_then(|s| s.strip_suffix(".jsonl"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push(index);
        }
    }
    out.sort_unstable();
    Ok(out)
}

impl Journal {
    /// Opens the journal under `dir` (creating the directory), replays
    /// any existing segments, and starts a fresh segment after the
    /// highest existing index. Returns the writer and the replayed
    /// state.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (creating the directory, listing or
    /// opening segments). Corrupt *content* is never an error.
    pub fn open(dir: &Path) -> io::Result<(Journal, JournalState)> {
        std::fs::create_dir_all(dir)?;
        let state = Self::replay(dir)?;
        let current_index = segment_indices(dir)?.last().map(|i| i + 1).unwrap_or(0);
        let current = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(dir, current_index))?;
        Ok((
            Journal {
                dir: dir.to_path_buf(),
                segment_lines: SEGMENT_LINES,
                current_index,
                current_lines: 0,
                current,
            },
            state,
        ))
    }

    /// Replays every segment under `dir` (in index order) into a state,
    /// skipping unparsable lines. An absent directory is an empty
    /// journal.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing errors only.
    pub fn replay(dir: &Path) -> io::Result<JournalState> {
        let mut state = JournalState::default();
        for index in segment_indices(dir)? {
            let Ok(content) = std::fs::read_to_string(segment_path(dir, index)) else {
                continue;
            };
            for line in content.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match JournalEvent::parse(line) {
                    Some(event) => state.apply(&event),
                    None => state.skipped_lines += 1,
                }
            }
        }
        Ok(state)
    }

    /// The directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one event and flushes it to disk.
    ///
    /// # Errors
    ///
    /// Propagates write/flush errors.
    pub fn append(&mut self, event: &JournalEvent) -> io::Result<()> {
        if self.current_lines >= self.segment_lines {
            self.current_index += 1;
            self.current_lines = 0;
            self.current = OpenOptions::new()
                .create(true)
                .append(true)
                .open(segment_path(&self.dir, self.current_index))?;
        }
        let line = event.to_line();
        self.current.write_all(line.as_bytes())?;
        self.current.write_all(b"\n")?;
        // Per-line flush: a crash loses at most the line in flight.
        self.current.flush()?;
        self.current_lines += 1;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Minimal flat-JSON line codec. The journal's wire format is a flat
// object of string and number fields, which keeps this parser ~80 lines
// and dependency-free (rhb-bench's full parser lives above this crate
// in the dependency graph).
// ---------------------------------------------------------------------------

/// A parsed flat-object field value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Field {
    Str(String),
    Num(f64),
}

impl Field {
    fn as_str(&self) -> Option<&str> {
        match self {
            Field::Str(s) => Some(s),
            Field::Num(_) => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Field::Num(v) => Some(*v),
            Field::Str(_) => None,
        }
    }
}

/// Escapes and quotes `s` as a JSON string into `out`.
pub(crate) fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a single-line flat JSON object (string/number/bool/null
/// values, no nesting). Returns `None` on any syntax error — the
/// lenient-reader contract turns corruption into a skipped line.
pub(crate) fn parse_flat_object(line: &str) -> Option<HashMap<String, Field>> {
    let mut chars = line.trim().chars().peekable();
    let mut out = HashMap::new();
    if chars.next()? != '{' {
        return None;
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
                continue;
            }
            _ => {}
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = match chars.peek()? {
            '"' => Field::Str(parse_string(&mut chars)?),
            't' | 'f' | 'n' => {
                let word: String =
                    std::iter::from_fn(|| chars.next_if(|c| c.is_ascii_alphabetic())).collect();
                match word.as_str() {
                    "true" => Field::Num(1.0),
                    "false" | "null" => Field::Num(0.0),
                    _ => return None,
                }
            }
            _ => {
                let raw: String = std::iter::from_fn(|| {
                    chars
                        .next_if(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                })
                .collect();
                Field::Num(raw.parse::<f64>().ok()?)
            }
        };
        out.insert(key, value);
    }
    // Anything after the closing brace (other than whitespace) means the
    // line was spliced/corrupted — reject it whole.
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return None;
    }
    Some(out)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.next_if(|c| c.is_whitespace()).is_some() {}
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rhb-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn done(run_id: &str, attempt: u32) -> JournalEvent {
        JournalEvent::Done {
            run_id: run_id.into(),
            attempt,
            class: "full".into(),
            asr: 0.97,
            attack_time_ms: 1234,
            backoff_ms: if attempt > 1 { 250 } else { 0 },
        }
    }

    #[test]
    fn every_event_round_trips_through_its_line() {
        let events = [
            JournalEvent::Campaign {
                name: "smoke \"quoted\"".into(),
                total_runs: 12,
            },
            JournalEvent::Attempt {
                run_id: "r1".into(),
                attempt: 2,
                seed: 0xDEAD_BEEF,
            },
            done("r1", 2),
            JournalEvent::Fail {
                run_id: "r1".into(),
                attempt: 1,
                reason: "panic".into(),
                detail: "index out of bounds\nbacktrace".into(),
                backoff_ms: 250,
            },
            JournalEvent::Quarantine {
                run_id: "r2".into(),
                attempts: 3,
                reason: "timeout".into(),
            },
        ];
        for event in &events {
            let line = event.to_line();
            assert!(!line.contains('\n'), "one event per line: {line}");
            let parsed =
                JournalEvent::parse(&line).unwrap_or_else(|| panic!("line must parse: {line}"));
            assert_eq!(&parsed, event);
        }
    }

    #[test]
    fn replay_rebuilds_state_and_resume_appends_to_a_new_segment() {
        let dir = temp_dir("resume");
        {
            let (mut journal, state) = Journal::open(&dir).unwrap();
            assert_eq!(state.completed.len(), 0);
            journal
                .append(&JournalEvent::Campaign {
                    name: "t".into(),
                    total_runs: 3,
                })
                .unwrap();
            journal
                .append(&JournalEvent::Attempt {
                    run_id: "a".into(),
                    attempt: 1,
                    seed: 7,
                })
                .unwrap();
            journal.append(&done("a", 1)).unwrap();
            journal
                .append(&JournalEvent::Fail {
                    run_id: "b".into(),
                    attempt: 1,
                    reason: "panic".into(),
                    detail: "boom".into(),
                    backoff_ms: 100,
                })
                .unwrap();
            // "c" left in-flight: attempt without outcome.
            journal
                .append(&JournalEvent::Attempt {
                    run_id: "c".into(),
                    attempt: 1,
                    seed: 9,
                })
                .unwrap();
        }
        let (_journal, state) = Journal::open(&dir).unwrap();
        assert_eq!(state.total_runs, 3);
        assert!(state.is_settled("a"));
        assert!(!state.is_settled("b"));
        assert!(!state.is_settled("c"));
        assert_eq!(state.failures.get("b"), Some(&1));
        assert_eq!(
            state.last_fail_reason.get("b").map(String::as_str),
            Some("panic")
        );
        assert_eq!(state.attempts_started.get("c"), Some(&1));
        assert_eq!(state.total_backoff_ms, 100);
        assert_eq!(state.skipped_lines, 0);
        // Two generations → two segment files.
        let indices = segment_indices(&dir).unwrap();
        assert_eq!(indices, vec![0, 1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_and_duplicates_are_tolerated() {
        let dir = temp_dir("truncated");
        std::fs::create_dir_all(&dir).unwrap();
        let mut content = String::new();
        content.push_str(&done("a", 2).to_line());
        content.push('\n');
        content.push_str(&done("a", 2).to_line()); // duplicate done
        content.push('\n');
        let fail = JournalEvent::Fail {
            run_id: "b".into(),
            attempt: 1,
            reason: "timeout".into(),
            detail: String::new(),
            backoff_ms: 50,
        }
        .to_line();
        // Truncate the fail line mid-way: crash during the write.
        content.push_str(&fail[..fail.len() / 2]);
        std::fs::write(segment_path(&dir, 0), content).unwrap();
        let state = Journal::replay(&dir).unwrap();
        assert_eq!(state.completed.len(), 1);
        assert_eq!(state.duplicate_done, 1);
        assert_eq!(state.skipped_lines, 1);
        assert_eq!(state.completed["a"].attempt, 2);
        assert_eq!(state.retried_runs(), 1);
        // "b"'s fail line was lost with the crash: it is simply pending.
        assert!(!state.failures.contains_key("b"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_retires_a_run_and_done_after_quarantine_is_a_duplicate() {
        let mut state = JournalState::default();
        state.apply(&JournalEvent::Quarantine {
            run_id: "q".into(),
            attempts: 3,
            reason: "panic".into(),
        });
        assert!(state.is_settled("q"));
        state.apply(&done("q", 4));
        assert_eq!(state.duplicate_done, 1);
        assert!(!state.completed.contains_key("q"));
    }

    #[test]
    fn flat_parser_rejects_garbage_and_trailing_junk() {
        assert!(parse_flat_object("{\"a\": 1}").is_some());
        assert!(parse_flat_object("{\"a\": \"x\", \"b\": 2.5}").is_some());
        assert!(parse_flat_object("not json").is_none());
        assert!(parse_flat_object("{\"a\": 1} trailing").is_none());
        assert!(parse_flat_object("{\"a\": }").is_none());
        assert!(parse_flat_object("{\"a\": 1").is_none());
        let nested = parse_flat_object("{\"a\": {\"b\": 1}}");
        assert!(nested.is_none(), "nested objects are not flat");
    }
}
