//! # rhb-campaign
//!
//! Fault-tolerant campaign supervisor: executes a declarative sweep grid
//! (model × method × chip × chaos rate × seed) as a fleet of isolated
//! runs over an `rhb-par` pool, and survives every failure mode a long
//! campaign meets in practice:
//!
//! * **Per-run fault domains** — each attempt runs on its own thread
//!   under `catch_unwind`, so one panicking configuration never takes
//!   the supervisor (or its siblings) down.
//! * **Deadline watchdog** — a configurable per-run timeout; an attempt
//!   that overruns is marked `timed_out`, its [`rhb_par::CancelToken`]
//!   is cancelled (cooperative), the runaway thread is abandoned, and
//!   the worker lane is reclaimed immediately.
//! * **Retry budgets** — failed attempts are retried with exponential
//!   backoff (charged to the campaign's §VII attack-time accounting)
//!   and deterministic per-attempt seeds; a config that fails
//!   `max_attempts` consecutive times is quarantined instead of wedging
//!   the queue.
//! * **Crash-safe resume** — every state transition is appended to a
//!   per-line-flushed JSONL checkpoint journal (same truncated-tail
//!   discipline as the flight recorder). A SIGKILL'd campaign resumes
//!   exactly: completed run-ids are skipped, in-flight attempts are
//!   re-executed, attempt counters carry over.
//!
//! The crate is execution-agnostic: the caller supplies the run closure
//! (`rhb-bench` wires in the real attack pipeline), so the supervisor
//! itself stays dependency-light and unit-testable with synthetic
//! workloads.

pub mod journal;
pub mod spec;
pub mod store;
pub mod supervisor;

pub use journal::{Journal, JournalEvent, JournalState, RunRecord};
pub use spec::{CampaignSpec, RunSpec};
pub use store::{CampaignStore, ClassCounts};
pub use supervisor::{
    attempt_seed, backoff_ms, run_campaign, Attempt, CampaignOutcome, RunFn, RunResult,
    SupervisorConfig, CLASS_FAILED, CLASS_QUARANTINED, CLASS_TIMED_OUT,
};
