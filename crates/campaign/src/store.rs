//! Aggregate result store: classification roll-ups over a replayed
//! journal, persisted atomically as `aggregate.json`.
//!
//! The store is derived — it is always rebuilt from the journal (the
//! single source of truth), never incrementally mutated, so it can be
//! regenerated after any crash and can never disagree with resume.

use std::io;
use std::path::{Path, PathBuf};

use crate::journal::{Journal, JournalState};
use crate::supervisor::{CLASS_QUARANTINED, CLASS_TIMED_OUT, REASON_TIMEOUT};

/// Roll-up counts across the full/degraded/failed/timed-out/quarantined
/// classification (completed runs carry their pipeline class; retired
/// runs are split by why they were retired).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Completed with class `full`.
    pub full: usize,
    /// Completed with class `degraded`.
    pub degraded: usize,
    /// Completed with class `failed` (attack ran, trigger didn't take).
    pub failed: usize,
    /// Retired after repeated deadline overruns.
    pub timed_out: usize,
    /// Retired after repeated panics/errors.
    pub quarantined: usize,
}

impl ClassCounts {
    /// Runs that produced a result at all.
    pub fn completed(&self) -> usize {
        self.full + self.degraded + self.failed
    }

    /// All settled runs, completed or retired.
    pub fn settled(&self) -> usize {
        self.completed() + self.timed_out + self.quarantined
    }
}

/// Aggregate view of one campaign directory.
#[derive(Debug, Clone)]
pub struct CampaignStore {
    /// Campaign name from the journal header.
    pub name: String,
    /// Grid size from the journal header.
    pub total_runs: usize,
    /// Classification roll-up.
    pub counts: ClassCounts,
    /// Runs that needed more than one attempt.
    pub retried: usize,
    /// Duplicate `done` lines tolerated during replay (must be 0 for a
    /// healthy campaign; the kill-resume gate asserts on it).
    pub duplicate_done: usize,
    /// Journal lines skipped as corrupt/truncated.
    pub skipped_lines: usize,
    /// Mean attack success rate over completed runs.
    pub mean_asr: f64,
    /// Total modeled §VII attack time across completed runs, ms.
    pub total_attack_time_ms: u64,
    /// Total retry backoff charged to the campaign clock, ms.
    pub total_backoff_ms: u64,
    /// The replayed state the store was derived from.
    pub state: JournalState,
}

impl CampaignStore {
    /// Derives the store from a replayed journal state.
    pub fn from_state(state: JournalState) -> CampaignStore {
        let mut counts = ClassCounts::default();
        let mut asr_sum = 0.0;
        let mut attack_ms = 0u64;
        for record in state.completed.values() {
            match record.class.as_str() {
                "full" => counts.full += 1,
                "degraded" => counts.degraded += 1,
                _ => counts.failed += 1,
            }
            asr_sum += record.asr;
            attack_ms = attack_ms.saturating_add(record.attack_time_ms);
        }
        for run_id in &state.quarantined {
            let timed_out = state
                .last_fail_reason
                .get(run_id)
                .map(|r| r == REASON_TIMEOUT)
                .unwrap_or(false);
            if timed_out {
                counts.timed_out += 1;
            } else {
                counts.quarantined += 1;
            }
        }
        let mean_asr = if counts.completed() > 0 {
            asr_sum / counts.completed() as f64
        } else {
            0.0
        };
        CampaignStore {
            name: state.name.clone(),
            total_runs: state.total_runs,
            retried: state.retried_runs(),
            duplicate_done: state.duplicate_done,
            skipped_lines: state.skipped_lines,
            mean_asr,
            total_attack_time_ms: attack_ms,
            total_backoff_ms: state.total_backoff_ms,
            counts,
            state,
        }
    }

    /// Replays the journal under `dir` and derives the store.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing errors.
    pub fn load(dir: &Path) -> io::Result<CampaignStore> {
        Ok(CampaignStore::from_state(Journal::replay(dir)?))
    }

    /// Whether every grid point is settled.
    pub fn is_complete(&self) -> bool {
        self.total_runs > 0 && self.counts.settled() >= self.total_runs
    }

    /// The class name a retired run rolls up under.
    pub fn retired_class(&self, run_id: &str) -> &'static str {
        match self.state.last_fail_reason.get(run_id) {
            Some(reason) if reason == REASON_TIMEOUT => CLASS_TIMED_OUT,
            _ => CLASS_QUARANTINED,
        }
    }

    /// Renders the aggregate as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"rhb-campaign-aggregate/v1\",\n");
        out.push_str("  \"name\": ");
        crate::journal::write_json_str(&self.name, &mut out);
        out.push_str(",\n");
        out.push_str(&format!("  \"total_runs\": {},\n", self.total_runs));
        out.push_str(&format!("  \"complete\": {},\n", self.is_complete()));
        out.push_str(&format!(
            "  \"classes\": {{\"full\": {}, \"degraded\": {}, \"failed\": {}, \
             \"timed_out\": {}, \"quarantined\": {}}},\n",
            self.counts.full,
            self.counts.degraded,
            self.counts.failed,
            self.counts.timed_out,
            self.counts.quarantined
        ));
        out.push_str(&format!("  \"retried\": {},\n", self.retried));
        out.push_str(&format!("  \"duplicate_done\": {},\n", self.duplicate_done));
        out.push_str(&format!("  \"skipped_lines\": {},\n", self.skipped_lines));
        out.push_str(&format!("  \"mean_asr\": {:.6},\n", self.mean_asr));
        out.push_str(&format!(
            "  \"total_attack_time_ms\": {},\n",
            self.total_attack_time_ms
        ));
        out.push_str(&format!(
            "  \"total_backoff_ms\": {}\n",
            self.total_backoff_ms
        ));
        out.push_str("}\n");
        out
    }

    /// Path of the aggregate file inside a campaign directory.
    pub fn aggregate_path(dir: &Path) -> PathBuf {
        dir.join("aggregate.json")
    }

    /// Writes `aggregate.json` atomically (temp file + rename), so a
    /// crash mid-write can never leave a torn aggregate next to a valid
    /// journal.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        let path = Self::aggregate_path(dir);
        rhb_telemetry::write_atomic(&path, &self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{JournalEvent, JournalState};

    fn state_with(events: &[JournalEvent]) -> JournalState {
        let mut state = JournalState::default();
        for e in events {
            state.apply(e);
        }
        state
    }

    fn done(run_id: &str, class: &str, asr: f64) -> JournalEvent {
        JournalEvent::Done {
            run_id: run_id.into(),
            attempt: 1,
            class: class.into(),
            asr,
            attack_time_ms: 100,
            backoff_ms: 0,
        }
    }

    #[test]
    fn rollup_splits_retired_runs_by_reason() {
        let state = state_with(&[
            JournalEvent::Campaign {
                name: "agg".into(),
                total_runs: 5,
            },
            done("a", "full", 1.0),
            done("b", "degraded", 0.6),
            done("c", "failed", 0.0),
            JournalEvent::Fail {
                run_id: "t".into(),
                attempt: 3,
                reason: "timeout".into(),
                detail: String::new(),
                backoff_ms: 10,
            },
            JournalEvent::Quarantine {
                run_id: "t".into(),
                attempts: 3,
                reason: "timeout".into(),
            },
            JournalEvent::Fail {
                run_id: "p".into(),
                attempt: 3,
                reason: "panic".into(),
                detail: "boom".into(),
                backoff_ms: 10,
            },
            JournalEvent::Quarantine {
                run_id: "p".into(),
                attempts: 3,
                reason: "panic".into(),
            },
        ]);
        let store = CampaignStore::from_state(state);
        assert_eq!(store.counts.full, 1);
        assert_eq!(store.counts.degraded, 1);
        assert_eq!(store.counts.failed, 1);
        assert_eq!(store.counts.timed_out, 1);
        assert_eq!(store.counts.quarantined, 1);
        assert_eq!(store.counts.completed(), 3);
        assert_eq!(store.counts.settled(), 5);
        assert!(store.is_complete());
        assert_eq!(store.retired_class("t"), CLASS_TIMED_OUT);
        assert_eq!(store.retired_class("p"), CLASS_QUARANTINED);
        assert!((store.mean_asr - (1.0 + 0.6 + 0.0) / 3.0).abs() < 1e-9);
        assert_eq!(store.total_attack_time_ms, 300);
        assert_eq!(store.total_backoff_ms, 20);
    }

    #[test]
    fn aggregate_json_is_written_atomically_and_parses_as_flat_fields() {
        let dir = std::env::temp_dir().join(format!(
            "rhb-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = CampaignStore::from_state(state_with(&[
            JournalEvent::Campaign {
                name: "json".into(),
                total_runs: 1,
            },
            done("only", "full", 0.9),
        ]));
        let path = store.save(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"schema\": \"rhb-campaign-aggregate/v1\""));
        assert!(text.contains("\"complete\": true"));
        assert!(text.contains("\"full\": 1"));
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "atomic write must not leak temp files"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incomplete_campaign_reports_incomplete() {
        let store = CampaignStore::from_state(state_with(&[
            JournalEvent::Campaign {
                name: "partial".into(),
                total_runs: 3,
            },
            done("a", "full", 1.0),
        ]));
        assert!(!store.is_complete());
        assert_eq!(store.counts.settled(), 1);
    }
}
