//! Property tests for the crash-safe resume contract.
//!
//! The campaign journal is the only thing standing between a SIGKILL
//! and lost/duplicated science, so the properties are stated over
//! *arbitrary* damage: journals with truncated tails (crash mid-write)
//! and duplicated lines (replayed segments) must still resume to a
//! state where *no run is lost* and *no settled run is re-executed* —
//! and the retry schedule itself must be a pure function of the seed.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;
use rhb_campaign::{
    attempt_seed, backoff_ms, run_campaign, CampaignSpec, Journal, RunFn, RunResult,
    SupervisorConfig,
};

fn temp_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rhb-resume-prop-{tag}-{case}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fast_config() -> SupervisorConfig {
    SupervisorConfig {
        workers: 2,
        run_timeout: Duration::from_secs(5),
        max_attempts: 3,
        backoff_base_ms: 1,
        backoff_cap_ms: 2,
    }
}

fn grid(n_seeds: usize) -> CampaignSpec {
    CampaignSpec {
        name: "prop".into(),
        models: vec!["ResNet20".into()],
        methods: vec!["CFT+BR".into()],
        chips: vec!["K1".into()],
        chaos_rates: vec![0.0],
        seeds: (0..n_seeds as u64).collect(),
    }
}

fn ok_result() -> RunResult {
    RunResult {
        class: "full".into(),
        asr: 0.95,
        attack_time_ms: 5,
    }
}

/// Concatenates every journal segment (in index order) into lines.
fn read_journal_lines(dir: &PathBuf) -> Vec<String> {
    let mut names: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("journal-") && n.ends_with(".jsonl"))
        .collect();
    names.sort();
    let mut lines = Vec::new();
    for name in names {
        let content = std::fs::read_to_string(dir.join(name)).unwrap();
        lines.extend(content.lines().map(str::to_string));
    }
    lines
}

/// Replaces all segments with a single corrupted one.
fn write_corrupted_journal(dir: &PathBuf, content: &str) {
    for entry in std::fs::read_dir(dir).unwrap().filter_map(|e| e.ok()) {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("journal-") && name.ends_with(".jsonl") {
            std::fs::remove_file(entry.path()).unwrap();
        }
    }
    std::fs::write(dir.join("journal-00000000.jsonl"), content).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Resume after an arbitrarily truncated tail plus a duplicated
    /// line: every settled run is skipped, every unsettled run is
    /// executed exactly once, nothing is lost.
    #[test]
    fn resume_survives_truncated_tails_and_duplicate_lines(
        n_seeds in 1usize..5,
        poison_mask in 0u64..32,
        dup_pick in 0u64..1_000,
        cut_bytes in 0usize..160,
        case in 0u64..1_000_000,
    ) {
        let dir = temp_dir("corrupt", case);
        let spec = grid(n_seeds);
        let total = spec.len();

        // First pass: some seeds are poison (always panic → quarantine).
        let first: RunFn = Arc::new(move |run_spec, _attempt, _token| {
            if poison_mask & (1u64 << (run_spec.seed % 6)) != 0 {
                panic!("poison seed {}", run_spec.seed);
            }
            Ok(ok_result())
        });
        let first_outcome = run_campaign(&spec, &dir, &fast_config(), first).unwrap();
        prop_assert!(first_outcome.is_complete(&spec));

        // Corrupt the journal: duplicate one line, then truncate the tail.
        let lines = read_journal_lines(&dir);
        prop_assert!(!lines.is_empty());
        let mut corrupted = lines.clone();
        let dup_at = (dup_pick as usize) % lines.len();
        corrupted.insert(dup_at + 1, lines[dup_at].clone());
        let mut blob = corrupted.join("\n");
        blob.push('\n');
        let keep = blob.len().saturating_sub(cut_bytes);
        blob.truncate(keep);
        write_corrupted_journal(&dir, &blob);

        // What a resume will believe before running anything.
        let pre_state = Journal::replay(&dir).unwrap();

        // Resume with an execution-counting closure that always succeeds.
        let executions: Arc<Mutex<HashMap<String, u32>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let exec_in = Arc::clone(&executions);
        let second: RunFn = Arc::new(move |run_spec, _attempt, _token| {
            *exec_in
                .lock()
                .unwrap()
                .entry(run_spec.run_id.clone())
                .or_insert(0) += 1;
            Ok(ok_result())
        });
        let outcome = run_campaign(&spec, &dir, &fast_config(), second).unwrap();

        // No run lost: every grid point is settled after resume.
        prop_assert!(outcome.is_complete(&spec));
        prop_assert_eq!(
            outcome.state.completed.len() + outcome.state.quarantined.len(),
            total
        );

        // No settled run re-executed; every pending run with budget left
        // executed exactly once. (A run whose quarantine line was
        // truncated but whose recorded failures already exhaust the
        // budget is re-quarantined without another execution.)
        let config = fast_config();
        let executed = executions.lock().unwrap();
        for run in spec.expand() {
            let count = executed.get(&run.run_id).copied().unwrap_or(0);
            let prior_failures =
                pre_state.failures.get(&run.run_id).copied().unwrap_or(0);
            let expected = if pre_state.is_settled(&run.run_id)
                || prior_failures >= config.max_attempts
            {
                0
            } else {
                1
            };
            prop_assert_eq!(
                count, expected,
                "run {} executed {} times, expected {}", run.run_id, count, expected
            );
        }

        // The final on-disk state agrees with an independent replay.
        let final_state = Journal::replay(&dir).unwrap();
        prop_assert_eq!(
            final_state.completed.len(),
            outcome.state.completed.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Same base seed → same attempt seed schedule and the same backoff
    /// schedule (monotone, capped); different base seeds diverge.
    #[test]
    fn retry_schedule_is_a_pure_function_of_the_seed(
        base in 0u64..u64::MAX / 2,
        backoff_base in 1u64..500,
        cap_extra in 0u64..2_000,
    ) {
        let config = SupervisorConfig {
            backoff_base_ms: backoff_base,
            backoff_cap_ms: backoff_base + cap_extra,
            ..fast_config()
        };
        let seeds: Vec<u64> = (1..=6).map(|a| attempt_seed(base, a)).collect();
        let replay: Vec<u64> = (1..=6).map(|a| attempt_seed(base, a)).collect();
        prop_assert_eq!(&seeds, &replay, "schedule must be deterministic");
        let other: Vec<u64> = (1..=6).map(|a| attempt_seed(base ^ 1, a)).collect();
        prop_assert_ne!(&seeds, &other, "different base seeds must diverge");

        let mut prev = 0u64;
        for attempt in 1..=8u32 {
            let pause = backoff_ms(&config, attempt);
            prop_assert!(pause <= config.backoff_cap_ms, "backoff must respect the cap");
            prop_assert!(pause >= prev, "backoff must be monotone non-decreasing");
            prev = pause;
        }
        prop_assert_eq!(backoff_ms(&config, 1), 0, "first attempt is free");
    }
}

/// Deterministic (non-property) end-to-end: a campaign interrupted
/// between attempts resumes with attempt numbers carried over — the
/// retry that completes a previously-failing run is recorded as such.
#[test]
fn interrupted_campaign_resumes_with_attempt_numbers_carried_over() {
    let dir = temp_dir("carryover", 0);
    let spec = grid(1);

    // First process: the run always panics, but we simulate a SIGKILL
    // after the first failure by capping max_attempts at 1... which
    // would quarantine. Instead: fail twice (max_attempts 3 means two
    // recorded failures leave the run pending), then "crash".
    let calls = Arc::new(AtomicU32::new(0));
    let calls_in = Arc::clone(&calls);
    let flaky: RunFn = Arc::new(move |_spec, _attempt, _token| {
        calls_in.fetch_add(1, Ordering::SeqCst);
        Err("transient fault".into())
    });
    let config = SupervisorConfig {
        max_attempts: 2,
        ..fast_config()
    };
    let first = run_campaign(&spec, &dir, &config, flaky).unwrap();
    assert_eq!(first.state.quarantined.len(), 1, "budget exhausted");

    // "Operator intervenes": wipe the quarantine by replaying only the
    // fail lines (simulating a journal whose quarantine line was lost
    // with the crash), then resume with a healthy closure.
    let lines = read_journal_lines(&dir);
    let kept: Vec<String> = lines
        .into_iter()
        .filter(|l| !l.contains("\"kind\": \"quarantine\""))
        .collect();
    write_corrupted_journal(&dir, &(kept.join("\n") + "\n"));

    let pre = Journal::replay(&dir).unwrap();
    let run_id = spec.expand()[0].run_id.clone();
    assert_eq!(pre.failures.get(&run_id), Some(&2));

    let healthy: RunFn = Arc::new(|_s, _a, _t| Ok(ok_result()));
    let resumed = run_campaign(&spec, &dir, &fast_config(), healthy).unwrap();
    let record = resumed.state.completed.get(&run_id).expect("completed");
    assert_eq!(
        record.attempt, 3,
        "attempt numbering must carry over across resume"
    );
    assert_eq!(resumed.state.retried_runs(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
