//! Micro-kernel and SIMD-path parity suite for the int8 engine.
//!
//! The blocked int8 GEMM dispatches between scalar, SSE2, and AVX2
//! micro-kernels at runtime ([`KernelKind`]), and quantization takes an
//! AVX2 bulk path for long slices. Every one of those paths does exact
//! integer (or exactly-emulated rounding) arithmetic, so the contract is
//! *bit identity*, not tolerance: each wide path must agree with the
//! portable scalar reference on every element. This suite pins that
//! across random shapes, the `MAX_K` overflow boundary, and adversarial
//! rounding inputs, and it degrades gracefully on hosts without AVX2 by
//! iterating only [`KernelKind::all_supported`].

use proptest::prelude::*;
use rhb_nn::gemm_i8::{
    self, gemm_i8_nt_pb, gemm_i8_pa_serial_with_kernel, gemm_i8_serial_with_kernel, KernelKind,
    PackedA, PackedB, MAX_K,
};
use rhb_nn::quant::QuantScheme;

/// Deterministic i8 fill (xorshift over the full value range).
fn fill_i8(seed: u64, len: usize) -> Vec<i8> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as i8
        })
        .collect()
}

/// Textbook i64 reference — immune to any i32 accumulation mistake.
fn naive_i8(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    let mut c = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i64;
            for p in 0..k {
                acc += i64::from(a[i * k + p]) * i64::from(b[p * n + j]);
            }
            c[i * n + j] = i32::try_from(acc).expect("shape fits i32 by construction");
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every supported kernel width is bit-identical to the i64 naive
    /// reference (and therefore to the scalar kernel) at any shape,
    /// including tile-remainder rows/columns and odd `k`.
    #[test]
    fn every_supported_kernel_matches_naive_reference(
        seed in 0u64..1000,
        m in 1usize..24,
        k in 1usize..96,
        n in 1usize..40,
    ) {
        let a = fill_i8(seed, m * k);
        let b = fill_i8(seed ^ 0xb0b, k * n);
        let want = naive_i8(&a, &b, m, k, n);
        for kernel in KernelKind::all_supported() {
            let mut c = vec![0i32; m * n];
            gemm_i8_serial_with_kernel(kernel, &a, &b, &mut c, m, k, n);
            prop_assert_eq!(&c, &want, "{:?} diverges at m={} k={} n={}", kernel, m, k, n);
        }
    }

    /// The persistent-panel paths (`PackedA` for conv, `PackedB` for
    /// linear) reproduce the unpacked GEMM bit-for-bit under every
    /// supported kernel — the packing layout transform is lossless.
    #[test]
    fn packed_panel_paths_match_unpacked_gemm(
        seed in 0u64..1000,
        m in 1usize..16,
        k in 1usize..64,
        n in 1usize..40,
    ) {
        let a = fill_i8(seed, m * k);
        let b = fill_i8(seed ^ 0xfeed, k * n);
        let want = naive_i8(&a, &b, m, k, n);

        let pa = PackedA::pack(&a, m, k);
        for kernel in KernelKind::all_supported() {
            let mut c = vec![0i32; m * n];
            gemm_i8_pa_serial_with_kernel(kernel, &pa, &b, &mut c, n);
            prop_assert_eq!(&c, &want, "PackedA/{:?} at m={} k={} n={}", kernel, m, k, n);
        }

        // B^T layout for the PackedB (linear-weight) path.
        let mut bt = vec![0i8; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        for kernel in KernelKind::all_supported() {
            let pb = PackedB::pack_nt_with_kernel(kernel, &bt, n, k);
            let mut c = vec![0i32; m * n];
            gemm_i8_nt_pb(&a, &pb, &mut c, m);
            prop_assert_eq!(&c, &want, "PackedB/{:?} at m={} k={} n={}", kernel, m, k, n);
        }
    }

    /// The AVX2 bulk quantizer is bit-identical to the scalar
    /// `quantize` on adversarial inputs: exact .5 ties on both signs
    /// (round half away from zero), values straddling the clamp
    /// boundaries, subnormals, infinities, and NaN (which maps to 0).
    #[test]
    fn simd_quantize_matches_scalar_elementwise(
        seed in 0u64..1000,
        scale_idx in 0usize..4,
    ) {
        let scale = [1.0f32 / 127.0, 0.037, 3.2e-4, 117.0][scale_idx];
        let scheme = QuantScheme { scale };
        let mut src = Vec::with_capacity(512);
        // Grid points and exact tie points: v = (q + f)·scale.
        let mut state = seed | 1;
        for _ in 0..400 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let q = (state % 321) as i64 - 160; // beyond the clamp range
            let f = match state >> 32 & 3 {
                0 => 0.0f32,
                1 => 0.5,
                2 => -0.5,
                _ => 0.499_999_9,
            };
            src.push((q as f32 + f) * scale);
        }
        src.extend_from_slice(&[
            0.0, -0.0, f32::INFINITY, f32::NEG_INFINITY, f32::NAN, f32::MAX, f32::MIN,
            f32::MIN_POSITIVE, -f32::MIN_POSITIVE, 1e-42, -1e-42, 127.5 * scale,
            -127.5 * scale, 128.0 * scale, -128.5 * scale,
        ]);
        let mut got = vec![0i8; src.len()];
        scheme.quantize_into(&src, &mut got);
        for (i, (&v, &g)) in src.iter().zip(&got).enumerate() {
            prop_assert_eq!(g, scheme.quantize(v), "element {} = {:e}", i, v);
        }
    }
}

/// At the documented overflow boundary `k = MAX_K`, the worst-case dot
/// product `MAX_K · (−128)² = 2 147 467 264` still fits `i32`; every
/// kernel must produce it exactly.
#[test]
fn max_k_worst_case_is_exact_in_every_kernel() {
    let a = vec![-128i8; MAX_K];
    let b = vec![-128i8; MAX_K];
    let want = i32::try_from(MAX_K as i64 * 128 * 128).expect("MAX_K is defined to fit");
    for kernel in KernelKind::all_supported() {
        let mut c = vec![0i32; 1];
        gemm_i8_serial_with_kernel(kernel, &a, &b, &mut c, 1, MAX_K, 1);
        assert_eq!(c[0], want, "{kernel:?} overflowed at the MAX_K boundary");
    }
}

/// One past the boundary must refuse loudly instead of silently
/// wrapping the accumulator.
#[test]
#[should_panic(expected = "overflow")]
fn k_beyond_max_k_panics() {
    let a = vec![1i8; MAX_K + 1];
    let b = vec![1i8; MAX_K + 1];
    let mut c = vec![0i32; 1];
    gemm_i8::gemm_i8_serial(&a, &b, &mut c, 1, MAX_K + 1, 1);
}

/// Fallback contract for hosts without AVX2 (e.g. CI runners): the
/// scalar kernel is always present, `all_supported` never lists an
/// unsupported width, and `auto` resolves to a supported kernel — so
/// this whole suite still covers every path such a host can run.
#[test]
fn kernel_selection_degrades_gracefully_without_avx2() {
    let supported = KernelKind::all_supported();
    assert!(supported.contains(&KernelKind::Scalar));
    assert!(supported.iter().all(|k| k.is_supported()));
    assert!(KernelKind::auto().is_supported());
    if !KernelKind::Avx2.is_supported() {
        assert!(!supported.contains(&KernelKind::Avx2));
    }
    for (name, kind) in [
        ("scalar", KernelKind::Scalar),
        ("SSE2", KernelKind::Sse2),
        ("Avx2", KernelKind::Avx2),
    ] {
        assert_eq!(KernelKind::parse(name), Some(kind), "RHB_I8_KERNEL={name}");
    }
    assert_eq!(KernelKind::parse("avx512"), None);
}
