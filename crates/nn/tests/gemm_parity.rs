//! Parity and determinism suite for the blocked GEMM kernels and the
//! batch-parallel layers.
//!
//! Two contracts are enforced here (see `DESIGN.md`, "Determinism
//! contract"):
//!
//! 1. The blocked/packed kernels produce bit-identical results to the
//!    naive reference at *any* shape (property-tested).
//! 2. Layer forwards/backwards produce bit-identical results at any
//!    global thread count, including the serial fallback.

use proptest::prelude::*;
use rhb_nn::conv::{Conv2d, ConvGeometry};
use rhb_nn::gemm;
use rhb_nn::init::Rng;
use rhb_nn::layer::Layer;
use rhb_nn::linear::Linear;
use rhb_nn::tensor::Tensor;
use std::sync::Mutex;

/// The global pool is process-wide; tests that resize it must not
/// interleave with each other.
static GLOBAL_POOL_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic pseudo-random fill (xorshift), avoiding any dependence
/// on the vendored rand stub's stream.
fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_gemm_is_bit_identical_to_naive_at_any_shape(
        m in 1usize..40,
        k in 1usize..70,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let a = fill(seed, m * k);
        let b = fill(seed ^ 0xabcd, k * n);
        let mut naive = vec![0.0f32; m * n];
        gemm::matmul_naive(&a, &b, &mut naive, m, k, n);
        let mut blocked = vec![1.0f32; m * n]; // dirty on purpose
        gemm::gemm_serial(&a, &b, &mut blocked, m, k, n);
        prop_assert_eq!(
            naive.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            blocked.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gemm_nt_matches_naive_on_materialized_transpose(
        m in 1usize..32,
        k in 1usize..48,
        n in 1usize..32,
        seed in 0u64..1_000,
    ) {
        let a = fill(seed, m * k);
        let bt = fill(seed ^ 0x1234, n * k); // stored [n, k]
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let mut naive = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * bt[j * k + kk];
                }
                naive[i * n + j] = acc;
            }
        }
        let mut ours = vec![0.0f32; m * n];
        gemm::gemm_nt_serial(&a, &bt, &mut ours, m, k, n);
        prop_assert_eq!(
            naive.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            ours.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gemm_tn_matches_naive_on_materialized_transpose(
        m in 1usize..32,
        k in 1usize..48,
        n in 1usize..32,
        seed in 0u64..1_000,
    ) {
        let at = fill(seed ^ 0x77, k * m); // stored [k, m]
        let b = fill(seed ^ 0x99, k * n);
        let mut a = vec![0.0f32; m * k];
        for i in 0..m {
            for kk in 0..k {
                a[i * k + kk] = at[kk * m + i];
            }
        }
        let mut naive = vec![0.0f32; m * n];
        gemm::matmul_naive(&a, &b, &mut naive, m, k, n);
        let mut ours = vec![0.0f32; m * n];
        gemm::gemm_tn_serial(&at, &b, &mut ours, m, k, n);
        prop_assert_eq!(
            naive.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            ours.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}

/// One training step of a conv layer at a given global thread count:
/// returns (forward output, input gradient, weight gradient, bias
/// gradient) for bitwise comparison.
fn conv_step(threads: usize) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
    rhb_par::set_global_threads(threads);
    let mut rng = Rng::seed_from(9);
    let mut conv = Conv2d::new(
        ConvGeometry {
            in_channels: 3,
            out_channels: 5,
            kernel: 3,
            stride: 1,
            padding: 1,
        },
        true,
        &mut rng,
    );
    let x = Tensor::from_vec(fill(17, 6 * 3 * 9 * 9), &[6, 3, 9, 9]);
    let y = conv.forward(&x);
    let gin = conv.backward(&y.clone());
    let bits = |t: &[f32]| t.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
    let params = conv.params();
    (
        bits(y.data()),
        bits(gin.data()),
        bits(params[0].grad.data()),
        bits(params[1].grad.data()),
    )
}

#[test]
fn conv_training_step_is_bit_identical_across_thread_counts() {
    let _guard = GLOBAL_POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let serial = conv_step(1);
    for threads in [2, 4, 7] {
        assert_eq!(conv_step(threads), serial, "threads={threads}");
    }
    rhb_par::set_global_threads(rhb_par::default_threads());
}

fn linear_step(threads: usize) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    rhb_par::set_global_threads(threads);
    let mut rng = Rng::seed_from(5);
    // Large enough that 2*m*n*k crosses the parallel-dispatch threshold.
    let mut layer = Linear::new(96, 64, true, &mut rng);
    let x = Tensor::from_vec(fill(23, 48 * 96), &[48, 96]);
    let y = layer.forward(&x);
    let gin = layer.backward(&y.clone());
    let bits = |t: &[f32]| t.iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
    let params = layer.params();
    (
        bits(y.data()),
        bits(gin.data()),
        bits(params[0].grad.data()),
    )
}

#[test]
fn linear_training_step_is_bit_identical_across_thread_counts() {
    let _guard = GLOBAL_POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let serial = linear_step(1);
    for threads in [2, 4] {
        assert_eq!(linear_step(threads), serial, "threads={threads}");
    }
    rhb_par::set_global_threads(rhb_par::default_threads());
}

#[test]
fn tensor_matmul_is_bit_identical_across_thread_counts() {
    let _guard = GLOBAL_POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let a = Tensor::from_vec(fill(31, 64 * 64), &[64, 64]);
    let b = Tensor::from_vec(fill(37, 64 * 64), &[64, 64]);
    rhb_par::set_global_threads(1);
    let serial = a.matmul(&b).unwrap();
    let serial_t = a.matmul_transposed(&b).unwrap();
    for threads in [2, 4] {
        rhb_par::set_global_threads(threads);
        let par = a.matmul(&b).unwrap();
        let par_t = a.matmul_transposed(&b).unwrap();
        assert_eq!(serial.data(), par.data(), "matmul threads={threads}");
        assert_eq!(
            serial_t.data(),
            par_t.data(),
            "matmul_transposed threads={threads}"
        );
    }
    rhb_par::set_global_threads(rhb_par::default_threads());
}
