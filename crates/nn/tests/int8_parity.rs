//! End-to-end parity suite for the int8 inference engine.
//!
//! Three contracts are enforced here (see `DESIGN.md`, "Inference
//! engines"):
//!
//! 1. Int8 logits are bit-identical at every global thread count — the
//!    engine accumulates in exact integer arithmetic, so chunking can
//!    never change a result.
//! 2. Flipping a bit in the serialized [`WeightFile`] and running int8
//!    inference is equivalent to flipping the corresponding
//!    [`QuantizedTensor`] step and running the fake-quant f32 reference:
//!    the two corrupted models are byte-identical, their engines agree
//!    within the requantization envelope, and their argmax matches
//!    whenever the f32 margin exceeds that envelope.
//! 3. Per-sample activation scales make int8 outputs batch-invariant.

use proptest::prelude::*;
use rhb_nn::activation::Relu;
use rhb_nn::conv::{Conv2d, ConvGeometry};
use rhb_nn::init::Rng;
use rhb_nn::layer::{Layer, Mode, Sequential};
use rhb_nn::linear::Linear;
use rhb_nn::network::Network;
use rhb_nn::pool::GlobalAvgPool;
use rhb_nn::tensor::Tensor;
use rhb_nn::weightfile::{ByteLocation, WeightFile};
use rhb_nn::{NnError, Parameter};
use std::sync::Mutex;

/// The global pool is process-wide; tests that resize it must not
/// interleave with each other.
static GLOBAL_POOL_LOCK: Mutex<()> = Mutex::new(());

/// A small victim assembled from substrate layers.
struct Net(Sequential);

impl Net {
    /// Total scalar weights of [`Net::mlp`]: 12×16 + 16 + 16×4 + 4.
    const MLP_WEIGHTS: usize = 12 * 16 + 16 + 16 * 4 + 4;

    fn mlp(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let mut seq = Sequential::new();
        seq.push(Box::new(Linear::new(12, 16, true, &mut rng)));
        seq.push(Box::new(Relu::new()));
        seq.push(Box::new(Linear::new(16, 4, true, &mut rng)));
        Net(seq)
    }

    fn cnn(seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let mut seq = Sequential::new();
        seq.push(Box::new(Conv2d::new(
            ConvGeometry {
                in_channels: 1,
                out_channels: 4,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            true,
            &mut rng,
        )));
        seq.push(Box::new(Relu::new()));
        seq.push(Box::new(GlobalAvgPool::new()));
        seq.push(Box::new(Linear::new(4, 3, true, &mut rng)));
        Net(seq)
    }
}

impl Network for Net {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        self.0.forward_mode(input, mode)
    }
    fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        self.0.backward(grad_logits)
    }
    fn params(&self) -> Vec<&Parameter> {
        self.0.params()
    }
    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        self.0.params_mut()
    }
    fn describe(&self) -> String {
        self.0.describe()
    }
}

fn deployed_mlp(seed: u64) -> Net {
    let mut net = Net::mlp(seed);
    net.deploy().unwrap();
    net
}

fn deployed_cnn(seed: u64) -> Net {
    let mut net = Net::cnn(seed);
    net.deploy().unwrap();
    net
}

/// Deterministic pseudo-random fill (xorshift), avoiding any dependence
/// on the vendored rand stub's stream.
fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

fn argmax(row: &[f32]) -> usize {
    row.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap()
}

#[test]
fn int8_logits_are_bit_identical_at_every_thread_count() {
    let _guard = GLOBAL_POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut mlp = deployed_mlp(40);
    let mut cnn = deployed_cnn(41);
    let x_mlp = Tensor::from_vec(fill(7, 8 * 12), &[8, 12]);
    let x_cnn = Tensor::from_vec(fill(8, 8 * 36), &[8, 1, 6, 6]);

    rhb_par::set_global_threads(1);
    let ref_mlp = mlp.forward(&x_mlp, Mode::Int8);
    let ref_cnn = cnn.forward(&x_cnn, Mode::Int8);
    for threads in [2, 3, 4] {
        rhb_par::set_global_threads(threads);
        let y_mlp = mlp.forward(&x_mlp, Mode::Int8);
        let y_cnn = cnn.forward(&x_cnn, Mode::Int8);
        assert_eq!(ref_mlp.data(), y_mlp.data(), "mlp at {threads} threads");
        assert_eq!(ref_cnn.data(), y_cnn.data(), "cnn at {threads} threads");
    }
    rhb_par::set_global_threads(rhb_par::default_threads());
}

#[test]
fn int8_outputs_are_batch_invariant_through_a_cnn() {
    let mut net = deployed_cnn(42);
    let x = Tensor::from_vec(fill(9, 6 * 36), &[6, 1, 6, 6]);
    let y_all = net.forward(&x, Mode::Int8);
    let classes = y_all.shape().dim(1);
    for i in 0..6 {
        let xi = Tensor::from_vec(x.data()[i * 36..(i + 1) * 36].to_vec(), &[1, 1, 6, 6]);
        let yi = net.forward(&xi, Mode::Int8);
        assert_eq!(
            yi.data(),
            &y_all.data()[i * classes..(i + 1) * classes],
            "sample {i} depends on its batchmates"
        );
    }
}

/// Int8 inference reads weight steps straight off the quantization grid,
/// so a deployed model's int8 logits must agree with the fake-quant f32
/// reference on every eval-set classification (here: a fixed seed
/// checked empirically, the integration-level half of the zoo test).
#[test]
fn engines_agree_on_argmax_for_a_deployed_model() {
    let mut net = deployed_mlp(43);
    let x = Tensor::from_vec(fill(10, 32 * 12), &[32, 12]);
    let y_f32 = net.forward(&x, Mode::Eval);
    let y_i8 = net.forward(&x, Mode::Int8);
    for (b, (rf, ri)) in y_f32
        .data()
        .chunks(4)
        .zip(y_i8.data().chunks(4))
        .enumerate()
    {
        assert_eq!(argmax(rf), argmax(ri), "engines disagree on sample {b}");
    }
}

/// Regression for the `load_into` panic path: feeding a weight file to a
/// network with a different parameter structure must be a
/// [`NnError::MalformedWeightFile`], not an assertion failure.
#[test]
fn load_into_structure_mismatch_is_an_error_not_a_panic() {
    let mlp = deployed_mlp(44);
    let wf = WeightFile::from_network(&mlp);
    let mut other = deployed_cnn(45);
    let err = wf.load_into(&mut other).unwrap_err();
    assert!(matches!(err, NnError::MalformedWeightFile(_)), "{err:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite contract: `flip_bit` on the serialized weight-file image
    /// followed by int8 inference is the *same attack* as flipping the
    /// corresponding `QuantizedTensor` step and running the fake-quant
    /// f32 reference. Both corrupted models are byte-identical (exact
    /// int8 and f32 logit equality across the two paths), and the two
    /// engines pick the same class whenever the f32 margin exceeds the
    /// observed requantization envelope.
    #[test]
    fn weight_file_flip_equals_quantized_step_flip(
        seed in 0u64..500,
        widx in 0usize..Net::MLP_WEIGHTS,
        bit in 0u8..8,
    ) {
        // Path A: flip the bit in the mmap'd weight-file image.
        let mut a = deployed_mlp(seed);
        let mut wf = WeightFile::from_network(&a);
        wf.flip_bit(ByteLocation::from_flat(widx), bit).unwrap();
        wf.load_into(&mut a).unwrap();

        // Path B: flip the same bit in the in-memory quantized step.
        let mut b = deployed_mlp(seed);
        let mut images = b.quantized_params();
        let (mut pi, mut off) = (0usize, widx);
        while off >= images[pi].numel() {
            off -= images[pi].numel();
            pi += 1;
        }
        images[pi].flip_bit(off, bit).unwrap();
        b.load_quantized(&images);

        let x = Tensor::from_vec(fill(seed ^ 0x5a5a, 4 * 12), &[4, 12]);
        let yi8_a = a.forward(&x, Mode::Int8);
        let yi8_b = b.forward(&x, Mode::Int8);
        let yf32_a = a.forward(&x, Mode::Eval);
        let yf32_b = b.forward(&x, Mode::Eval);

        // The two flip paths corrupted the same weight: both engines are
        // bit-identical across them.
        prop_assert_eq!(yi8_a.data(), yi8_b.data());
        prop_assert_eq!(yf32_a.data(), yf32_b.data());

        // Cross-engine argmax parity, guarded by the per-row envelope.
        for (ri, rf) in yi8_a.data().chunks(4).zip(yf32_b.data().chunks(4)) {
            let envelope = ri
                .iter()
                .zip(rf)
                .map(|(p, q)| (p - q).abs())
                .fold(0f32, f32::max);
            prop_assert!(envelope.is_finite());
            let mut sorted: Vec<f32> = rf.to_vec();
            sorted.sort_by(|p, q| q.total_cmp(p));
            let margin = sorted[0] - sorted[1];
            if margin > 2.0 * envelope {
                prop_assert_eq!(argmax(ri), argmax(rf));
            }
        }
    }

    /// Packed-cache invalidation contract: a bit flip delivered via
    /// `load_quantized` must never be masked by a stale packed-weight
    /// panel. A model whose caches are warm (one int8 forward already
    /// ran) produces logits bit-identical to a fresh model flipped
    /// before its first forward — serially and multi-threaded.
    #[test]
    fn packed_caches_never_mask_a_weight_flip(
        seed in 0u64..500,
        widx in 0usize..36,
        bit in 0u8..8,
    ) {
        let _guard = GLOBAL_POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let x = Tensor::from_vec(fill(seed ^ 0xc0de, 4 * 36), &[4, 1, 6, 6]);

        for threads in [1usize, 4] {
            rhb_par::set_global_threads(threads);

            // Warm path: forward once to build the panels, then flip the
            // conv weight (params[0], 1·4·3·3 = 36 steps) and reload.
            let mut warm = deployed_cnn(seed);
            let _ = warm.forward(&x, Mode::Int8);
            let mut images = warm.quantized_params();
            images[0].flip_bit(widx, bit).unwrap();
            warm.load_quantized(&images);
            let y_warm = warm.forward(&x, Mode::Int8);

            // Cold path: same flip, but before any int8 forward.
            let mut cold = deployed_cnn(seed);
            let mut images = cold.quantized_params();
            images[0].flip_bit(widx, bit).unwrap();
            cold.load_quantized(&images);
            let y_cold = cold.forward(&x, Mode::Int8);

            prop_assert_eq!(
                y_warm.data(),
                y_cold.data(),
                "stale panel at {} threads", threads
            );
        }
        rhb_par::set_global_threads(rhb_par::default_threads());
    }
}
