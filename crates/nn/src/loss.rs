//! Softmax cross-entropy loss.

use crate::tensor::Tensor;

/// Result of a softmax cross-entropy evaluation.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// Gradient of the mean loss w.r.t. the logits, shape `[batch, classes]`.
    pub grad_logits: Tensor,
    /// Softmax probabilities, shape `[batch, classes]`.
    pub probs: Tensor,
}

/// Numerically stable softmax over the last dimension of a `[batch, classes]`
/// tensor.
pub fn softmax(logits: &Tensor) -> Tensor {
    let dims = logits.shape().dims();
    assert_eq!(dims.len(), 2, "softmax expects [batch, classes]");
    let classes = dims[1];
    let mut out = vec![0.0f32; logits.numel()];
    for (row_in, row_out) in logits.data().chunks(classes).zip(out.chunks_mut(classes)) {
        let max = row_in.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (o, &v) in row_out.iter_mut().zip(row_in) {
            *o = (v - max).exp();
            sum += *o;
        }
        for o in row_out.iter_mut() {
            *o /= sum;
        }
    }
    Tensor::from_vec(out, dims)
}

/// Computes mean softmax cross-entropy of `logits` against integer `targets`.
///
/// Returns the loss value, the gradient w.r.t. the logits (already averaged
/// over the batch, ready to feed into [`Layer::backward`]), and the softmax
/// probabilities.
///
/// [`Layer::backward`]: crate::layer::Layer::backward
///
/// # Panics
///
/// Panics if `targets.len()` differs from the batch size or any target is
/// out of class range.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> LossOutput {
    let dims = logits.shape().dims();
    assert_eq!(dims.len(), 2, "cross_entropy expects [batch, classes]");
    let (batch, classes) = (dims[0], dims[1]);
    assert_eq!(targets.len(), batch, "one target per batch row required");
    let probs = softmax(logits);
    let mut loss = 0.0f32;
    let mut grad = probs.data().to_vec();
    for (b, &t) in targets.iter().enumerate() {
        assert!(t < classes, "target {t} out of range for {classes} classes");
        let p = probs.data()[b * classes + t].max(1e-12);
        loss -= p.ln();
        grad[b * classes + t] -= 1.0;
    }
    let scale = 1.0 / batch as f32;
    for g in &mut grad {
        *g *= scale;
    }
    LossOutput {
        loss: loss * scale,
        grad_logits: Tensor::from_vec(grad, dims),
        probs,
    }
}

/// Fraction of rows whose argmax equals the target (classification via
/// [`crate::network::argmax_classes`], sharing its tie and NaN rules).
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f64 {
    let batch = logits.shape().dim(0);
    assert_eq!(targets.len(), batch);
    let correct = crate::network::argmax_classes(logits)
        .iter()
        .zip(targets)
        .filter(|(p, t)| p == t)
        .count();
    correct as f64 / batch as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = softmax(&logits);
        for row in p.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![101.0, 102.0, 103.0], &[1, 3]);
        let pa = softmax(&a);
        let pb = softmax(&b);
        for (x, y) in pa.data().iter().zip(pb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let logits = Tensor::from_vec(vec![20.0, 0.0, 0.0], &[1, 3]);
        let out = cross_entropy(&logits, &[0]);
        assert!(out.loss < 1e-6);
    }

    #[test]
    fn uniform_prediction_loss_is_log_classes() {
        let logits = Tensor::zeros(&[1, 4]);
        let out = cross_entropy(&logits, &[2]);
        assert!((out.loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![0.3, -0.8, 0.5, 0.1], &[1, 4]);
        let out = cross_entropy(&logits, &[1]);
        let eps = 1e-3;
        for i in 0..4 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let numeric =
                (cross_entropy(&lp, &[1]).loss - cross_entropy(&lm, &[1]).loss) / (2.0 * eps);
            let analytic = out.grad_logits.data()[i];
            assert!(
                (analytic - numeric).abs() < 1e-3,
                "logit {i}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-9);
        assert!((accuracy(&logits, &[1, 1, 0]) - 2.0 / 3.0).abs() < 1e-9);
    }
}
