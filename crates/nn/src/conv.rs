//! 2-D convolution via im2col, batched over images on the global pool.
//!
//! The forward pass lowers each image to a column matrix (im2col) and
//! multiplies by the flattened kernel through the blocked GEMM kernels in
//! [`crate::gemm`]; the backward pass runs the transposed lowering
//! (col2im) to recover input gradients. Both passes parallelize over the
//! batch dimension: every image's lowering, GEMM, and scatter is
//! independent, and the per-image gradient partials are folded back in
//! batch order afterwards, so results are bit-identical at every thread
//! count (see `DESIGN.md`, "Threading model").
//!
//! All temporaries — column matrices, effective weights, gradient
//! partials — live in layer-owned [`ScratchBuffer`]s that grow to the
//! high-water mark of the shapes seen and are reused across calls.

use crate::error::{NnError, Result};
use crate::gemm;
use crate::gemm_i8;
use crate::init::{kaiming_normal, Rng};
use crate::layer::{Int8Epilogue, Layer, Mode};
use crate::param::Parameter;
use crate::quant::QuantScheme;
use crate::scratch::{ScratchBuffer, ScratchI32, ScratchI8};
use crate::tensor::Tensor;

/// Minimum whole-layer flop count (`2·batch·M·K·N`) before a conv
/// forward is split across the pool at all.
///
/// Below this the per-dispatch cost of waking worker threads exceeds
/// the GEMM work itself — the zoo-scale models that exposed the
/// 2-thread int8 regression in `BENCH_5` spend ~1–2 µs of arithmetic
/// per conv call against ~10 µs of pool hand-off — so small layers run
/// inline on the calling thread at every thread count. Batch chunks are
/// independent images, so this changes scheduling only: outputs are
/// bit-identical either way (see `DESIGN.md`, "Threading model").
pub const BATCH_PAR_MIN_FLOPS: usize = 1 << 21;

/// Runs a prepared batch task set: inline when there is only one task
/// (no pool hand-off), on the global pool otherwise.
fn run_batch_tasks(tasks: Vec<rhb_par::Task<'_>>) {
    if tasks.len() == 1 {
        for t in tasks {
            t();
        }
    } else {
        rhb_par::pool().run(tasks);
    }
}

/// Spatial geometry of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every side.
    pub padding: usize,
}

impl ConvGeometry {
    /// Output spatial side for an input of side `in_side`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the kernel does not fit the
    /// padded input.
    pub fn out_side(&self, in_side: usize) -> Result<usize> {
        let padded = in_side + 2 * self.padding;
        if padded < self.kernel {
            return Err(NnError::ShapeMismatch {
                expected: vec![self.kernel],
                actual: vec![padded],
                op: "conv kernel vs padded input",
            });
        }
        Ok((padded - self.kernel) / self.stride + 1)
    }
}

/// A 2-D convolution layer over `[batch, channels, height, width]` tensors.
///
/// The kernel tensor has shape `[out_ch, in_ch, k, k]`. The forward pass
/// lowers each image to a column matrix (im2col) and multiplies by the
/// flattened kernel, the standard CPU formulation; the backward pass runs the
/// transposed lowering (col2im) to recover input gradients — which the
/// trigger-learning step of the attack needs all the way back to the pixels.
pub struct Conv2d {
    geom: ConvGeometry,
    weight: Parameter,
    bias: Option<Parameter>,
    cached: Option<CachedForward>,
    scratch: ConvScratch,
    /// Int8 engine: persistent packed weight panels (see
    /// [`ConvPackedCache`]).
    packed: Option<ConvPackedCache>,
}

/// Persistent int8 weight state: the kernel's `i8` steps quantized and
/// packed into GEMM panels **once per weight generation** instead of on
/// every forward call.
///
/// Invalidation contract: the cache is valid iff
/// `weight.generation() == self.generation` (see
/// [`Parameter::generation`]). Every weight mutation path — optimizer
/// steps, `deploy`, and crucially `load_quantized` (the Rowhammer flip
/// injection path) — advances the generation, so a mid-run bit flip
/// always repacks before the next int8 forward; a stale panel can never
/// mask a flip.
struct ConvPackedCache {
    /// `[out_ch, C·k·k]` weight steps packed for [`gemm_i8::gemm_i8_pa_serial`].
    pa: gemm_i8::PackedA,
    /// The frozen weight quantization scheme at pack time.
    scheme: QuantScheme,
    /// `Parameter::generation()` observed at pack time.
    generation: u64,
}

/// Returns the packed weight panels, rebuilding them first if `slot` is
/// empty or stale. Free function over disjoint `Conv2d` fields so the
/// returned borrow ties only to `slot`, leaving the other scratch
/// arenas free for the caller.
fn ensure_packed<'a>(
    slot: &'a mut Option<ConvPackedCache>,
    weight: &Parameter,
    wq: &mut ScratchI8,
    m: usize,
    k: usize,
) -> (&'a gemm_i8::PackedA, QuantScheme) {
    let generation = weight.generation();
    if slot.as_ref().is_none_or(|c| c.generation != generation) {
        let (steps, scheme) = weight.quantized_into(wq);
        *slot = Some(ConvPackedCache {
            pa: gemm_i8::PackedA::pack(steps, m, k),
            scheme,
            generation,
        });
        rhb_telemetry::add_counter("nn/int8_weight_repacks", 1);
    }
    let c = slot.as_ref().expect("slot was just filled");
    (&c.pa, c.scheme)
}

/// Shape of the last training-mode forward; the column matrices
/// themselves live in `ConvScratch::cols` (one contiguous block for the
/// whole batch) instead of a per-image `Vec<Tensor>`, so backward reads
/// them in place without any copies.
struct CachedForward {
    in_side: usize,
    batch: usize,
}

/// Layer-owned arenas, reused across calls (see module docs).
#[derive(Debug, Default)]
struct ConvScratch {
    /// Effective (fake-quantized) kernel, flattened to `[out_ch, C*k*k]`.
    wmat: ScratchBuffer,
    /// Effective bias, `[out_ch]`.
    bias_eff: ScratchBuffer,
    /// Training-mode im2col columns for the whole batch — the forward
    /// cache consumed by `backward`.
    cols: ScratchBuffer,
    /// Eval-mode columns and backward `dcols`; kept separate from `cols`
    /// so eval forwards between a training forward and its backward do
    /// not clobber the cache.
    work: ScratchBuffer,
    /// Per-image `dW` partials, `[batch, out_ch * C*k*k]`.
    dw: ScratchBuffer,
    /// Batch-folded `dW`.
    dw_acc: ScratchBuffer,
    /// Per-image bias-gradient partials, `[batch, out_ch]`.
    dbias: ScratchBuffer,
    /// Int8 engine: quantized kernel steps, `[out_ch, C*k*k]`.
    wq: ScratchI8,
    /// Int8 engine: quantized input activations, `[batch, C, H, W]`.
    xq: ScratchI8,
    /// Int8 engine: quantized im2col columns for the whole batch.
    colsq: ScratchI8,
    /// Int8 engine: `i32` GEMM accumulators, `[batch, out_ch * out²]`.
    acc: ScratchI32,
}

impl std::fmt::Debug for Conv2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Conv2d({:?})", self.geom)
    }
}

/// Lowers one image `[C, H, W]` into a `[C*k*k, out*out]` column matrix.
/// Generic over the element type: the f32 path lowers raw activations,
/// the int8 path lowers already-quantized steps (zero padding is exact
/// in both — the symmetric scheme has a zero zero-point).
fn im2col_into<T: Copy + Default>(
    g: ConvGeometry,
    image: &[T],
    in_side: usize,
    out: usize,
    cols: &mut [T],
) {
    cols.fill(T::default());
    for c in 0..g.in_channels {
        let chan = &image[c * in_side * in_side..(c + 1) * in_side * in_side];
        for ky in 0..g.kernel {
            for kx in 0..g.kernel {
                let row = (c * g.kernel + ky) * g.kernel + kx;
                let row_base = row * out * out;
                for oy in 0..out {
                    let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                    if iy < 0 || iy as usize >= in_side {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..out {
                        let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                        if ix < 0 || ix as usize >= in_side {
                            continue;
                        }
                        cols[row_base + oy * out + ox] = chan[iy * in_side + ix as usize];
                    }
                }
            }
        }
    }
}

/// Strided variant of [`im2col_into`] for the int8 engine's
/// merged-batch GEMM: lowers one image into its `out²`-wide column band
/// of a `[C*k*k, row_stride]` matrix shared by a whole batch chunk
/// (band `i` starts at column `col_offset = i·out²`). The caller
/// zero-fills the matrix once per chunk; this only writes in-bounds
/// gathers, so padding stays exactly zero (the symmetric scheme has a
/// zero zero-point).
fn im2col_strided_into<T: Copy>(
    g: ConvGeometry,
    image: &[T],
    in_side: usize,
    out: usize,
    cols: &mut [T],
    row_stride: usize,
    col_offset: usize,
) {
    for c in 0..g.in_channels {
        let chan = &image[c * in_side * in_side..(c + 1) * in_side * in_side];
        for ky in 0..g.kernel {
            for kx in 0..g.kernel {
                let row = (c * g.kernel + ky) * g.kernel + kx;
                let row_base = row * row_stride + col_offset;
                if g.stride == 1 {
                    // Unit stride: the valid `ox` range maps to a
                    // contiguous run of the input row — one slice copy
                    // per output row instead of per-element gathers.
                    let ox_lo = g.padding.saturating_sub(kx);
                    let ox_hi = (in_side + g.padding).saturating_sub(kx).min(out);
                    if ox_lo >= ox_hi {
                        continue;
                    }
                    let run = ox_hi - ox_lo;
                    for oy in 0..out {
                        let iy = (oy + ky) as isize - g.padding as isize;
                        if iy < 0 || iy as usize >= in_side {
                            continue;
                        }
                        let src = iy as usize * in_side + ox_lo + kx - g.padding;
                        let dst = row_base + oy * out + ox_lo;
                        cols[dst..dst + run].copy_from_slice(&chan[src..src + run]);
                    }
                } else {
                    for oy in 0..out {
                        let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                        if iy < 0 || iy as usize >= in_side {
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..out {
                            let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                            if ix < 0 || ix as usize >= in_side {
                                continue;
                            }
                            cols[row_base + oy * out + ox] = chan[iy * in_side + ix as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Scatters a `[C*k*k, out*out]` column-gradient back onto an image.
fn col2im_into(g: ConvGeometry, cols: &[f32], in_side: usize, out: usize, image: &mut [f32]) {
    image.fill(0.0);
    for c in 0..g.in_channels {
        for ky in 0..g.kernel {
            for kx in 0..g.kernel {
                let row = (c * g.kernel + ky) * g.kernel + kx;
                let row_base = row * out * out;
                for oy in 0..out {
                    let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                    if iy < 0 || iy as usize >= in_side {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..out {
                        let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                        if ix < 0 || ix as usize >= in_side {
                            continue;
                        }
                        image[(c * in_side + iy) * in_side + ix as usize] +=
                            cols[row_base + oy * out + ox];
                    }
                }
            }
        }
    }
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    pub fn new(geom: ConvGeometry, bias: bool, rng: &mut Rng) -> Self {
        let fan_in = geom.in_channels * geom.kernel * geom.kernel;
        let weight = Parameter::new(
            format!(
                "conv{}x{}k{}.weight",
                geom.in_channels, geom.out_channels, geom.kernel
            ),
            kaiming_normal(
                &[
                    geom.out_channels,
                    geom.in_channels,
                    geom.kernel,
                    geom.kernel,
                ],
                fan_in,
                rng,
            ),
        );
        let bias = bias.then(|| {
            Parameter::new(
                format!(
                    "conv{}x{}k{}.bias",
                    geom.in_channels, geom.out_channels, geom.kernel
                ),
                Tensor::zeros(&[geom.out_channels]),
            )
        });
        Conv2d {
            geom,
            weight,
            bias,
            cached: None,
            scratch: ConvScratch::default(),
            packed: None,
        }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> ConvGeometry {
        self.geom
    }

    /// The int8 engine's forward pass. Each image is quantized under its
    /// own dynamic activation scale (so outputs are batch-size
    /// invariant — see `DESIGN.md`, "Inference engines"), lowered to
    /// `i8` columns directly (no f32 column buffer), multiplied against
    /// the persistent packed weight panels with exact `i32`
    /// accumulation, and requantized back to the activation scale with
    /// the f32 bias — and, when fused, the following Relu/MaxPool —
    /// applied in the same sweep.
    ///
    /// Each batch chunk runs ONE merged GEMM over `chunk·out²` columns
    /// (images side by side) instead of a GEMM per image, amortizing the
    /// per-call blocking and packing overhead that dominates at zoo
    /// scale. Integer accumulation is exact under any column blocking
    /// and per-image scales are applied only in the epilogue, so the
    /// output is bit-identical at every thread count and chunking.
    fn forward_int8(&mut self, input: &Tensor, epi: Int8Epilogue) -> Tensor {
        let dims = input.shape().dims();
        assert_eq!(dims.len(), 4, "conv input must be [batch, C, H, W]");
        let (batch, chans, in_side) = (dims[0], dims[1], dims[2]);
        assert_eq!(chans, self.geom.in_channels, "channel mismatch");
        assert_eq!(dims[2], dims[3], "only square inputs supported");
        let g = self.geom;
        let out = g
            .out_side(in_side)
            .expect("kernel must fit the padded input");
        let rows = g.in_channels * g.kernel * g.kernel;
        let ow2 = out * out;
        let image_len = chans * in_side * in_side;
        // Geometry after the fused epilogue (pooling shrinks the side).
        let out_final = match epi {
            Int8Epilogue::MaxPool { window } => {
                assert!(
                    out >= window && out.is_multiple_of(window),
                    "caller must decline unfusable pool shapes"
                );
                out / window
            }
            _ => out,
        };
        let fin2 = out_final * out_final;
        let fout_len = g.out_channels * fin2;

        let (pa, w_scheme) = ensure_packed(
            &mut self.packed,
            &self.weight,
            &mut self.scratch.wq,
            g.out_channels,
            rows,
        );
        let bias_eff: Option<&[f32]> = self
            .bias
            .as_ref()
            .map(|b| b.effective_into(&mut self.scratch.bias_eff));
        let xq_all = self.scratch.xq.filled(batch * image_len);
        let mut img_deq = vec![0.0f32; batch];
        for (b, (src, dst)) in input
            .data()
            .chunks(image_len)
            .zip(xq_all.chunks_mut(image_len))
            .enumerate()
        {
            let a_scheme = QuantScheme::for_activations(src);
            a_scheme.quantize_into(src, dst);
            img_deq[b] = a_scheme.scale * w_scheme.scale;
            rhb_telemetry::observe!("nn/requant_scale", f64::from(img_deq[b]));
        }
        let xq_all: &[i8] = xq_all;
        let img_deq: &[f32] = &img_deq;
        let colsq_all = self.scratch.colsq.filled(batch * rows * ow2);
        let acc_all = self.scratch.acc.filled(batch * g.out_channels * ow2);

        let mut output = vec![0.0f32; batch * fout_len];
        let flops = 2 * batch * g.out_channels * rows * ow2;
        let threads = if flops < BATCH_PAR_MIN_FLOPS {
            1
        } else {
            rhb_par::pool().threads()
        };
        let ranges = rhb_par::split_range(batch, threads, 1);
        let out_chunks = rhb_par::split_slice_mut(&mut output, &ranges, fout_len);
        let col_chunks = rhb_par::split_slice_mut(colsq_all, &ranges, rows * ow2);
        let acc_chunks = rhb_par::split_slice_mut(acc_all, &ranges, g.out_channels * ow2);
        let is_1x1 = g.kernel == 1 && g.stride == 1 && g.padding == 0;
        let tasks: Vec<rhb_par::Task<'_>> = ranges
            .iter()
            .zip(
                out_chunks
                    .into_iter()
                    .zip(col_chunks.into_iter().zip(acc_chunks)),
            )
            .map(|(r, (out_chunk, (col_chunk, acc_chunk)))| {
                let r = r.clone();
                Box::new(move || {
                    let clen = r.len();
                    let cstride = clen * ow2;
                    // Lower the whole chunk into one [rows, clen·out²]
                    // column matrix, images side by side.
                    if is_1x1 {
                        // 1×1 s1 p0: column row r of image i IS channel
                        // r — a straight strided copy, every element
                        // written (no zero-fill needed).
                        for (i, b) in r.clone().enumerate() {
                            let image = &xq_all[b * image_len..(b + 1) * image_len];
                            for c in 0..rows {
                                let dst = c * cstride + i * ow2;
                                col_chunk[dst..dst + ow2]
                                    .copy_from_slice(&image[c * ow2..(c + 1) * ow2]);
                            }
                        }
                    } else {
                        col_chunk[..rows * cstride].fill(0);
                        for (i, b) in r.clone().enumerate() {
                            let image = &xq_all[b * image_len..(b + 1) * image_len];
                            im2col_strided_into(
                                g,
                                image,
                                in_side,
                                out,
                                col_chunk,
                                cstride,
                                i * ow2,
                            );
                        }
                    }
                    // One merged GEMM for the chunk.
                    gemm_i8::gemm_i8_pa_serial(
                        pa,
                        &col_chunk[..rows * cstride],
                        acc_chunk,
                        cstride,
                    );
                    // Per-image requantize epilogue (each image has its
                    // own deq scale), with the fused tail applied in the
                    // same sweep.
                    for (i, b) in r.clone().enumerate() {
                        let deq = img_deq[b];
                        let dst = &mut out_chunk[i * fout_len..(i + 1) * fout_len];
                        for oc in 0..g.out_channels {
                            let bval = bias_eff.map_or(0.0, |bv| bv[oc]);
                            let arow =
                                &acc_chunk[oc * cstride + i * ow2..oc * cstride + i * ow2 + ow2];
                            match epi {
                                Int8Epilogue::None => {
                                    for (o, &a) in
                                        dst[oc * ow2..(oc + 1) * ow2].iter_mut().zip(arow)
                                    {
                                        *o = a as f32 * deq + bval;
                                    }
                                }
                                Int8Epilogue::Relu => {
                                    for (o, &a) in
                                        dst[oc * ow2..(oc + 1) * ow2].iter_mut().zip(arow)
                                    {
                                        *o = (a as f32 * deq + bval).max(0.0);
                                    }
                                }
                                Int8Epilogue::MaxPool { window } => {
                                    // `acc ↦ acc·deq + bias` is monotone
                                    // (deq > 0), so the window max over
                                    // i32 accumulators requantizes to
                                    // exactly the max of the requantized
                                    // values.
                                    let drow = &mut dst[oc * fin2..(oc + 1) * fin2];
                                    for py in 0..out_final {
                                        for px in 0..out_final {
                                            let mut m = i32::MIN;
                                            for wy in 0..window {
                                                let base = (py * window + wy) * out + px * window;
                                                for &a in &arow[base..base + window] {
                                                    m = m.max(a);
                                                }
                                            }
                                            drow[py * out_final + px] = m as f32 * deq + bval;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }) as rhb_par::Task<'_>
            })
            .collect();
        run_batch_tasks(tasks);
        Tensor::from_vec(output, &[batch, g.out_channels, out_final, out_final])
    }
}

impl Layer for Conv2d {
    fn forward_mode(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Int8 {
            return self.forward_int8(input, Int8Epilogue::None);
        }
        let dims = input.shape().dims();
        assert_eq!(dims.len(), 4, "conv input must be [batch, C, H, W]");
        let (batch, chans, in_side) = (dims[0], dims[1], dims[2]);
        assert_eq!(chans, self.geom.in_channels, "channel mismatch");
        assert_eq!(dims[2], dims[3], "only square inputs supported");
        let g = self.geom;
        let out = g
            .out_side(in_side)
            .expect("kernel must fit the padded input");
        let rows = g.in_channels * g.kernel * g.kernel;
        let ow2 = out * out;
        let gout_len = g.out_channels * ow2;
        let image_len = chans * in_side * in_side;

        let wmat = self.weight.effective_into(&mut self.scratch.wmat);
        let bias_eff: Option<&[f32]> = self
            .bias
            .as_ref()
            .map(|b| b.effective_into(&mut self.scratch.bias_eff));
        // Training forwards fill the cache arena; eval forwards use the
        // separate work arena so an interleaved eval pass cannot clobber
        // columns that a pending backward still needs.
        let colbuf = if mode.caches() {
            &mut self.scratch.cols
        } else {
            &mut self.scratch.work
        };
        let cols_all = colbuf.filled(batch * rows * ow2);

        let mut output = vec![0.0f32; batch * gout_len];
        let flops = 2 * batch * g.out_channels * rows * ow2;
        let threads = if flops < BATCH_PAR_MIN_FLOPS {
            1
        } else {
            rhb_par::pool().threads()
        };
        let ranges = rhb_par::split_range(batch, threads, 1);
        let out_chunks = rhb_par::split_slice_mut(&mut output, &ranges, gout_len);
        let col_chunks = rhb_par::split_slice_mut(cols_all, &ranges, rows * ow2);
        let input_data = input.data();
        let tasks: Vec<rhb_par::Task<'_>> = ranges
            .iter()
            .zip(out_chunks.into_iter().zip(col_chunks))
            .map(|(r, (out_chunk, col_chunk))| {
                let r = r.clone();
                Box::new(move || {
                    for (i, b) in r.clone().enumerate() {
                        let image = &input_data[b * image_len..(b + 1) * image_len];
                        let cols = &mut col_chunk[i * rows * ow2..(i + 1) * rows * ow2];
                        im2col_into(g, image, in_side, out, cols);
                        let dst = &mut out_chunk[i * gout_len..(i + 1) * gout_len];
                        gemm::gemm_serial(wmat, cols, dst, g.out_channels, rows, ow2);
                        if let Some(bv) = bias_eff {
                            for (oc, &bval) in bv.iter().enumerate() {
                                for v in &mut dst[oc * ow2..(oc + 1) * ow2] {
                                    *v += bval;
                                }
                            }
                        }
                    }
                }) as rhb_par::Task<'_>
            })
            .collect();
        run_batch_tasks(tasks);

        if mode.caches() {
            self.cached = Some(CachedForward { in_side, batch });
        }
        Tensor::from_vec(output, &[batch, g.out_channels, out, out])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self
            .cached
            .take()
            .expect("backward called without training-mode forward");
        let g = self.geom;
        let dims = grad_output.shape().dims();
        let (batch, out) = (dims[0], dims[2]);
        assert_eq!(
            batch, cache.batch,
            "grad batch mismatch with cached forward"
        );
        let in_side = cache.in_side;
        let rows = g.in_channels * g.kernel * g.kernel;
        let ow2 = out * out;
        let gout_len = g.out_channels * ow2;
        let image_len = g.in_channels * in_side * in_side;
        let wk = g.out_channels * rows;

        let wmat = self.weight.effective_into(&mut self.scratch.wmat);
        let cols_all = self.scratch.cols.slice(batch * rows * ow2);
        let dw_all = self.scratch.dw.filled(batch * wk);
        let dcols_all = self.scratch.work.filled(batch * rows * ow2);
        let dbias_all = self.scratch.dbias.zeroed(batch * g.out_channels);
        let has_bias = self.bias.is_some();

        let mut grad_input = vec![0.0f32; batch * image_len];
        let pool = rhb_par::pool();
        let ranges = rhb_par::split_range(batch, pool.threads(), 1);
        let gin_chunks = rhb_par::split_slice_mut(&mut grad_input, &ranges, image_len);
        let dw_chunks = rhb_par::split_slice_mut(dw_all, &ranges, wk);
        let dcols_chunks = rhb_par::split_slice_mut(dcols_all, &ranges, rows * ow2);
        let dbias_chunks = rhb_par::split_slice_mut(dbias_all, &ranges, g.out_channels);
        let gout = grad_output.data();

        let tasks: Vec<rhb_par::Task<'_>> = ranges
            .iter()
            .zip(gin_chunks)
            .zip(dw_chunks)
            .zip(dcols_chunks)
            .zip(dbias_chunks)
            .map(|((((r, gin_c), dw_c), dcols_c), dbias_c)| {
                let r = r.clone();
                Box::new(move || {
                    for (i, b) in r.clone().enumerate() {
                        let gy = &gout[b * gout_len..(b + 1) * gout_len];
                        let cols = &cols_all[b * rows * ow2..(b + 1) * rows * ow2];
                        // dW_b = dY cols^T, stashed per image and folded
                        // below in batch order.
                        let dw = &mut dw_c[i * wk..(i + 1) * wk];
                        gemm::gemm_nt_serial(gy, cols, dw, g.out_channels, ow2, rows);
                        if has_bias {
                            for oc in 0..g.out_channels {
                                dbias_c[i * g.out_channels + oc] =
                                    gy[oc * ow2..(oc + 1) * ow2].iter().sum();
                            }
                        }
                        // dcols = W^T dY, then scatter back to the image.
                        let dcols = &mut dcols_c[i * rows * ow2..(i + 1) * rows * ow2];
                        gemm::gemm_tn_serial(wmat, gy, dcols, rows, g.out_channels, ow2);
                        let gimg = &mut gin_c[i * image_len..(i + 1) * image_len];
                        col2im_into(g, dcols, in_side, out, gimg);
                    }
                }) as rhb_par::Task<'_>
            })
            .collect();
        pool.run(tasks);

        // Serial folds in batch order: bit-identical to the single-thread
        // accumulation regardless of how the batch was chunked above.
        let dw_all = self.scratch.dw.slice(batch * wk);
        let dw_acc = self.scratch.dw_acc.zeroed(wk);
        for b in 0..batch {
            for (acc, &d) in dw_acc.iter_mut().zip(&dw_all[b * wk..(b + 1) * wk]) {
                *acc += d;
            }
        }
        for (gw, &acc) in self.weight.grad.data_mut().iter_mut().zip(&*dw_acc) {
            *gw += acc;
        }
        if let Some(bias) = &mut self.bias {
            let dbias_all = self.scratch.dbias.slice(batch * g.out_channels);
            let bg = bias.grad.data_mut();
            for b in 0..batch {
                for oc in 0..g.out_channels {
                    bg[oc] += dbias_all[b * g.out_channels + oc];
                }
            }
        }
        Tensor::from_vec(grad_input, &[batch, g.in_channels, in_side, in_side])
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }

    fn describe(&self) -> String {
        format!(
            "Conv2d({}->{}, k{}, s{}, p{})",
            self.geom.in_channels,
            self.geom.out_channels,
            self.geom.kernel,
            self.geom.stride,
            self.geom.padding
        )
    }

    fn op_name(&self) -> &'static str {
        "conv2d"
    }

    fn try_forward_int8_fused(&mut self, input: &Tensor, epi: Int8Epilogue) -> Option<Tensor> {
        let dims = input.shape().dims();
        if dims.len() != 4 || dims[2] != dims[3] {
            return None;
        }
        let out = self.geom.out_side(dims[2]).ok()?;
        if let Int8Epilogue::MaxPool { window } = epi {
            // Decline shapes the standalone MaxPool2d treats specially
            // (identity when side < window) or that don't tile evenly —
            // the pair then runs unfused and stays bit-identical.
            if out < window || out % window != 0 {
                return None;
            }
        }
        Some(self.forward_int8(input, epi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;

    fn tiny_conv(stride: usize, padding: usize) -> Conv2d {
        let mut rng = Rng::seed_from(9);
        Conv2d::new(
            ConvGeometry {
                in_channels: 2,
                out_channels: 3,
                kernel: 3,
                stride,
                padding,
            },
            true,
            &mut rng,
        )
    }

    #[test]
    fn output_shape_follows_geometry() {
        let mut conv = tiny_conv(1, 1);
        let y = conv.forward_mode(&Tensor::zeros(&[2, 2, 8, 8]), Mode::Eval);
        assert_eq!(y.shape().dims(), &[2, 3, 8, 8]);
        let mut strided = tiny_conv(2, 1);
        let y = strided.forward_mode(&Tensor::zeros(&[1, 2, 8, 8]), Mode::Eval);
        assert_eq!(y.shape().dims(), &[1, 3, 4, 4]);
    }

    #[test]
    fn oversized_kernel_is_a_shape_error_not_a_panic() {
        let g = ConvGeometry {
            in_channels: 1,
            out_channels: 1,
            kernel: 7,
            stride: 1,
            padding: 1,
        };
        // 4 + 2*1 = 6 < 7: the kernel cannot fit.
        let err = g.out_side(4).unwrap_err();
        assert!(matches!(err, NnError::ShapeMismatch { op, .. } if op.contains("conv")));
        assert_eq!(g.out_side(5).unwrap(), 1);
    }

    #[test]
    fn identity_kernel_copies_input() {
        let mut rng = Rng::seed_from(0);
        let mut conv = Conv2d::new(
            ConvGeometry {
                in_channels: 1,
                out_channels: 1,
                kernel: 1,
                stride: 1,
                padding: 0,
            },
            false,
            &mut rng,
        );
        conv.weight.value.data_mut()[0] = 1.0;
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = conv.forward_mode(&x, Mode::Eval);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution_value() {
        let mut rng = Rng::seed_from(0);
        let mut conv = Conv2d::new(
            ConvGeometry {
                in_channels: 1,
                out_channels: 1,
                kernel: 3,
                stride: 1,
                padding: 0,
            },
            false,
            &mut rng,
        );
        // All-ones kernel: output = sum of the 3x3 window.
        for v in conv.weight.value.data_mut() {
            *v = 1.0;
        }
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let y = conv.forward_mode(&x, Mode::Eval);
        assert_eq!(y.data(), &[45.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut conv = tiny_conv(1, 1);
        let mut rng = Rng::seed_from(21);
        let mut x = Tensor::zeros(&[1, 2, 5, 5]);
        for v in x.data_mut() {
            *v = rng.uniform(-1.0, 1.0);
        }
        let y = conv.forward(&x);
        let gin = conv.backward(&y.clone());
        let loss = |c: &mut Conv2d, x: &Tensor| -> f32 {
            c.forward_mode(x, Mode::Eval)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum()
        };
        let eps = 1e-2;
        // Spot-check a spread of weight coordinates.
        for idx in [0usize, 7, 19, 33, 53] {
            let analytic = conv.weight.grad.data()[idx];
            let orig = conv.weight.value.data()[idx];
            conv.weight.value.data_mut()[idx] = orig + eps;
            let lp = loss(&mut conv, &x);
            conv.weight.value.data_mut()[idx] = orig - eps;
            let lm = loss(&mut conv, &x);
            conv.weight.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "weight[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
        // Spot-check input coordinates.
        for idx in [0usize, 12, 24, 40] {
            let analytic = gin.data()[idx];
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let numeric = (loss(&mut conv, &xp) - loss(&mut conv, &xm)) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "input[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    fn random_input(dims: &[usize], seed: u64) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        let mut x = Tensor::zeros(dims);
        for v in x.data_mut() {
            *v = rng.uniform(-1.0, 1.0);
        }
        x
    }

    #[test]
    fn int8_output_is_batch_invariant_under_merged_gemm() {
        let mut conv = tiny_conv(1, 1);
        for p in conv.params_mut() {
            p.deploy().unwrap();
        }
        let x = random_input(&[3, 2, 6, 6], 11);
        let batched = conv.forward_mode(&x, Mode::Int8);
        let per_image_len = x.numel() / 3;
        let out_len = batched.numel() / 3;
        for b in 0..3 {
            let img = Tensor::from_vec(
                x.data()[b * per_image_len..(b + 1) * per_image_len].to_vec(),
                &[1, 2, 6, 6],
            );
            let single = conv.forward_mode(&img, Mode::Int8);
            assert_eq!(
                single.data(),
                &batched.data()[b * out_len..(b + 1) * out_len],
                "image {b}: merged-batch GEMM must be bit-identical to per-image"
            );
        }
    }

    #[test]
    fn int8_relu_and_maxpool_fusion_are_bit_identical_to_unfused() {
        use crate::pool::MaxPool2d;
        let mut conv = tiny_conv(1, 1);
        for p in conv.params_mut() {
            p.deploy().unwrap();
        }
        let x = random_input(&[2, 2, 8, 8], 13);
        let base = conv.forward_mode(&x, Mode::Int8);

        let fused_relu = conv
            .try_forward_int8_fused(&x, Int8Epilogue::Relu)
            .expect("relu fusion is always available");
        assert_eq!(fused_relu, base.map(|v| v.max(0.0)));

        let mut pool = MaxPool2d::new(2);
        let unfused_pool = pool.forward_mode(&base, Mode::Int8);
        let fused_pool = conv
            .try_forward_int8_fused(&x, Int8Epilogue::MaxPool { window: 2 })
            .expect("8x8 output tiles evenly by 2");
        assert_eq!(fused_pool, unfused_pool);
    }

    #[test]
    fn int8_fusion_declines_pool_shapes_the_layer_treats_specially() {
        let mut conv = tiny_conv(1, 1);
        for p in conv.params_mut() {
            p.deploy().unwrap();
        }
        let x = random_input(&[1, 2, 3, 3], 17);
        // out side 3: window 2 doesn't divide it; window 4 exceeds it
        // (standalone MaxPool2d would run its identity path).
        assert!(conv
            .try_forward_int8_fused(&x, Int8Epilogue::MaxPool { window: 2 })
            .is_none());
        assert!(conv
            .try_forward_int8_fused(&x, Int8Epilogue::MaxPool { window: 4 })
            .is_none());
    }

    #[test]
    fn packed_weight_cache_invalidates_on_bit_flip_reload() {
        let mut conv = tiny_conv(1, 1);
        for p in conv.params_mut() {
            p.deploy().unwrap();
        }
        let x = random_input(&[2, 2, 6, 6], 19);
        // Warm the packed cache, then flip a weight bit through the
        // quantized-image path (the Rowhammer injection route).
        let before = conv.forward_mode(&x, Mode::Int8);
        let mut q = conv.weight.quantized();
        q.flip_bit(5, 6).unwrap();
        conv.weight.load_quantized(&q);
        let after_warm = conv.forward_mode(&x, Mode::Int8);
        assert_ne!(
            before.data(),
            after_warm.data(),
            "flip must change the output"
        );
        // A cold-cache layer with the same flipped weights must agree
        // bit-for-bit: the warm cache may never mask a flip.
        let mut cold = tiny_conv(1, 1);
        for p in cold.params_mut() {
            p.deploy().unwrap();
        }
        cold.weight.load_quantized(&q);
        let after_cold = cold.forward_mode(&x, Mode::Int8);
        assert_eq!(after_warm.data(), after_cold.data());
    }

    #[test]
    fn eval_forward_does_not_clobber_the_training_cache() {
        let mut conv = tiny_conv(1, 1);
        let mut rng = Rng::seed_from(3);
        let mut x = Tensor::zeros(&[2, 2, 5, 5]);
        for v in x.data_mut() {
            *v = rng.uniform(-1.0, 1.0);
        }
        // Reference: train-forward then immediately backward.
        let y = conv.forward(&x);
        let gin_ref = conv.backward(&y.clone());
        let gw_ref = conv.weight.grad.clone();
        // Same, but with an eval forward (different input!) in between.
        conv.weight.zero_grad();
        if let Some(b) = &mut conv.bias {
            b.zero_grad();
        }
        let y2 = conv.forward(&x);
        assert_eq!(y.data(), y2.data());
        let other = Tensor::full(&[3, 2, 7, 7], 0.25);
        conv.forward_mode(&other, Mode::Eval);
        let gin = conv.backward(&y2.clone());
        assert_eq!(gin.data(), gin_ref.data());
        assert_eq!(conv.weight.grad.data(), gw_ref.data());
    }

    #[test]
    fn bias_gradient_sums_over_spatial_positions() {
        let mut conv = tiny_conv(1, 1);
        let x = Tensor::full(&[1, 2, 4, 4], 0.1);
        let y = conv.forward(&x);
        let ones = Tensor::full(y.shape().dims(), 1.0);
        conv.backward(&ones);
        let bias = conv.params()[1];
        for &g in bias.grad.data() {
            assert_eq!(g, 16.0); // 4x4 spatial positions, dY = 1 everywhere
        }
    }

    #[test]
    fn padding_zeroes_do_not_leak_gradient() {
        let mut conv = tiny_conv(1, 1);
        let x = Tensor::full(&[1, 2, 4, 4], 1.0);
        let y = conv.forward(&x);
        let gin = conv.backward(&y.clone());
        assert_eq!(gin.shape().dims(), x.shape().dims());
    }
}
