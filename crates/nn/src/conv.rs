//! 2-D convolution via im2col.

use crate::init::{kaiming_normal, Rng};
use crate::layer::{Layer, Mode};
use crate::param::Parameter;
use crate::tensor::Tensor;

/// Spatial geometry of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel side.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every side.
    pub padding: usize,
}

impl ConvGeometry {
    /// Output spatial side for an input of side `in_side`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input.
    pub fn out_side(&self, in_side: usize) -> usize {
        let padded = in_side + 2 * self.padding;
        assert!(
            padded >= self.kernel,
            "kernel {} larger than padded input {padded}",
            self.kernel
        );
        (padded - self.kernel) / self.stride + 1
    }
}

/// A 2-D convolution layer over `[batch, channels, height, width]` tensors.
///
/// The kernel tensor has shape `[out_ch, in_ch, k, k]`. The forward pass
/// lowers each image to a column matrix (im2col) and multiplies by the
/// flattened kernel, the standard CPU formulation; the backward pass runs the
/// transposed lowering (col2im) to recover input gradients — which the
/// trigger-learning step of the attack needs all the way back to the pixels.
pub struct Conv2d {
    geom: ConvGeometry,
    weight: Parameter,
    bias: Option<Parameter>,
    cached: Option<ForwardCache>,
}

struct ForwardCache {
    cols: Vec<Tensor>,
    in_side: usize,
}

impl std::fmt::Debug for Conv2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Conv2d({:?})", self.geom)
    }
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    pub fn new(geom: ConvGeometry, bias: bool, rng: &mut Rng) -> Self {
        let fan_in = geom.in_channels * geom.kernel * geom.kernel;
        let weight = Parameter::new(
            format!(
                "conv{}x{}k{}.weight",
                geom.in_channels, geom.out_channels, geom.kernel
            ),
            kaiming_normal(
                &[
                    geom.out_channels,
                    geom.in_channels,
                    geom.kernel,
                    geom.kernel,
                ],
                fan_in,
                rng,
            ),
        );
        let bias = bias.then(|| {
            Parameter::new(
                format!(
                    "conv{}x{}k{}.bias",
                    geom.in_channels, geom.out_channels, geom.kernel
                ),
                Tensor::zeros(&[geom.out_channels]),
            )
        });
        Conv2d {
            geom,
            weight,
            bias,
            cached: None,
        }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> ConvGeometry {
        self.geom
    }

    /// Lowers one image `[C, H, W]` into a `[C*k*k, out*out]` column matrix.
    fn im2col(&self, image: &[f32], in_side: usize) -> Tensor {
        let g = self.geom;
        let out = g.out_side(in_side);
        let rows = g.in_channels * g.kernel * g.kernel;
        let mut cols = vec![0.0f32; rows * out * out];
        for c in 0..g.in_channels {
            let chan = &image[c * in_side * in_side..(c + 1) * in_side * in_side];
            for ky in 0..g.kernel {
                for kx in 0..g.kernel {
                    let row = (c * g.kernel + ky) * g.kernel + kx;
                    let row_base = row * out * out;
                    for oy in 0..out {
                        let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                        if iy < 0 || iy as usize >= in_side {
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..out {
                            let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                            if ix < 0 || ix as usize >= in_side {
                                continue;
                            }
                            cols[row_base + oy * out + ox] = chan[iy * in_side + ix as usize];
                        }
                    }
                }
            }
        }
        Tensor::from_vec(cols, &[rows, out * out])
    }

    /// Scatters a `[C*k*k, out*out]` column-gradient back onto an image.
    fn col2im(&self, cols: &Tensor, in_side: usize) -> Vec<f32> {
        let g = self.geom;
        let out = g.out_side(in_side);
        let mut image = vec![0.0f32; g.in_channels * in_side * in_side];
        let data = cols.data();
        for c in 0..g.in_channels {
            for ky in 0..g.kernel {
                for kx in 0..g.kernel {
                    let row = (c * g.kernel + ky) * g.kernel + kx;
                    let row_base = row * out * out;
                    for oy in 0..out {
                        let iy = (oy * g.stride + ky) as isize - g.padding as isize;
                        if iy < 0 || iy as usize >= in_side {
                            continue;
                        }
                        let iy = iy as usize;
                        for ox in 0..out {
                            let ix = (ox * g.stride + kx) as isize - g.padding as isize;
                            if ix < 0 || ix as usize >= in_side {
                                continue;
                            }
                            image[(c * in_side + iy) * in_side + ix as usize] +=
                                data[row_base + oy * out + ox];
                        }
                    }
                }
            }
        }
        image
    }
}

impl Layer for Conv2d {
    fn forward_mode(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let dims = input.shape().dims();
        assert_eq!(dims.len(), 4, "conv input must be [batch, C, H, W]");
        let (batch, chans, in_side) = (dims[0], dims[1], dims[2]);
        assert_eq!(chans, self.geom.in_channels, "channel mismatch");
        assert_eq!(dims[2], dims[3], "only square inputs supported");
        let g = self.geom;
        let out = g.out_side(in_side);
        let w = self.weight.effective();
        let wmat = w
            .reshaped(&[g.out_channels, g.in_channels * g.kernel * g.kernel])
            .expect("kernel reshape is exact");

        let image_len = chans * in_side * in_side;
        let mut output = vec![0.0f32; batch * g.out_channels * out * out];
        let mut cols_cache = Vec::with_capacity(if mode.caches() { batch } else { 0 });
        for b in 0..batch {
            let image = &input.data()[b * image_len..(b + 1) * image_len];
            let cols = self.im2col(image, in_side);
            let y = wmat.matmul(&cols).expect("im2col shapes are consistent");
            let dst =
                &mut output[b * g.out_channels * out * out..(b + 1) * g.out_channels * out * out];
            dst.copy_from_slice(y.data());
            if let Some(bias) = &self.bias {
                let bv = bias.effective();
                for (oc, &bval) in bv.data().iter().enumerate() {
                    for v in &mut dst[oc * out * out..(oc + 1) * out * out] {
                        *v += bval;
                    }
                }
            }
            if mode.caches() {
                cols_cache.push(cols);
            }
        }
        if mode.caches() {
            self.cached = Some(ForwardCache {
                cols: cols_cache,
                in_side,
            });
        }
        Tensor::from_vec(output, &[batch, g.out_channels, out, out])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self
            .cached
            .take()
            .expect("backward called without training-mode forward");
        let g = self.geom;
        let dims = grad_output.shape().dims();
        let (batch, out) = (dims[0], dims[2]);
        let in_side = cache.in_side;
        let w = self.weight.effective();
        let wmat = w
            .reshaped(&[g.out_channels, g.in_channels * g.kernel * g.kernel])
            .expect("kernel reshape is exact");
        let wmat_t = wmat.transposed().expect("rank-2");

        let gout_len = g.out_channels * out * out;
        let image_len = g.in_channels * in_side * in_side;
        let mut grad_input = vec![0.0f32; batch * image_len];
        let mut dw_acc = Tensor::zeros(&[g.out_channels, g.in_channels * g.kernel * g.kernel]);
        for b in 0..batch {
            let gy = Tensor::from_vec(
                grad_output.data()[b * gout_len..(b + 1) * gout_len].to_vec(),
                &[g.out_channels, out * out],
            );
            // dW += dY cols^T; cols is [rows, out*out], so matmul_transposed
            // against it directly yields [out_ch, rows].
            let dw = gy
                .matmul_transposed(&cache.cols[b])
                .expect("conv gradient shapes are consistent");
            dw_acc.axpy(1.0, &dw);
            if let Some(bias) = &mut self.bias {
                for oc in 0..g.out_channels {
                    let s: f32 = gy.data()[oc * out * out..(oc + 1) * out * out].iter().sum();
                    bias.grad.data_mut()[oc] += s;
                }
            }
            // dcols = W^T dY, then scatter back to the image.
            let dcols = wmat_t.matmul(&gy).expect("conv gradient shapes");
            let dimage = self.col2im(&dcols, in_side);
            grad_input[b * image_len..(b + 1) * image_len].copy_from_slice(&dimage);
        }
        let dw_shaped = dw_acc
            .reshaped(&[g.out_channels, g.in_channels, g.kernel, g.kernel])
            .expect("kernel reshape is exact");
        self.weight.grad.axpy(1.0, &dw_shaped);
        Tensor::from_vec(grad_input, &[batch, g.in_channels, in_side, in_side])
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }

    fn describe(&self) -> String {
        format!(
            "Conv2d({}->{}, k{}, s{}, p{})",
            self.geom.in_channels,
            self.geom.out_channels,
            self.geom.kernel,
            self.geom.stride,
            self.geom.padding
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;

    fn tiny_conv(stride: usize, padding: usize) -> Conv2d {
        let mut rng = Rng::seed_from(9);
        Conv2d::new(
            ConvGeometry {
                in_channels: 2,
                out_channels: 3,
                kernel: 3,
                stride,
                padding,
            },
            true,
            &mut rng,
        )
    }

    #[test]
    fn output_shape_follows_geometry() {
        let mut conv = tiny_conv(1, 1);
        let y = conv.forward_mode(&Tensor::zeros(&[2, 2, 8, 8]), Mode::Eval);
        assert_eq!(y.shape().dims(), &[2, 3, 8, 8]);
        let mut strided = tiny_conv(2, 1);
        let y = strided.forward_mode(&Tensor::zeros(&[1, 2, 8, 8]), Mode::Eval);
        assert_eq!(y.shape().dims(), &[1, 3, 4, 4]);
    }

    #[test]
    fn identity_kernel_copies_input() {
        let mut rng = Rng::seed_from(0);
        let mut conv = Conv2d::new(
            ConvGeometry {
                in_channels: 1,
                out_channels: 1,
                kernel: 1,
                stride: 1,
                padding: 0,
            },
            false,
            &mut rng,
        );
        conv.weight.value.data_mut()[0] = 1.0;
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = conv.forward_mode(&x, Mode::Eval);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution_value() {
        let mut rng = Rng::seed_from(0);
        let mut conv = Conv2d::new(
            ConvGeometry {
                in_channels: 1,
                out_channels: 1,
                kernel: 3,
                stride: 1,
                padding: 0,
            },
            false,
            &mut rng,
        );
        // All-ones kernel: output = sum of the 3x3 window.
        for v in conv.weight.value.data_mut() {
            *v = 1.0;
        }
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let y = conv.forward_mode(&x, Mode::Eval);
        assert_eq!(y.data(), &[45.0]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut conv = tiny_conv(1, 1);
        let mut rng = Rng::seed_from(21);
        let mut x = Tensor::zeros(&[1, 2, 5, 5]);
        for v in x.data_mut() {
            *v = rng.uniform(-1.0, 1.0);
        }
        let y = conv.forward(&x);
        let gin = conv.backward(&y.clone());
        let loss = |c: &mut Conv2d, x: &Tensor| -> f32 {
            c.forward_mode(x, Mode::Eval)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum()
        };
        let eps = 1e-2;
        // Spot-check a spread of weight coordinates.
        for idx in [0usize, 7, 19, 33, 53] {
            let analytic = conv.weight.grad.data()[idx];
            let orig = conv.weight.value.data()[idx];
            conv.weight.value.data_mut()[idx] = orig + eps;
            let lp = loss(&mut conv, &x);
            conv.weight.value.data_mut()[idx] = orig - eps;
            let lm = loss(&mut conv, &x);
            conv.weight.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "weight[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
        // Spot-check input coordinates.
        for idx in [0usize, 12, 24, 40] {
            let analytic = gin.data()[idx];
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let numeric = (loss(&mut conv, &xp) - loss(&mut conv, &xm)) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
                "input[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn bias_gradient_sums_over_spatial_positions() {
        let mut conv = tiny_conv(1, 1);
        let x = Tensor::full(&[1, 2, 4, 4], 0.1);
        let y = conv.forward(&x);
        let ones = Tensor::full(y.shape().dims(), 1.0);
        conv.backward(&ones);
        let bias = conv.params()[1];
        for &g in bias.grad.data() {
            assert_eq!(g, 16.0); // 4x4 spatial positions, dY = 1 everywhere
        }
    }

    #[test]
    fn padding_zeroes_do_not_leak_gradient() {
        let mut conv = tiny_conv(1, 1);
        let x = Tensor::full(&[1, 2, 4, 4], 1.0);
        let y = conv.forward(&x);
        let gin = conv.backward(&y.clone());
        assert_eq!(gin.shape().dims(), x.shape().dims());
    }
}
