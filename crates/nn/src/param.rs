//! Trainable parameters: float master weights, gradients, and deployment
//! (quantization) state.

use crate::error::Result;
use crate::quant::{QuantScheme, QuantizedTensor};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A single trainable parameter tensor.
///
/// During training the float `value` is the source of truth. When a model is
/// *deployed* (see [`Parameter::deploy`]) a [`QuantScheme`] is frozen; from
/// then on the forward pass uses fake-quantized weights so that the effective
/// network is exactly the one whose bytes live in the simulated weight file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Parameter {
    /// Human-readable name, e.g. `layer1.block0.conv1.weight`.
    pub name: String,
    /// Float master weights.
    pub value: Tensor,
    /// Gradient accumulator, same shape as `value`.
    pub grad: Tensor,
    /// Frozen quantization scheme, present once deployed.
    pub scheme: Option<QuantScheme>,
}

impl Parameter {
    /// Creates a parameter with zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().dims());
        Parameter {
            name: name.into(),
            value,
            grad,
            scheme: None,
        }
    }

    /// Number of scalar weights.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Freezes a quantization scheme fitted to the current weights and snaps
    /// the weights onto the quantization grid.
    ///
    /// All-zero tensors (freshly initialized biases, batch-norm shifts) get
    /// a unit-range fallback scale so the whole model can always deploy.
    ///
    /// # Errors
    ///
    /// Fails if the weights contain non-finite values.
    pub fn deploy(&mut self) -> Result<()> {
        let scheme = match QuantScheme::fit(&self.value) {
            Ok(s) => s,
            Err(_) if self.value.max_abs() == 0.0 => QuantScheme {
                scale: 1.0 / i8::MAX as f32,
            },
            Err(e) => return Err(e),
        };
        self.value.map_inplace(|v| scheme.fake(v));
        self.scheme = Some(scheme);
        Ok(())
    }

    /// Whether [`deploy`](Self::deploy) has been called.
    pub fn is_deployed(&self) -> bool {
        self.scheme.is_some()
    }

    /// Generation stamp of the current weights — the underlying tensor's
    /// content version (see [`Tensor::version`]).
    ///
    /// This is the invalidation contract for derived caches such as the
    /// int8 engine's packed weight panels: a cache entry built at
    /// generation `g` is valid if and only if `generation()` still
    /// returns `g`. Every path that can change the weights — direct
    /// `data_mut` writes, optimizer steps, CFT perturbations, `deploy`'s
    /// grid snap, and crucially [`load_quantized`](Self::load_quantized)
    /// (the Rowhammer flip injection path) — advances the stamp, so a
    /// mid-run bit flip can never be masked by a stale packed panel.
    pub fn generation(&self) -> u64 {
        self.value.version()
    }

    /// The effective weights used in the forward pass: fake-quantized when
    /// deployed, raw floats otherwise.
    pub fn effective(&self) -> Tensor {
        match self.scheme {
            Some(scheme) => self.value.map(|v| scheme.fake(v)),
            None => self.value.clone(),
        }
    }

    /// Allocation-free variant of [`effective`](Self::effective): writes
    /// the effective weights into a layer-owned scratch buffer and
    /// returns the filled slice. Produces the same bits as `effective()`.
    pub fn effective_into<'a>(&self, buf: &'a mut crate::scratch::ScratchBuffer) -> &'a [f32] {
        let src = self.value.data();
        let out = buf.filled(src.len());
        match self.scheme {
            Some(scheme) => {
                for (o, &v) in out.iter_mut().zip(src) {
                    *o = scheme.fake(v);
                }
            }
            None => out.copy_from_slice(src),
        }
        out
    }

    /// Writes the quantized `i8` steps of a deployed parameter into a
    /// layer-owned scratch arena, returning the steps and the frozen
    /// scheme. Deployed weights are grid-snapped, so these steps are
    /// bit-identical to the parameter's bytes in the weight file (see
    /// the `quantize_recovers_grid_steps_exactly` property) — the int8
    /// engine consumes them without materializing an f32 weight matrix.
    ///
    /// # Panics
    ///
    /// Panics if the parameter has not been deployed.
    pub fn quantized_into<'a>(
        &self,
        buf: &'a mut crate::scratch::ScratchI8,
    ) -> (&'a [i8], QuantScheme) {
        let scheme = self
            .scheme
            .expect("int8 inference requires a deployed parameter");
        let src = self.value.data();
        let out = buf.filled(src.len());
        scheme.quantize_into(src, out);
        (out, scheme)
    }

    /// Quantized image of the current weights.
    ///
    /// # Panics
    ///
    /// Panics if the parameter has not been deployed.
    pub fn quantized(&self) -> QuantizedTensor {
        let scheme = self
            .scheme
            .expect("parameter must be deployed before quantizing");
        QuantizedTensor::with_scheme(&self.value, scheme)
    }

    /// Overwrites the float weights from a quantized image (e.g. after the
    /// online attack flipped bits in the weight file).
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn load_quantized(&mut self, q: &QuantizedTensor) {
        assert_eq!(q.numel(), self.value.numel(), "parameter size mismatch");
        let t = q.to_tensor();
        self.value = Tensor::from_vec(t.into_vec(), self.value.shape().dims());
        self.scheme = Some(q.scheme());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param() -> Parameter {
        Parameter::new("w", Tensor::from_vec(vec![0.3, -0.8, 0.05, 1.0], &[2, 2]))
    }

    #[test]
    fn deploy_snaps_weights_to_grid() {
        let mut p = param();
        p.deploy().unwrap();
        let scheme = p.scheme.unwrap();
        for &v in p.value.data() {
            assert_eq!(v, scheme.fake(v), "weight {v} not on the grid");
        }
    }

    #[test]
    fn effective_equals_value_once_deployed() {
        let mut p = param();
        p.deploy().unwrap();
        assert_eq!(p.effective(), p.value);
    }

    #[test]
    fn effective_is_raw_before_deploy() {
        let p = param();
        assert_eq!(p.effective(), p.value);
    }

    #[test]
    fn quantized_round_trip_preserves_deployed_weights() {
        let mut p = param();
        p.deploy().unwrap();
        let q = p.quantized();
        let mut p2 = p.clone();
        p2.load_quantized(&q);
        assert_eq!(p.value, p2.value);
    }

    #[test]
    fn load_quantized_applies_bit_flip() {
        let mut p = param();
        p.deploy().unwrap();
        let mut q = p.quantized();
        let before = p.value.data()[3];
        q.flip_bit(3, 7).unwrap();
        p.load_quantized(&q);
        assert_ne!(p.value.data()[3], before);
    }

    #[test]
    fn quantized_into_matches_weight_file_bytes() {
        let mut p = param();
        p.deploy().unwrap();
        let q = p.quantized();
        let mut buf = crate::scratch::ScratchI8::new();
        let (steps, scheme) = p.quantized_into(&mut buf);
        assert_eq!(steps, q.values());
        assert_eq!(scheme, q.scheme());
    }

    #[test]
    fn generation_advances_on_every_weight_mutation_path() {
        let mut p = param();
        let g0 = p.generation();
        p.deploy().unwrap();
        let g1 = p.generation();
        assert!(g1 > g0, "deploy grid-snap must advance the generation");
        let q = p.quantized();
        p.load_quantized(&q);
        let g2 = p.generation();
        assert!(g2 > g1, "load_quantized must advance the generation");
        p.value.data_mut()[0] += 1.0;
        assert!(p.generation() > g2, "direct writes must advance it too");
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = param();
        p.grad.data_mut()[0] = 3.0;
        p.zero_grad();
        assert_eq!(p.grad.data()[0], 0.0);
    }
}
