//! The [`Network`] trait: the interface the attack framework sees.

use crate::error::Result;
use crate::layer::Mode;
use crate::quant::QuantizedTensor;
use crate::tensor::Tensor;

/// A trainable classifier exposed to the attack and defense crates.
///
/// The attack only needs four capabilities from a victim model:
///
/// 1. forward inference (to measure accuracy / attack success),
/// 2. backpropagation producing both parameter gradients and the gradient
///    w.r.t. the *input image* (for FGSM trigger learning),
/// 3. an ordered view of its parameters (the order defines the weight-file
///    layout and therefore the page grouping of Algorithm 1),
/// 4. deployment: freezing an 8-bit quantization grid.
pub trait Network: Send {
    /// Runs the network on a `[batch, ...]` input, returning logits.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Backpropagates the logit gradient, accumulating parameter gradients
    /// and returning the gradient w.r.t. the input.
    fn backward(&mut self, grad_logits: &Tensor) -> Tensor;

    /// Immutable parameter views in deterministic (weight-file) order.
    fn params(&self) -> Vec<&crate::param::Parameter>;

    /// Mutable parameter views in the same order.
    fn params_mut(&mut self) -> Vec<&mut crate::param::Parameter>;

    /// Clears every parameter gradient.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of scalar weights.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Freezes 8-bit quantization on every parameter ("deployment").
    ///
    /// # Errors
    ///
    /// Fails if any parameter cannot be quantized (e.g. all zeros).
    fn deploy(&mut self) -> Result<()> {
        let _span = rhb_telemetry::span!("nn/deploy");
        let mut n = 0u64;
        for p in self.params_mut() {
            p.deploy()?;
            n += 1;
        }
        rhb_telemetry::counter!("nn/params_deployed", n);
        Ok(())
    }

    /// Whether every parameter carries a frozen quantization scheme.
    fn is_deployed(&self) -> bool {
        self.params().iter().all(|p| p.is_deployed())
    }

    /// Quantized images of all parameters, in weight-file order.
    ///
    /// # Panics
    ///
    /// Panics if the network is not deployed.
    fn quantized_params(&self) -> Vec<QuantizedTensor> {
        self.params().iter().map(|p| p.quantized()).collect()
    }

    /// Overwrites parameters from quantized images (e.g. after bit flips).
    ///
    /// # Panics
    ///
    /// Panics if the image count or shapes disagree.
    fn load_quantized(&mut self, images: &[QuantizedTensor]) {
        let mut params = self.params_mut();
        assert_eq!(params.len(), images.len(), "parameter count mismatch");
        for (p, q) in params.iter_mut().zip(images) {
            p.load_quantized(q);
        }
    }

    /// A human-readable architecture summary.
    fn describe(&self) -> String;
}

/// Blanket helper: snapshot all float parameter values.
pub fn snapshot_params(net: &dyn Network) -> Vec<Tensor> {
    net.params().iter().map(|p| p.value.clone()).collect()
}

/// Blanket helper: restore parameter values from a snapshot.
///
/// # Panics
///
/// Panics if the snapshot does not match the parameter list.
pub fn restore_params(net: &mut dyn Network, snapshot: &[Tensor]) {
    let mut params = net.params_mut();
    assert_eq!(params.len(), snapshot.len(), "snapshot length mismatch");
    for (p, s) in params.iter_mut().zip(snapshot) {
        assert_eq!(p.value.shape(), s.shape(), "snapshot shape mismatch");
        p.value = s.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;
    use crate::layer::{Layer, Sequential};
    use crate::linear::Linear;

    /// A minimal Network impl used by substrate tests.
    struct Mlp(Sequential);

    impl Mlp {
        fn new(seed: u64) -> Self {
            let mut rng = Rng::seed_from(seed);
            let mut seq = Sequential::new();
            seq.push(Box::new(Linear::new(4, 8, true, &mut rng)));
            seq.push(Box::new(crate::activation::Relu::new()));
            seq.push(Box::new(Linear::new(8, 3, true, &mut rng)));
            Mlp(seq)
        }
    }

    impl Network for Mlp {
        fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
            self.0.forward_mode(input, mode)
        }
        fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
            self.0.backward(grad_logits)
        }
        fn params(&self) -> Vec<&crate::param::Parameter> {
            self.0.params()
        }
        fn params_mut(&mut self) -> Vec<&mut crate::param::Parameter> {
            self.0.params_mut()
        }
        fn describe(&self) -> String {
            self.0.describe()
        }
    }

    #[test]
    fn deploy_freezes_every_parameter() {
        let mut net = Mlp::new(3);
        assert!(!net.is_deployed());
        net.deploy().unwrap();
        assert!(net.is_deployed());
    }

    #[test]
    fn quantized_round_trip_preserves_deployed_model_output() {
        let mut net = Mlp::new(4);
        net.deploy().unwrap();
        let x = Tensor::full(&[1, 4], 0.5);
        let y_before = net.forward(&x, Mode::Eval);
        let images = net.quantized_params();
        net.load_quantized(&images);
        let y_after = net.forward(&x, Mode::Eval);
        for (a, b) in y_before.data().iter().zip(y_after.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut net = Mlp::new(5);
        let snap = snapshot_params(&net);
        net.params_mut()[0].value.data_mut()[0] += 1.0;
        restore_params(&mut net, &snap);
        assert_eq!(net.params()[0].value, snap[0]);
    }

    #[test]
    fn num_params_counts_all_tensors() {
        let net = Mlp::new(6);
        assert_eq!(net.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
    }
}
