//! The [`Network`] trait: the interface the attack framework sees.

use crate::error::Result;
use crate::layer::Mode;
use crate::quant::QuantizedTensor;
use crate::tensor::Tensor;

/// A trainable classifier exposed to the attack and defense crates.
///
/// The attack only needs four capabilities from a victim model:
///
/// 1. forward inference (to measure accuracy / attack success),
/// 2. backpropagation producing both parameter gradients and the gradient
///    w.r.t. the *input image* (for FGSM trigger learning),
/// 3. an ordered view of its parameters (the order defines the weight-file
///    layout and therefore the page grouping of Algorithm 1),
/// 4. deployment: freezing an 8-bit quantization grid.
pub trait Network: Send {
    /// Runs the network on a `[batch, ...]` input, returning logits.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Backpropagates the logit gradient, accumulating parameter gradients
    /// and returning the gradient w.r.t. the input.
    fn backward(&mut self, grad_logits: &Tensor) -> Tensor;

    /// Immutable parameter views in deterministic (weight-file) order.
    fn params(&self) -> Vec<&crate::param::Parameter>;

    /// Mutable parameter views in the same order.
    fn params_mut(&mut self) -> Vec<&mut crate::param::Parameter>;

    /// Clears every parameter gradient.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of scalar weights.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Freezes 8-bit quantization on every parameter ("deployment").
    ///
    /// # Errors
    ///
    /// Fails if any parameter cannot be quantized (e.g. all zeros).
    fn deploy(&mut self) -> Result<()> {
        let _span = rhb_telemetry::span!("nn/deploy");
        let mut n = 0u64;
        for p in self.params_mut() {
            p.deploy()?;
            n += 1;
        }
        rhb_telemetry::counter!("nn/params_deployed", n);
        Ok(())
    }

    /// Whether every parameter carries a frozen quantization scheme.
    fn is_deployed(&self) -> bool {
        self.params().iter().all(|p| p.is_deployed())
    }

    /// Quantized images of all parameters, in weight-file order.
    ///
    /// # Panics
    ///
    /// Panics if the network is not deployed.
    fn quantized_params(&self) -> Vec<QuantizedTensor> {
        self.params().iter().map(|p| p.quantized()).collect()
    }

    /// Overwrites parameters from quantized images (e.g. after bit flips).
    ///
    /// # Panics
    ///
    /// Panics if the image count or shapes disagree.
    fn load_quantized(&mut self, images: &[QuantizedTensor]) {
        let mut params = self.params_mut();
        assert_eq!(params.len(), images.len(), "parameter count mismatch");
        for (p, q) in params.iter_mut().zip(images) {
            p.load_quantized(q);
        }
    }

    /// A human-readable architecture summary.
    fn describe(&self) -> String;
}

/// Which arithmetic a deployed victim's forward pass runs.
///
/// The f32 engine fake-quantizes weights but keeps all arithmetic in
/// f32 — the reference the paper's gradient machinery differentiates.
/// The int8 engine multiplies the raw `i8` weight-file steps against
/// dynamically quantized activations with exact `i32` accumulation —
/// the arithmetic a TensorRT-style serving stack actually executes.
/// See `DESIGN.md`, "Inference engines", for the parity contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Fake-quantized f32 inference (`Mode::Eval`).
    FakeQuantF32,
    /// True int8 inference (`Mode::Int8`).
    Int8,
}

impl Engine {
    /// The forward-pass mode implementing this engine.
    pub fn mode(self) -> Mode {
        match self {
            Engine::FakeQuantF32 => Mode::Eval,
            Engine::Int8 => Mode::Int8,
        }
    }
}

/// Whether the int8 engine is enabled for deployed-model evaluation.
/// Defaults to on; `RHB_ENGINE=f32` forces the fake-quant f32 path
/// (the escape hatch documented in `EXPERIMENTS.md`).
fn int8_engine_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        !std::env::var("RHB_ENGINE")
            .map(|v| v.eq_ignore_ascii_case("f32"))
            .unwrap_or(false)
    })
}

/// The inference mode evaluation loops should use for `net`: the int8
/// engine for deployed models (unless `RHB_ENGINE=f32`), the plain f32
/// eval path otherwise. Gradient passes must keep using `Mode::Frozen`.
pub fn eval_mode(net: &dyn Network) -> Mode {
    if int8_engine_enabled() && net.is_deployed() {
        Mode::Int8
    } else {
        Mode::Eval
    }
}

/// Argmax class per row of a `[batch, classes]` logits tensor — the
/// batched classification entry shared by offline evaluation and the
/// serving path. Ties break toward the lower class index, and a NaN
/// logit never wins (`>` keeps the incumbent), so corrupted weights
/// degrade to a deterministic class instead of a poisoned sort.
///
/// # Panics
///
/// Panics when the logits tensor has no class dimension.
pub fn argmax_classes(logits: &Tensor) -> Vec<usize> {
    let dims = logits.shape().dims();
    let classes = *dims.last().expect("logits need a class dimension");
    assert!(classes > 0, "logits need a non-empty class dimension");
    logits
        .data()
        .chunks_exact(classes)
        .map(|row| {
            let mut best = 0;
            let mut best_v = row[0];
            for (i, &v) in row.iter().enumerate().skip(1) {
                if v > best_v || (best_v.is_nan() && !v.is_nan()) {
                    best = i;
                    best_v = v;
                }
            }
            best
        })
        .collect()
}

/// Runs one batched classification on the engine the victim deploys
/// (int8 when deployed, f32 otherwise — see [`eval_mode`]), returning
/// the predicted class per sample.
pub fn classify_batch(net: &mut dyn Network, input: &Tensor) -> Vec<usize> {
    let mode = eval_mode(net);
    argmax_classes(&net.forward(input, mode))
}

/// Blanket helper: snapshot all float parameter values.
pub fn snapshot_params(net: &dyn Network) -> Vec<Tensor> {
    net.params().iter().map(|p| p.value.clone()).collect()
}

/// Blanket helper: restore parameter values from a snapshot.
///
/// # Panics
///
/// Panics if the snapshot does not match the parameter list.
pub fn restore_params(net: &mut dyn Network, snapshot: &[Tensor]) {
    let mut params = net.params_mut();
    assert_eq!(params.len(), snapshot.len(), "snapshot length mismatch");
    for (p, s) in params.iter_mut().zip(snapshot) {
        assert_eq!(p.value.shape(), s.shape(), "snapshot shape mismatch");
        p.value = s.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;
    use crate::layer::{Layer, Sequential};
    use crate::linear::Linear;

    /// A minimal Network impl used by substrate tests.
    struct Mlp(Sequential);

    impl Mlp {
        fn new(seed: u64) -> Self {
            let mut rng = Rng::seed_from(seed);
            let mut seq = Sequential::new();
            seq.push(Box::new(Linear::new(4, 8, true, &mut rng)));
            seq.push(Box::new(crate::activation::Relu::new()));
            seq.push(Box::new(Linear::new(8, 3, true, &mut rng)));
            Mlp(seq)
        }
    }

    impl Network for Mlp {
        fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
            self.0.forward_mode(input, mode)
        }
        fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
            self.0.backward(grad_logits)
        }
        fn params(&self) -> Vec<&crate::param::Parameter> {
            self.0.params()
        }
        fn params_mut(&mut self) -> Vec<&mut crate::param::Parameter> {
            self.0.params_mut()
        }
        fn describe(&self) -> String {
            self.0.describe()
        }
    }

    #[test]
    fn deploy_freezes_every_parameter() {
        let mut net = Mlp::new(3);
        assert!(!net.is_deployed());
        net.deploy().unwrap();
        assert!(net.is_deployed());
    }

    #[test]
    fn quantized_round_trip_preserves_deployed_model_output() {
        let mut net = Mlp::new(4);
        net.deploy().unwrap();
        let x = Tensor::full(&[1, 4], 0.5);
        let y_before = net.forward(&x, Mode::Eval);
        let images = net.quantized_params();
        net.load_quantized(&images);
        let y_after = net.forward(&x, Mode::Eval);
        for (a, b) in y_before.data().iter().zip(y_after.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut net = Mlp::new(5);
        let snap = snapshot_params(&net);
        net.params_mut()[0].value.data_mut()[0] += 1.0;
        restore_params(&mut net, &snap);
        assert_eq!(net.params()[0].value, snap[0]);
    }

    #[test]
    fn num_params_counts_all_tensors() {
        let net = Mlp::new(6);
        assert_eq!(net.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn argmax_classes_picks_per_row_maxima_with_stable_ties() {
        let logits = Tensor::from_vec(
            vec![
                0.1,
                0.9,
                0.3, // row 0 → 1
                2.0,
                2.0,
                -1.0, // row 1: tie → lower index 0
                f32::NAN,
                0.5,
                0.4, // row 2: NaN never wins → 1
                -3.0,
                -2.0,
                -1.0, // row 3 → 2
            ],
            &[4, 3],
        );
        assert_eq!(argmax_classes(&logits), vec![1, 0, 1, 2]);
    }

    #[test]
    fn classify_batch_matches_manual_forward_argmax() {
        let mut net = Mlp::new(7);
        net.deploy().unwrap();
        let x = Tensor::from_vec(
            (0..8).map(|i| (i as f32 * 0.37).sin()).collect::<Vec<_>>(),
            &[2, 4],
        );
        let mode = eval_mode(&net);
        let expected = argmax_classes(&net.forward(&x, mode));
        assert_eq!(classify_batch(&mut net, &x), expected);
    }
}
