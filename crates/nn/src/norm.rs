//! Batch normalization over `[batch, C, H, W]` tensors.

use crate::layer::{Layer, Mode};
use crate::param::Parameter;
use crate::tensor::Tensor;

/// Per-channel batch normalization with learnable scale/shift and running
/// statistics for evaluation mode.
///
/// In training mode the layer normalizes with batch statistics and updates
/// exponential running averages; in evaluation mode it uses the frozen
/// running statistics, which is what a deployed victim model does.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Parameter,
    beta: Parameter,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    channels: usize,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    normalized: Tensor,
    std_inv: Vec<f32>,
    dims: Vec<usize>,
    /// Whether the statistics were frozen (running) rather than batch:
    /// frozen statistics are constants, so the backward pass omits the
    /// mean/variance correction terms.
    frozen: bool,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Parameter::new(
                format!("bn{channels}.gamma"),
                Tensor::full(&[channels], 1.0),
            ),
            beta: Parameter::new(format!("bn{channels}.beta"), Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cache: None,
        }
    }

    /// Frozen running mean (evaluation statistics).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Frozen running variance (evaluation statistics).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward_mode(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let dims = input.shape().dims().to_vec();
        assert_eq!(dims.len(), 4, "batchnorm input must be [batch, C, H, W]");
        assert_eq!(dims[1], self.channels, "channel mismatch");
        let (batch, chans, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        let count = (batch * plane) as f32;

        #[allow(clippy::needless_range_loop)]
        let batch_stats = if !mode.uses_running_stats() {
            let mut mean = vec![0.0f32; chans];
            let mut var = vec![0.0f32; chans];
            for b in 0..batch {
                for c in 0..chans {
                    let base = (b * chans + c) * plane;
                    for &v in &input.data()[base..base + plane] {
                        mean[c] += v;
                    }
                }
            }
            for m in &mut mean {
                *m /= count;
            }
            for b in 0..batch {
                for c in 0..chans {
                    let base = (b * chans + c) * plane;
                    for &v in &input.data()[base..base + plane] {
                        var[c] += (v - mean[c]).powi(2);
                    }
                }
            }
            for v in &mut var {
                *v /= count;
            }
            for c in 0..chans {
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
            }
            Some((mean, var))
        } else {
            None
        };
        // Inference borrows the frozen stats in place — no per-call clones.
        let (mean, var): (&[f32], &[f32]) = match &batch_stats {
            Some((m, v)) => (m, v),
            None => (&self.running_mean, &self.running_var),
        };

        let std_inv: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let gamma = self.gamma.effective();
        let beta = self.beta.effective();
        let mut out = vec![0.0f32; input.numel()];
        if mode.caches() {
            let mut normalized = vec![0.0f32; input.numel()];
            for b in 0..batch {
                for c in 0..chans {
                    let base = (b * chans + c) * plane;
                    let (g, be, m, si) = (gamma.data()[c], beta.data()[c], mean[c], std_inv[c]);
                    for i in 0..plane {
                        let n = (input.data()[base + i] - m) * si;
                        normalized[base + i] = n;
                        out[base + i] = g * n + be;
                    }
                }
            }
            self.cache = Some(BnCache {
                normalized: Tensor::from_vec(normalized, &dims),
                std_inv,
                dims: dims.clone(),
                frozen: mode.uses_running_stats(),
            });
        } else {
            // Inference: same per-element expression (bit-identical),
            // without materializing the input-sized `normalized` buffer
            // that only a pending backward would read.
            for b in 0..batch {
                for c in 0..chans {
                    let base = (b * chans + c) * plane;
                    let (g, be, m, si) = (gamma.data()[c], beta.data()[c], mean[c], std_inv[c]);
                    for (o, &v) in out[base..base + plane]
                        .iter_mut()
                        .zip(&input.data()[base..base + plane])
                    {
                        *o = g * ((v - m) * si) + be;
                    }
                }
            }
        }
        Tensor::from_vec(out, &dims)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("backward called without training-mode forward");
        let dims = cache.dims;
        let (batch, chans, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        let count = (batch * plane) as f32;
        let gamma = self.gamma.effective();

        // Per-channel reductions of dY and dY*normalized.
        let mut sum_dy = vec![0.0f32; chans];
        let mut sum_dy_n = vec![0.0f32; chans];
        for b in 0..batch {
            for c in 0..chans {
                let base = (b * chans + c) * plane;
                for i in 0..plane {
                    let dy = grad_output.data()[base + i];
                    sum_dy[c] += dy;
                    sum_dy_n[c] += dy * cache.normalized.data()[base + i];
                }
            }
        }
        for c in 0..chans {
            self.beta.grad.data_mut()[c] += sum_dy[c];
            self.gamma.grad.data_mut()[c] += sum_dy_n[c];
        }

        // Input gradient. With frozen (running) statistics the mean and
        // variance are constants, so dX = dY·γ·σ⁻¹; with batch statistics
        // the full batch-norm correction terms apply.
        let mut grad_input = vec![0.0f32; grad_output.numel()];
        for b in 0..batch {
            for c in 0..chans {
                let base = (b * chans + c) * plane;
                let g = gamma.data()[c];
                let si = cache.std_inv[c];
                for i in 0..plane {
                    let dy = grad_output.data()[base + i];
                    grad_input[base + i] = if cache.frozen {
                        g * si * dy
                    } else {
                        let n = cache.normalized.data()[base + i];
                        g * si * (dy - sum_dy[c] / count - n * sum_dy_n[c] / count)
                    };
                }
            }
        }
        Tensor::from_vec(grad_input, &dims)
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn describe(&self) -> String {
        format!("BatchNorm2d({})", self.channels)
    }

    fn op_name(&self) -> &'static str {
        "batch_norm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;

    fn random_input(rng: &mut Rng, dims: &[usize]) -> Tensor {
        let mut t = Tensor::zeros(dims);
        for v in t.data_mut() {
            *v = rng.uniform(-2.0, 2.0) + 1.0;
        }
        t
    }

    #[test]
    fn training_output_is_normalized_per_channel() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = Rng::seed_from(3);
        let x = random_input(&mut rng, &[4, 2, 3, 3]);
        let y = bn.forward(&x);
        for c in 0..2 {
            let mut vals = Vec::new();
            for b in 0..4 {
                let base = (b * 2 + c) * 9;
                vals.extend_from_slice(&y.data()[base..base + 9]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {c} var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(1);
        let mut rng = Rng::seed_from(5);
        // Feed several batches so running stats converge toward the data.
        for _ in 0..200 {
            let x = random_input(&mut rng, &[8, 1, 2, 2]);
            bn.forward(&x);
        }
        let x = random_input(&mut rng, &[8, 1, 2, 2]);
        let y = bn.forward_mode(&x, Mode::Eval);
        // Eval-mode output should be roughly normalized against the data
        // distribution (mean ~1.0 from random_input's +1 shift).
        let mean: f32 = y.data().iter().sum::<f32>() / y.numel() as f32;
        assert!(mean.abs() < 0.5, "eval mean {mean}");
    }

    #[test]
    fn gradients_match_finite_differences_for_gamma() {
        let mut bn = BatchNorm2d::new(1);
        let mut rng = Rng::seed_from(8);
        let x = random_input(&mut rng, &[2, 1, 2, 2]);
        let y = bn.forward(&x);
        bn.backward(&y.clone());
        let analytic = bn.gamma.grad.data()[0];
        // Freeze batch stats by re-running training forward with perturbed gamma.
        let eps = 1e-3;
        let orig = bn.gamma.value.data()[0];
        bn.gamma.value.data_mut()[0] = orig + eps;
        let lp: f32 = bn.forward(&x).data().iter().map(|v| v * v / 2.0).sum();
        bn.gamma.value.data_mut()[0] = orig - eps;
        let lm: f32 = bn.forward(&x).data().iter().map(|v| v * v / 2.0).sum();
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 0.05 * (1.0 + numeric.abs()),
            "gamma: analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn input_gradient_sums_to_zero_per_channel() {
        // For batchnorm, the input gradient is mean-free per channel when
        // dY is arbitrary — a well-known identity.
        let mut bn = BatchNorm2d::new(2);
        let mut rng = Rng::seed_from(13);
        let x = random_input(&mut rng, &[3, 2, 2, 2]);
        bn.forward(&x);
        let dy = random_input(&mut rng, &[3, 2, 2, 2]);
        let gin = bn.backward(&dy);
        for c in 0..2 {
            let mut s = 0.0;
            for b in 0..3 {
                let base = (b * 2 + c) * 4;
                s += gin.data()[base..base + 4].iter().sum::<f32>();
            }
            assert!(s.abs() < 1e-3, "channel {c} grad sum {s}");
        }
    }
}

#[cfg(test)]
mod frozen_tests {
    use super::*;
    use crate::init::Rng;

    #[test]
    fn frozen_forward_matches_eval_exactly() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = Rng::seed_from(1);
        // Populate running stats.
        for _ in 0..50 {
            let mut x = Tensor::zeros(&[4, 2, 3, 3]);
            for v in x.data_mut() {
                *v = rng.uniform(-1.0, 1.0) + 0.3;
            }
            bn.forward(&x);
        }
        let mut x = Tensor::zeros(&[2, 2, 3, 3]);
        for v in x.data_mut() {
            *v = rng.uniform(-1.0, 1.0);
        }
        let eval = bn.forward_mode(&x, Mode::Eval);
        let frozen = bn.forward_mode(&x, Mode::Frozen);
        assert_eq!(eval, frozen, "frozen must compute the inference output");
    }

    #[test]
    fn frozen_input_gradient_matches_finite_differences() {
        let mut bn = BatchNorm2d::new(1);
        let mut rng = Rng::seed_from(2);
        for _ in 0..50 {
            let mut x = Tensor::zeros(&[4, 1, 2, 2]);
            for v in x.data_mut() {
                *v = rng.uniform(-1.0, 1.0);
            }
            bn.forward(&x);
        }
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.7, 0.1], &[1, 1, 2, 2]);
        let y = bn.forward_mode(&x, Mode::Frozen);
        let gin = bn.backward(&y.clone());
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            bn.forward_mode(x, Mode::Eval)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum()
        };
        let eps = 1e-3;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let numeric = (loss(&mut bn, &xp) - loss(&mut bn, &xm)) / (2.0 * eps);
            assert!(
                (gin.data()[i] - numeric).abs() < 1e-2,
                "input[{i}]: analytic {} vs numeric {numeric}",
                gin.data()[i]
            );
        }
    }

    #[test]
    fn frozen_mode_does_not_update_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let before = bn.running_mean().to_vec();
        let x = Tensor::full(&[2, 1, 2, 2], 5.0);
        bn.forward_mode(&x, Mode::Frozen);
        assert_eq!(bn.running_mean(), &before[..]);
    }
}
