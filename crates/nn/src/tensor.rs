//! Dense row-major `f32` tensors and the numeric kernels used by the layers.

use crate::error::{NnError, Result};
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide monotone source of tensor content versions. Starts at 1 so
/// 0 can serve as "never seen any tensor" in caches.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

fn fresh_version() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// A dense, row-major tensor of `f32` values.
///
/// All layer math in this crate runs on `Tensor`. The type is deliberately
/// simple — contiguous storage, owned data — because the attack workloads are
/// small CNNs where clarity beats view tricks.
///
/// # Example
///
/// ```
/// use rhb_nn::tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = a.map(|v| v * 2.0);
/// assert_eq!(b.data()[3], 8.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
    /// Content version stamp: every construction takes a fresh id from a
    /// process-wide counter and every mutable access takes another, so two
    /// observations of the same version guarantee unchanged contents.
    /// Clones share their source's version (identical contents); equality
    /// ignores it. Downstream caches (packed int8 weight panels) key on
    /// this to detect weight mutations — including Rowhammer flip
    /// injection via `load_quantized` — without content hashing.
    version: u64,
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        // The version stamp is an identity/caching aid, not content.
        self.shape == other.shape && self.data == other.data
    }
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
            version: fresh_version(),
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
            version: fresh_version(),
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {}",
            data.len(),
            shape
        );
        Tensor {
            shape,
            data,
            version: fresh_version(),
        }
    }

    /// The tensor's content version stamp.
    ///
    /// Monotone across the process: any mutation (mutable access)
    /// replaces it with a strictly newer value, and clones carry their
    /// source's stamp. Cache packed derivatives of a tensor keyed on
    /// this value; never reuse a cache entry whose recorded version
    /// differs from the current one.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    ///
    /// Takes a fresh content version: callers holding the returned slice
    /// may write anything, so the old stamp can no longer vouch for the
    /// contents.
    pub fn data_mut(&mut self) -> &mut [f32] {
        self.version = fresh_version();
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a copy reshaped to `dims` (same number of elements).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the element counts differ.
    pub fn reshaped(&self, dims: &[usize]) -> Result<Tensor> {
        let new_shape = Shape::new(dims);
        if new_shape.numel() != self.numel() {
            return Err(NnError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                actual: dims.to_vec(),
                op: "reshape",
            });
        }
        Ok(Tensor {
            shape: new_shape,
            data: self.data.clone(),
            version: fresh_version(),
        })
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.flat_index(idx)]
    }

    /// Mutable element at a multi-dimensional index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        self.version = fresh_version();
        let flat = self.shape.flat_index(idx);
        &mut self.data[flat]
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
            version: fresh_version(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.version = fresh_version();
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise binary op with another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if !self.shape.same_as(&other.shape) {
            return Err(NnError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                actual: other.shape.dims().to_vec(),
                op: "zip",
            });
        }
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            version: fresh_version(),
        })
    }

    /// Adds `other` into `self` in place, scaled by `alpha` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert!(
            self.shape.same_as(&other.shape),
            "axpy shape mismatch: {} vs {}",
            self.shape,
            other.shape
        );
        self.version = fresh_version();
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        self.version = fresh_version();
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.version = fresh_version();
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute value, or 0.0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Index of the maximum element (ties resolve to the first).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Matrix multiplication: `self` is `[m, k]`, `other` is `[k, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless both operands are rank-2
    /// with a shared inner dimension.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape.rank() != 2 || other.shape.rank() != 2 {
            return Err(NnError::ShapeMismatch {
                expected: vec![2],
                actual: vec![self.shape.rank(), other.shape.rank()],
                op: "matmul rank",
            });
        }
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (k2, n) = (other.shape.dim(0), other.shape.dim(1));
        if k != k2 {
            return Err(NnError::ShapeMismatch {
                expected: vec![m, k],
                actual: vec![k2, n],
                op: "matmul inner dim",
            });
        }
        let mut out = vec![0.0f32; m * n];
        crate::gemm::gemm(&self.data, &other.data, &mut out, m, k, n);
        Ok(Tensor {
            shape: Shape::new(&[m, n]),
            data: out,
            version: fresh_version(),
        })
    }

    /// Matrix multiplication with `other` transposed: `[m,k] x [n,k]^T -> [m,n]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] unless both operands are rank-2
    /// with a shared inner dimension.
    pub fn matmul_transposed(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape.rank() != 2 || other.shape.rank() != 2 {
            return Err(NnError::ShapeMismatch {
                expected: vec![2],
                actual: vec![self.shape.rank(), other.shape.rank()],
                op: "matmul_transposed rank",
            });
        }
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let (n, k2) = (other.shape.dim(0), other.shape.dim(1));
        if k != k2 {
            return Err(NnError::ShapeMismatch {
                expected: vec![m, k],
                actual: vec![n, k2],
                op: "matmul_transposed inner dim",
            });
        }
        let mut out = vec![0.0f32; m * n];
        crate::gemm::gemm_nt(&self.data, &other.data, &mut out, m, k, n);
        Ok(Tensor {
            shape: Shape::new(&[m, n]),
            data: out,
            version: fresh_version(),
        })
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the tensor is not rank-2.
    pub fn transposed(&self) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(NnError::ShapeMismatch {
                expected: vec![2],
                actual: vec![self.shape.rank()],
                op: "transpose rank",
            });
        }
        let (m, n) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Ok(Tensor {
            shape: Shape::new(&[n, m]),
            data: out,
            version: fresh_version(),
        })
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp_inplace(&mut self, lo: f32, hi: f32) {
        self.version = fresh_version();
        for v in &mut self.data {
            *v = v.clamp(lo, hi);
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(
            f,
            "[{}{}]",
            preview.join(", "),
            if self.numel() > 8 { ", …" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transposed_agrees_with_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let b = Tensor::from_vec((0..12).map(|v| (v as f32) * 0.5).collect(), &[4, 3]);
        let via_t = a.matmul(&b.transposed().unwrap()).unwrap();
        let direct = a.matmul_transposed(&b).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = a.reshaped(&[4]).unwrap();
        assert_eq!(b.data(), a.data());
        assert!(a.reshaped(&[3]).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::full(&[3], 1.0);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn argmax_returns_first_max() {
        let t = Tensor::from_vec(vec![1.0, 5.0, 5.0, 2.0], &[4]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn clamp_limits_range() {
        let mut t = Tensor::from_vec(vec![-2.0, 0.5, 9.0], &[3]);
        t.clamp_inplace(-1.0, 1.0);
        assert_eq!(t.data(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn version_changes_on_every_mutation_path() {
        let mut t = Tensor::zeros(&[2, 2]);
        let mut seen = vec![t.version()];
        t.data_mut()[0] = 1.0;
        seen.push(t.version());
        *t.at_mut(&[0, 1]) = 2.0;
        seen.push(t.version());
        t.map_inplace(|v| v + 1.0);
        seen.push(t.version());
        t.axpy(1.0, &Tensor::zeros(&[2, 2]));
        seen.push(t.version());
        t.scale(2.0);
        seen.push(t.version());
        t.clamp_inplace(-1.0, 1.0);
        seen.push(t.version());
        t.fill_zero();
        seen.push(t.version());
        for w in seen.windows(2) {
            assert!(w[1] > w[0], "mutation must strictly advance the version");
        }
    }

    #[test]
    fn clones_share_version_and_diverge_on_write() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let mut c = t.clone();
        assert_eq!(t.version(), c.version(), "clone has identical contents");
        c.data_mut()[0] = 5.0;
        assert_ne!(t.version(), c.version());
        // Equality ignores the stamp: same contents compare equal even
        // though the versions differ.
        let fresh = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_ne!(t.version(), fresh.version());
        assert_eq!(t, fresh);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let back = a.transposed().unwrap().transposed().unwrap();
        assert_eq!(a, back);
    }
}
