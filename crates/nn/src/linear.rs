//! Fully-connected layer.

use crate::gemm;
use crate::init::{kaiming_normal, Rng};
use crate::layer::{Layer, Mode};
use crate::param::Parameter;
use crate::scratch::ScratchBuffer;
use crate::tensor::Tensor;

/// A fully-connected layer: `y = x W^T + b`.
///
/// Weights have shape `[out_features, in_features]`; the input is
/// `[batch, in_features]`. The three GEMMs (forward, `dW`, `dX`) go
/// through the blocked, row-parallel kernels in [`crate::gemm`], with
/// effective weights and the `dW` partial staged in layer-owned scratch
/// arenas instead of fresh allocations.
#[derive(Debug)]
pub struct Linear {
    weight: Parameter,
    bias: Option<Parameter>,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
    scratch: LinearScratch,
}

#[derive(Debug, Default)]
struct LinearScratch {
    /// Effective (fake-quantized) weights, `[out, in]`.
    wmat: ScratchBuffer,
    /// Effective bias, `[out]`.
    bias_eff: ScratchBuffer,
    /// `dW` staging, `[out, in]`.
    dw: ScratchBuffer,
}

impl Linear {
    /// Creates a Kaiming-initialized layer.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut Rng) -> Self {
        let weight = Parameter::new(
            format!("linear{in_features}x{out_features}.weight"),
            kaiming_normal(&[out_features, in_features], in_features, rng),
        );
        let bias = bias.then(|| {
            Parameter::new(
                format!("linear{in_features}x{out_features}.bias"),
                Tensor::zeros(&[out_features]),
            )
        });
        Linear {
            weight,
            bias,
            in_features,
            out_features,
            cached_input: None,
            scratch: LinearScratch::default(),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn forward_mode(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(
            input.shape().dim(1),
            self.in_features,
            "linear layer fed {} features, expects {}",
            input.shape().dim(1),
            self.in_features
        );
        let batch = input.shape().dim(0);
        let (m, k, n) = (batch, self.in_features, self.out_features);
        let wmat = self.weight.effective_into(&mut self.scratch.wmat);
        let mut out = vec![0.0f32; m * n];
        // y = x W^T
        gemm::gemm_nt(input.data(), wmat, &mut out, m, k, n);
        if let Some(bias) = &self.bias {
            let b = bias.effective_into(&mut self.scratch.bias_eff);
            for row in out.chunks_mut(n) {
                for (o, &bv) in row.iter_mut().zip(b) {
                    *o += bv;
                }
            }
        }
        if mode.caches() {
            self.cached_input = Some(input.clone());
        }
        Tensor::from_vec(out, &[m, n])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward called without training-mode forward");
        let batch = input.shape().dim(0);
        // dW = dY^T X  (shape [out, in])
        let dw = self.scratch.dw.filled(self.out_features * self.in_features);
        gemm::gemm_tn(
            grad_output.data(),
            input.data(),
            dw,
            self.out_features,
            batch,
            self.in_features,
        );
        for (g, &d) in self.weight.grad.data_mut().iter_mut().zip(&*dw) {
            *g += d;
        }
        if let Some(bias) = &mut self.bias {
            let n = self.out_features;
            for row in grad_output.data().chunks(n) {
                for (g, &r) in bias.grad.data_mut().iter_mut().zip(row) {
                    *g += r;
                }
            }
        }
        // dX = dY W  (shape [batch, in])
        let wmat = self.weight.effective_into(&mut self.scratch.wmat);
        let mut dx = vec![0.0f32; batch * self.in_features];
        gemm::gemm(
            grad_output.data(),
            wmat,
            &mut dx,
            batch,
            self.out_features,
            self.in_features,
        );
        Tensor::from_vec(dx, &[batch, self.in_features])
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }

    fn describe(&self) -> String {
        format!("Linear({}->{})", self.in_features, self.out_features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;

    /// Central-difference check of weight and input gradients.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(11);
        let mut layer = Linear::new(3, 2, true, &mut rng);
        let x = Tensor::from_vec(vec![0.2, -0.4, 0.9, 0.1, 0.3, -0.7], &[2, 3]);
        // Loss = sum(y^2)/2 so dL/dy = y.
        let y = layer.forward(&x);
        let gin = layer.backward(&y.clone());

        let eps = 1e-3;
        // Weight gradient check.
        for idx in 0..6 {
            let analytic = layer.weight.grad.data()[idx];
            let orig = layer.weight.value.data()[idx];
            layer.weight.value.data_mut()[idx] = orig + eps;
            let lp: f32 = layer
                .forward_mode(&x, Mode::Eval)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            layer.weight.value.data_mut()[idx] = orig - eps;
            let lm: f32 = layer
                .forward_mode(&x, Mode::Eval)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            layer.weight.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "weight[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
        // Input gradient check.
        for idx in 0..6 {
            let analytic = gin.data()[idx];
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = layer
                .forward_mode(&xp, Mode::Eval)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            let lm: f32 = layer
                .forward_mode(&xm, Mode::Eval)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "input[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn bias_shifts_output() {
        let mut rng = Rng::seed_from(4);
        let mut layer = Linear::new(2, 2, true, &mut rng);
        let x = Tensor::zeros(&[1, 2]);
        let y0 = layer.forward_mode(&x, Mode::Eval);
        layer.bias.as_mut().unwrap().value.data_mut()[0] = 5.0;
        let y1 = layer.forward_mode(&x, Mode::Eval);
        assert_eq!(y1.data()[0] - y0.data()[0], 5.0);
        assert_eq!(y1.data()[1], y0.data()[1]);
    }

    #[test]
    fn no_bias_layer_has_single_param() {
        let mut rng = Rng::seed_from(5);
        let layer = Linear::new(4, 4, false, &mut rng);
        assert_eq!(layer.params().len(), 1);
    }

    #[test]
    #[should_panic(expected = "backward called without")]
    fn backward_without_forward_panics() {
        let mut rng = Rng::seed_from(6);
        let mut layer = Linear::new(2, 2, false, &mut rng);
        layer.backward(&Tensor::zeros(&[1, 2]));
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut rng = Rng::seed_from(7);
        let mut layer = Linear::new(2, 2, false, &mut rng);
        layer.forward_mode(&Tensor::zeros(&[1, 2]), Mode::Eval);
        assert!(layer.cached_input.is_none());
    }
}
