//! Fully-connected layer.

use crate::gemm;
use crate::gemm_i8;
use crate::init::{kaiming_normal, Rng};
use crate::layer::{Int8Epilogue, Layer, Mode};
use crate::param::Parameter;
use crate::quant::QuantScheme;
use crate::scratch::{ScratchBuffer, ScratchI32, ScratchI8};
use crate::tensor::Tensor;

/// A fully-connected layer: `y = x W^T + b`.
///
/// Weights have shape `[out_features, in_features]`; the input is
/// `[batch, in_features]`. The three GEMMs (forward, `dW`, `dX`) go
/// through the blocked, row-parallel kernels in [`crate::gemm`], with
/// effective weights and the `dW` partial staged in layer-owned scratch
/// arenas instead of fresh allocations.
pub struct Linear {
    weight: Parameter,
    bias: Option<Parameter>,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
    scratch: LinearScratch,
    /// Int8 engine: persistent packed weight panels (see
    /// [`LinearPackedCache`]).
    packed: Option<LinearPackedCache>,
}

impl std::fmt::Debug for Linear {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Linear({}->{})", self.in_features, self.out_features)
    }
}

/// Persistent int8 weight state: the `[out, in]` weight steps quantized
/// and packed into `Bᵀ` GEMM panels **once per weight generation**.
///
/// Same invalidation contract as the conv cache: valid iff
/// `weight.generation()` still equals the stamp recorded at pack time
/// (see [`Parameter::generation`]); any weight write — including
/// `load_quantized` after a Rowhammer flip — forces a repack before the
/// next int8 forward.
struct LinearPackedCache {
    pb: gemm_i8::PackedB,
    scheme: QuantScheme,
    generation: u64,
}

/// Returns the packed weight panels, rebuilding if stale (free function
/// over disjoint `Linear` fields, mirroring the conv helper).
fn ensure_packed<'a>(
    slot: &'a mut Option<LinearPackedCache>,
    weight: &Parameter,
    wq: &mut ScratchI8,
    n: usize,
    k: usize,
) -> (&'a gemm_i8::PackedB, QuantScheme) {
    let generation = weight.generation();
    if slot.as_ref().is_none_or(|c| c.generation != generation) {
        let (steps, scheme) = weight.quantized_into(wq);
        *slot = Some(LinearPackedCache {
            pb: gemm_i8::PackedB::pack_nt(steps, n, k),
            scheme,
            generation,
        });
        rhb_telemetry::add_counter("nn/int8_weight_repacks", 1);
    }
    let c = slot.as_ref().expect("slot was just filled");
    (&c.pb, c.scheme)
}

#[derive(Debug, Default)]
struct LinearScratch {
    /// Effective (fake-quantized) weights, `[out, in]`.
    wmat: ScratchBuffer,
    /// Effective bias, `[out]`.
    bias_eff: ScratchBuffer,
    /// `dW` staging, `[out, in]`.
    dw: ScratchBuffer,
    /// Int8 engine: quantized weight steps, `[out, in]`.
    wq: ScratchI8,
    /// Int8 engine: quantized input activations, `[batch, in]`.
    xq: ScratchI8,
    /// Int8 engine: `i32` GEMM accumulators, `[batch, out]`.
    acc: ScratchI32,
}

impl Linear {
    /// Creates a Kaiming-initialized layer.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut Rng) -> Self {
        let weight = Parameter::new(
            format!("linear{in_features}x{out_features}.weight"),
            kaiming_normal(&[out_features, in_features], in_features, rng),
        );
        let bias = bias.then(|| {
            Parameter::new(
                format!("linear{in_features}x{out_features}.bias"),
                Tensor::zeros(&[out_features]),
            )
        });
        Linear {
            weight,
            bias,
            in_features,
            out_features,
            cached_input: None,
            scratch: LinearScratch::default(),
            packed: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The int8 engine's forward pass: `i8` weight steps (straight off
    /// the weight-file grid) × dynamically quantized `i8` activations,
    /// accumulated exactly in `i32`, then requantized back to the
    /// activation scale in one f32 multiply per output. The bias — a
    /// vector, not a matrix — is added in f32 from its own grid.
    ///
    /// Activations are quantized **per sample**: each batch row gets its
    /// own dynamic scale, so a sample's logits never depend on its
    /// batchmates and int8 outputs are batch-size invariant (the
    /// batching half of the parity contract in `DESIGN.md`).
    fn forward_int8(&mut self, input: &Tensor, epi: Int8Epilogue) -> Tensor {
        let batch = input.shape().dim(0);
        let (m, k, n) = (batch, self.in_features, self.out_features);
        let (pb, w_scheme) =
            ensure_packed(&mut self.packed, &self.weight, &mut self.scratch.wq, n, k);
        let xq = self.scratch.xq.filled(m * k);
        let mut row_deq = vec![0.0f32; m];
        for (i, (src, dst)) in input.data().chunks(k).zip(xq.chunks_mut(k)).enumerate() {
            let a_scheme = QuantScheme::for_activations(src);
            a_scheme.quantize_into(src, dst);
            row_deq[i] = a_scheme.scale * w_scheme.scale;
            rhb_telemetry::observe!("nn/requant_scale", f64::from(row_deq[i]));
        }
        let acc = self.scratch.acc.filled(m * n);
        // y_q = x_q W_q^T (exact integer arithmetic, prepacked panels)
        gemm_i8::gemm_i8_nt_pb(xq, pb, acc, m);
        let relu = epi == Int8Epilogue::Relu;
        let mut out = vec![0.0f32; m * n];
        match &self.bias {
            Some(bias) => {
                let b = bias.effective_into(&mut self.scratch.bias_eff);
                for ((row, acc_row), &deq) in out.chunks_mut(n).zip(acc.chunks(n)).zip(&row_deq) {
                    for ((o, &a), &bv) in row.iter_mut().zip(acc_row).zip(b) {
                        let v = a as f32 * deq + bv;
                        *o = if relu { v.max(0.0) } else { v };
                    }
                }
            }
            None => {
                for ((row, acc_row), &deq) in out.chunks_mut(n).zip(acc.chunks(n)).zip(&row_deq) {
                    for (o, &a) in row.iter_mut().zip(acc_row) {
                        let v = a as f32 * deq;
                        *o = if relu { v.max(0.0) } else { v };
                    }
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

impl Layer for Linear {
    fn forward_mode(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(
            input.shape().dim(1),
            self.in_features,
            "linear layer fed {} features, expects {}",
            input.shape().dim(1),
            self.in_features
        );
        if mode == Mode::Int8 {
            return self.forward_int8(input, Int8Epilogue::None);
        }
        let batch = input.shape().dim(0);
        let (m, k, n) = (batch, self.in_features, self.out_features);
        let wmat = self.weight.effective_into(&mut self.scratch.wmat);
        let mut out = vec![0.0f32; m * n];
        // y = x W^T
        gemm::gemm_nt(input.data(), wmat, &mut out, m, k, n);
        if let Some(bias) = &self.bias {
            let b = bias.effective_into(&mut self.scratch.bias_eff);
            for row in out.chunks_mut(n) {
                for (o, &bv) in row.iter_mut().zip(b) {
                    *o += bv;
                }
            }
        }
        if mode.caches() {
            self.cached_input = Some(input.clone());
        }
        Tensor::from_vec(out, &[m, n])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward called without training-mode forward");
        let batch = input.shape().dim(0);
        // dW = dY^T X  (shape [out, in])
        let dw = self.scratch.dw.filled(self.out_features * self.in_features);
        gemm::gemm_tn(
            grad_output.data(),
            input.data(),
            dw,
            self.out_features,
            batch,
            self.in_features,
        );
        for (g, &d) in self.weight.grad.data_mut().iter_mut().zip(&*dw) {
            *g += d;
        }
        if let Some(bias) = &mut self.bias {
            let n = self.out_features;
            for row in grad_output.data().chunks(n) {
                for (g, &r) in bias.grad.data_mut().iter_mut().zip(row) {
                    *g += r;
                }
            }
        }
        // dX = dY W  (shape [batch, in])
        let wmat = self.weight.effective_into(&mut self.scratch.wmat);
        let mut dx = vec![0.0f32; batch * self.in_features];
        gemm::gemm(
            grad_output.data(),
            wmat,
            &mut dx,
            batch,
            self.out_features,
            self.in_features,
        );
        Tensor::from_vec(dx, &[batch, self.in_features])
    }

    fn params(&self) -> Vec<&Parameter> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }

    fn describe(&self) -> String {
        format!("Linear({}->{})", self.in_features, self.out_features)
    }

    fn op_name(&self) -> &'static str {
        "linear"
    }

    fn try_forward_int8_fused(&mut self, input: &Tensor, epi: Int8Epilogue) -> Option<Tensor> {
        // Linear outputs are [batch, out]: only the elementwise Relu
        // tail can be absorbed; spatial pooling cannot.
        match epi {
            Int8Epilogue::Relu => Some(self.forward_int8(input, epi)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;

    /// Central-difference check of weight and input gradients.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(11);
        let mut layer = Linear::new(3, 2, true, &mut rng);
        let x = Tensor::from_vec(vec![0.2, -0.4, 0.9, 0.1, 0.3, -0.7], &[2, 3]);
        // Loss = sum(y^2)/2 so dL/dy = y.
        let y = layer.forward(&x);
        let gin = layer.backward(&y.clone());

        let eps = 1e-3;
        // Weight gradient check.
        for idx in 0..6 {
            let analytic = layer.weight.grad.data()[idx];
            let orig = layer.weight.value.data()[idx];
            layer.weight.value.data_mut()[idx] = orig + eps;
            let lp: f32 = layer
                .forward_mode(&x, Mode::Eval)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            layer.weight.value.data_mut()[idx] = orig - eps;
            let lm: f32 = layer
                .forward_mode(&x, Mode::Eval)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            layer.weight.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "weight[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
        // Input gradient check.
        for idx in 0..6 {
            let analytic = gin.data()[idx];
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = layer
                .forward_mode(&xp, Mode::Eval)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            let lm: f32 = layer
                .forward_mode(&xm, Mode::Eval)
                .data()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-2,
                "input[{idx}]: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn bias_shifts_output() {
        let mut rng = Rng::seed_from(4);
        let mut layer = Linear::new(2, 2, true, &mut rng);
        let x = Tensor::zeros(&[1, 2]);
        let y0 = layer.forward_mode(&x, Mode::Eval);
        layer.bias.as_mut().unwrap().value.data_mut()[0] = 5.0;
        let y1 = layer.forward_mode(&x, Mode::Eval);
        assert_eq!(y1.data()[0] - y0.data()[0], 5.0);
        assert_eq!(y1.data()[1], y0.data()[1]);
    }

    #[test]
    fn no_bias_layer_has_single_param() {
        let mut rng = Rng::seed_from(5);
        let layer = Linear::new(4, 4, false, &mut rng);
        assert_eq!(layer.params().len(), 1);
    }

    #[test]
    #[should_panic(expected = "backward called without")]
    fn backward_without_forward_panics() {
        let mut rng = Rng::seed_from(6);
        let mut layer = Linear::new(2, 2, false, &mut rng);
        layer.backward(&Tensor::zeros(&[1, 2]));
    }

    fn deployed_layer(seed: u64) -> Linear {
        let mut rng = Rng::seed_from(seed);
        let mut layer = Linear::new(16, 8, true, &mut rng);
        for p in layer.params_mut() {
            p.deploy().unwrap();
        }
        layer
    }

    fn random_input(seed: u64, rows: usize) -> Tensor {
        let mut rng = Rng::seed_from(seed);
        let mut x = Tensor::zeros(&[rows, 16]);
        for v in x.data_mut() {
            *v = rng.uniform(-1.0, 1.0);
        }
        x
    }

    /// The int8 path's only error source is activation rounding (deployed
    /// weights sit exactly on the grid), so every logit must land within
    /// half an activation step through the output's absolute weight mass.
    #[test]
    fn int8_forward_tracks_fake_quant_reference() {
        let mut layer = deployed_layer(8);
        let x = random_input(9, 4);
        let y_ref = layer.forward_mode(&x, Mode::Eval);
        let y_i8 = layer.forward_mode(&x, Mode::Int8);
        let w = layer.params()[0];
        let ws = w.scheme.unwrap();
        let wabs: Vec<f32> = (0..8)
            .map(|j| {
                w.value.data()[j * 16..(j + 1) * 16]
                    .iter()
                    .map(|&v| ws.fake(v).abs())
                    .sum()
            })
            .collect();
        for (i, (row_ref, row_i8)) in y_ref
            .data()
            .chunks(8)
            .zip(y_i8.data().chunks(8))
            .enumerate()
        {
            let s_a = QuantScheme::for_activations(&x.data()[i * 16..(i + 1) * 16]).scale;
            for j in 0..8 {
                let bound = 0.5 * s_a * wabs[j] + 1e-5;
                assert!(
                    (row_ref[j] - row_i8[j]).abs() <= bound,
                    "row {i} out {j}: {} vs {} (bound {bound})",
                    row_ref[j],
                    row_i8[j]
                );
            }
        }
    }

    /// Per-sample activation scales make int8 outputs independent of
    /// batch composition: a row forwarded alone equals the same row
    /// forwarded inside a batch, bit for bit.
    #[test]
    fn int8_outputs_are_batch_invariant() {
        let mut layer = deployed_layer(10);
        let x = random_input(11, 5);
        let y_all = layer.forward_mode(&x, Mode::Int8);
        for i in 0..5 {
            let xi = Tensor::from_vec(x.data()[i * 16..(i + 1) * 16].to_vec(), &[1, 16]);
            let yi = layer.forward_mode(&xi, Mode::Int8);
            assert_eq!(yi.data(), &y_all.data()[i * 8..(i + 1) * 8]);
        }
    }

    #[test]
    fn int8_relu_fusion_is_bit_identical_and_pool_is_declined() {
        let mut layer = deployed_layer(12);
        let x = random_input(13, 3);
        let base = layer.forward_mode(&x, Mode::Int8);
        let fused = layer
            .try_forward_int8_fused(&x, Int8Epilogue::Relu)
            .expect("linear absorbs relu");
        assert_eq!(fused, base.map(|v| v.max(0.0)));
        assert!(layer
            .try_forward_int8_fused(&x, Int8Epilogue::MaxPool { window: 2 })
            .is_none());
    }

    #[test]
    fn packed_weight_cache_invalidates_on_bit_flip_reload() {
        let mut layer = deployed_layer(14);
        let x = random_input(15, 2);
        let before = layer.forward_mode(&x, Mode::Int8); // warms the cache
        let mut q = layer.weight.quantized();
        q.flip_bit(7, 6).unwrap();
        layer.weight.load_quantized(&q);
        let after_warm = layer.forward_mode(&x, Mode::Int8);
        assert_ne!(before.data(), after_warm.data());
        let mut cold = deployed_layer(14);
        cold.weight.load_quantized(&q);
        let after_cold = cold.forward_mode(&x, Mode::Int8);
        assert_eq!(after_warm.data(), after_cold.data());
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut rng = Rng::seed_from(7);
        let mut layer = Linear::new(2, 2, false, &mut rng);
        layer.forward_mode(&Tensor::zeros(&[1, 2]), Mode::Eval);
        assert!(layer.cached_input.is_none());
    }
}
