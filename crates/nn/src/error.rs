//! Error type shared by the neural-network substrate.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, NnError>;

/// Errors raised by tensor and network operations.
///
/// Shape errors are recoverable programming mistakes surfaced through
/// `Result` on fallible entry points; hot-loop internals use debug
/// assertions instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// What the operation expected.
        expected: Vec<usize>,
        /// What it received.
        actual: Vec<usize>,
        /// The operation that failed.
        op: &'static str,
    },
    /// An index into a tensor, page, or parameter table was out of range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        len: usize,
        /// What was being indexed.
        what: &'static str,
    },
    /// The weight file being decoded is malformed.
    MalformedWeightFile(String),
    /// A quantization scheme was asked to operate on data it cannot express.
    Quantization(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch {
                expected,
                actual,
                op,
            } => write!(
                f,
                "shape mismatch in {op}: expected {expected:?}, got {actual:?}"
            ),
            NnError::IndexOutOfRange { index, len, what } => {
                write!(f, "index {index} out of range for {what} of length {len}")
            }
            NnError::MalformedWeightFile(msg) => write!(f, "malformed weight file: {msg}"),
            NnError::Quantization(msg) => write!(f, "quantization error: {msg}"),
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = NnError::ShapeMismatch {
            expected: vec![2, 3],
            actual: vec![3, 2],
            op: "matmul",
        };
        let msg = err.to_string();
        assert!(msg.starts_with("shape mismatch"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }

    #[test]
    fn index_error_mentions_subject() {
        let err = NnError::IndexOutOfRange {
            index: 9,
            len: 4,
            what: "pages",
        };
        assert!(err.to_string().contains("pages"));
    }
}
