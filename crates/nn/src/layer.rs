//! The [`Layer`] trait: explicit forward/backward building blocks.
//!
//! Rather than a general autograd tape, each layer caches whatever it needs
//! from the forward pass and implements its own backward pass. This keeps the
//! substrate small, auditable, and fast for the CNN shapes the attack uses,
//! while still providing the two gradient flavours the paper's Algorithm 1
//! consumes: gradients w.r.t. *weights* (for locating vulnerable bits) and
//! gradients w.r.t. the *input* (for FGSM trigger learning).

use crate::param::Parameter;
use crate::tensor::Tensor;

/// Forward-pass mode.
///
/// * `Train` — batch-norm uses batch statistics and updates its running
///   averages; activations are cached for backward. Used when training
///   victims from scratch.
/// * `Frozen` — *deployed-model gradients*: normalization layers use their
///   frozen running statistics (exactly the arithmetic inference will
///   run), but activations are still cached so `backward` works. This is
///   the mode backdoor optimization uses: the attacker differentiates the
///   network the victim actually serves.
/// * `Eval` — inference only; running statistics, no caches.
/// * `Int8` — deployed inference on the true int8 engine: GEMM layers
///   multiply `i8` weight steps straight off the weight-file grid against
///   dynamically quantized `i8` activations with `i32` accumulation (see
///   `DESIGN.md`, "Inference engines"). Non-GEMM layers behave exactly as
///   in `Eval`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training mode (batch statistics, caching).
    Train,
    /// Deployed-model gradient mode (running statistics, caching).
    Frozen,
    /// Inference mode (running statistics, no caching).
    Eval,
    /// Deployed int8-engine inference (running statistics, no caching).
    Int8,
}

impl Mode {
    /// Whether this mode caches activations for a later backward pass.
    pub fn caches(&self) -> bool {
        !matches!(self, Mode::Eval | Mode::Int8)
    }

    /// Whether normalization layers use frozen running statistics.
    pub fn uses_running_stats(&self) -> bool {
        !matches!(self, Mode::Train)
    }
}

/// A cheap elementwise/pooling tail a GEMM layer can absorb into its
/// int8 requantize sweep.
///
/// In [`Mode::Int8`] the conv/linear epilogue already walks every `i32`
/// accumulator once to requantize it (`acc · deq + bias`); applying the
/// *next* layer's function during that same walk removes a full tensor
/// traversal plus an output-tensor allocation per fused pair. Both
/// fusions are bit-identical to running the layers separately:
///
/// * `Relu` — `max(acc·deq + bias, 0)` is exactly relu-after-requantize.
/// * `MaxPool` — requantization is monotone non-decreasing in `acc`
///   (`deq > 0`), so `max` commutes through it *exactly*, window by
///   window.
///
/// [`Sequential::forward_mode`] runs the peephole: when a layer reports
/// an absorbable epilogue via [`Layer::int8_epilogue`], the preceding
/// layer is offered it through [`Layer::try_forward_int8_fused`] and the
/// absorbed layer is skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Int8Epilogue {
    /// Plain requantize: `acc·deq + bias`.
    None,
    /// Fused `max(·, 0)` (an absorbed `Relu`).
    Relu,
    /// Fused non-overlapping spatial max-pool (an absorbed `MaxPool2d`
    /// with `stride == window`), applied after requantization.
    MaxPool {
        /// Pooling window side (= stride).
        window: usize,
    },
}

/// One differentiable building block.
///
/// Contract: `backward` may only be called after `forward` with
/// `Mode::Train`, and consumes the caches that forward populated. Gradients
/// accumulate into each parameter's `grad` tensor; callers reset them with
/// [`Layer::zero_grad`].
pub trait Layer: Send {
    /// Computes the layer output, caching activations when training.
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.forward_mode(input, Mode::Train)
    }

    /// Computes the layer output in the given mode.
    fn forward_mode(&mut self, input: &Tensor, mode: Mode) -> Tensor;

    /// Backpropagates `grad_output`, accumulating parameter gradients and
    /// returning the gradient w.r.t. the layer input.
    ///
    /// # Panics
    ///
    /// Implementations panic if called without a preceding training-mode
    /// forward pass.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Immutable views of the layer's parameters, in deterministic order.
    fn params(&self) -> Vec<&Parameter>;

    /// Mutable views of the layer's parameters, in the same order.
    fn params_mut(&mut self) -> Vec<&mut Parameter>;

    /// Clears every parameter gradient.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Human-readable layer description for debugging.
    fn describe(&self) -> String;

    /// Short stable op label (`conv2d`, `linear`, …) keying the
    /// per-layer eval-timing histograms (`nn/eval/<op>_<engine>_s`).
    fn op_name(&self) -> &'static str {
        "layer"
    }

    /// If this layer is a cheap elementwise/pooling op the *previous*
    /// GEMM layer could absorb into its int8 requantize sweep, the
    /// epilogue describing it. `None` (the default) means the layer must
    /// run on its own.
    ///
    /// Only layers whose int8 forward is a pure function the fused
    /// epilogue reproduces **bit-identically** may return `Some` —
    /// `Relu`, and `MaxPool2d` with `stride == window`.
    fn int8_epilogue(&self) -> Option<Int8Epilogue> {
        None
    }

    /// Attempts a fused [`Mode::Int8`] forward with `epi` applied inside
    /// this layer's requantize sweep, returning the tensor the *pair*
    /// (this layer + the absorbed one) would have produced.
    ///
    /// Returning `None` means this layer cannot absorb `epi` (or has no
    /// fused path at all — the default); the caller must then run both
    /// layers unfused. Implementations must be bit-identical to the
    /// unfused pair.
    fn try_forward_int8_fused(&mut self, _input: &Tensor, _epi: Int8Epilogue) -> Option<Tensor> {
        None
    }

    /// [`Layer::forward_mode`] plus a per-layer eval-timing sample.
    ///
    /// For the two inference modes this records the layer's wall time
    /// into `nn/eval/<op>_<engine>_s` (`engine` = `f32` for [`Mode::Eval`],
    /// `i8` for [`Mode::Int8`]) — the measurement surface for "where does
    /// inference time go, and does int8 actually win per op?". Training
    /// and frozen forwards, or a disabled registry, skip straight to
    /// `forward_mode`. [`Sequential`] and the model zoo's hand-rolled
    /// forward graphs route every layer call through this.
    fn forward_instrumented(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let engine = match mode {
            Mode::Eval => "f32",
            Mode::Int8 => "i8",
            Mode::Train | Mode::Frozen => return self.forward_mode(input, mode),
        };
        if !rhb_telemetry::enabled() {
            return self.forward_mode(input, mode);
        }
        let t0 = std::time::Instant::now();
        let out = self.forward_mode(input, mode);
        rhb_telemetry::observe_value(
            &format!("nn/eval/{}_{engine}_s", self.op_name()),
            t0.elapsed().as_secs_f64(),
        );
        out
    }
}

/// A stack of layers applied in sequence.
///
/// # Example
///
/// ```
/// use rhb_nn::layer::{Layer, Sequential};
/// use rhb_nn::linear::Linear;
/// use rhb_nn::activation::Relu;
/// use rhb_nn::init::Rng;
///
/// let mut rng = Rng::seed_from(0);
/// let mut net = Sequential::new();
/// net.push(Box::new(Linear::new(8, 4, true, &mut rng)));
/// net.push(Box::new(Relu::new()));
/// let y = net.forward(&rhb_nn::Tensor::zeros(&[2, 8]));
/// assert_eq!(y.shape().dims(), &[2, 4]);
/// ```
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Layer for Sequential {
    fn forward_mode(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let t0 = rhb_telemetry::enabled().then(std::time::Instant::now);
        let mut x = input.clone();
        let mut i = 0;
        while i < self.layers.len() {
            // Int8 peephole: when the next layer is an absorbable
            // epilogue (Relu / non-overlapping MaxPool2d), offer it to
            // the current layer's fused requantize sweep and skip the
            // absorbed layer. Bit-identical to the unfused pair; timing
            // for the fused call is recorded under the GEMM layer's op.
            if mode == Mode::Int8 && i + 1 < self.layers.len() {
                if let Some(epi) = self.layers[i + 1].int8_epilogue() {
                    let tf = rhb_telemetry::enabled().then(std::time::Instant::now);
                    if let Some(out) = self.layers[i].try_forward_int8_fused(&x, epi) {
                        if let Some(tf) = tf {
                            rhb_telemetry::observe_value(
                                &format!("nn/eval/{}_i8_s", self.layers[i].op_name()),
                                tf.elapsed().as_secs_f64(),
                            );
                        }
                        x = out;
                        i += 2;
                        continue;
                    }
                }
            }
            x = self.layers[i].forward_instrumented(&x, mode);
            i += 1;
        }
        if let Some(t0) = t0 {
            rhb_telemetry::observe_value("nn/seq_forward_s", t0.elapsed().as_secs_f64());
            rhb_telemetry::add_counter("nn/forward_passes", 1);
        }
        x
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let t0 = rhb_telemetry::enabled().then(std::time::Instant::now);
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        if let Some(t0) = t0 {
            rhb_telemetry::observe_value("nn/seq_backward_s", t0.elapsed().as_secs_f64());
            rhb_telemetry::add_counter("nn/backward_passes", 1);
        }
        g
    }

    fn params(&self) -> Vec<&Parameter> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn describe(&self) -> String {
        let inner: Vec<String> = self.layers.iter().map(|l| l.describe()).collect();
        format!("Sequential[{}]", inner.join(" -> "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::init::Rng;
    use crate::linear::Linear;

    #[test]
    fn sequential_chains_shapes() {
        let mut rng = Rng::seed_from(0);
        let mut net = Sequential::new();
        net.push(Box::new(Linear::new(6, 5, true, &mut rng)));
        net.push(Box::new(Relu::new()));
        net.push(Box::new(Linear::new(5, 3, true, &mut rng)));
        let y = net.forward(&Tensor::zeros(&[4, 6]));
        assert_eq!(y.shape().dims(), &[4, 3]);
    }

    #[test]
    fn sequential_backward_returns_input_grad_shape() {
        let mut rng = Rng::seed_from(1);
        let mut net = Sequential::new();
        net.push(Box::new(Linear::new(6, 3, true, &mut rng)));
        let x = Tensor::full(&[2, 6], 0.5);
        let y = net.forward(&x);
        let gin = net.backward(&Tensor::full(y.shape().dims(), 1.0));
        assert_eq!(gin.shape().dims(), &[2, 6]);
    }

    #[test]
    fn params_are_deterministically_ordered() {
        let mut rng = Rng::seed_from(2);
        let mut net = Sequential::new();
        net.push(Box::new(Linear::new(4, 4, true, &mut rng)));
        net.push(Box::new(Linear::new(4, 2, true, &mut rng)));
        let names: Vec<String> = net.params().iter().map(|p| p.name.clone()).collect();
        assert_eq!(names.len(), 4);
        assert!(names[0].contains("weight") && names[1].contains("bias"));
    }

    #[test]
    fn eval_modes_record_per_layer_timings_by_op_and_engine() {
        rhb_telemetry::install(std::sync::Arc::new(rhb_telemetry::NoopSink));
        let mut rng = Rng::seed_from(9);
        let mut net = Sequential::new();
        net.push(Box::new(Linear::new(6, 4, true, &mut rng)));
        net.push(Box::new(Relu::new()));
        let x = Tensor::zeros(&[2, 6]);
        net.forward_mode(&x, Mode::Eval);
        for p in net.params_mut() {
            p.deploy().expect("quantize test parameters");
        }
        net.forward_mode(&x, Mode::Int8);
        net.forward_mode(&x, Mode::Train); // must NOT add eval timings
        let report = rhb_telemetry::report();
        let names: Vec<&str> = report
            .histograms
            .iter()
            .map(|h| h.name.as_str())
            .filter(|n| n.starts_with("nn/eval/"))
            .collect();
        assert!(names.contains(&"nn/eval/linear_f32_s"), "{names:?}");
        assert!(names.contains(&"nn/eval/relu_f32_s"), "{names:?}");
        assert!(names.contains(&"nn/eval/linear_i8_s"), "{names:?}");
        assert!(
            !names.contains(&"nn/eval/relu_i8_s"),
            "int8 relu is absorbed into the linear requantize sweep: {names:?}"
        );
        rhb_telemetry::shutdown();
        rhb_telemetry::reset();
    }

    #[test]
    fn int8_relu_fusion_is_bit_identical_to_unfused_layers() {
        let mut rng = Rng::seed_from(21);
        let mut lin = Linear::new(7, 5, true, &mut rng);
        let mut relu = Relu::new();
        let x = {
            let mut t = Tensor::zeros(&[3, 7]);
            let mut r = Rng::seed_from(22);
            for v in t.data_mut() {
                *v = r.normal();
            }
            t
        };
        for p in lin.params_mut() {
            p.deploy().expect("deploy test weights");
        }
        let unfused = relu.forward_mode(&lin.forward_mode(&x, Mode::Int8), Mode::Int8);

        let mut net = Sequential::new();
        net.push(Box::new(lin));
        net.push(Box::new(relu));
        let fused = net.forward_mode(&x, Mode::Int8);
        assert_eq!(fused, unfused, "fused epilogue must be bit-identical");
    }

    #[test]
    fn op_names_are_stable_labels() {
        let mut rng = Rng::seed_from(10);
        assert_eq!(Linear::new(2, 2, false, &mut rng).op_name(), "linear");
        assert_eq!(Relu::new().op_name(), "relu");
        assert_eq!(Sequential::new().op_name(), "layer", "default label");
    }

    #[test]
    fn zero_grad_clears_all_layers() {
        let mut rng = Rng::seed_from(3);
        let mut net = Sequential::new();
        net.push(Box::new(Linear::new(3, 3, true, &mut rng)));
        let x = Tensor::full(&[1, 3], 1.0);
        let y = net.forward(&x);
        net.backward(&Tensor::full(y.shape().dims(), 1.0));
        assert!(net.params()[0].grad.max_abs() > 0.0);
        net.zero_grad();
        assert_eq!(net.params()[0].grad.max_abs(), 0.0);
    }
}
