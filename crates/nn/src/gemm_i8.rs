//! Int8 GEMM kernels: `i8×i8` multiply with exact `i32` accumulation.
//!
//! These are the compute core of the deployed-model inference engine
//! ([`crate::layer::Mode::Int8`]): the weight operand is the raw `i8`
//! step grid of the victim's weight file — the very bytes Rowhammer
//! flips — and the activation operand is the dynamically quantized
//! input. Two variants cover the layer shapes:
//!
//! * [`gemm_i8`] — `C = A·B` with `A: [m,k]`, `B: [k,n]` (conv forward:
//!   quantized kernel × im2col columns),
//! * [`gemm_i8_nt`] — `C = A·Bᵀ` with `B: [n,k]` (linear forward:
//!   quantized input × quantized weight rows).
//!
//! Layout mirrors [`crate::gemm`]: the public entry points record an
//! `nn/gemm_i8_flops` histogram sample and split the `m` rows of `C`
//! across the process-wide [`rhb_par`] pool when the product is large
//! enough, while the `*_serial` kernels do the arithmetic and are what
//! batch-parallel layers call from inside their own tasks. All variants
//! share one blocked core: panels are packed into a thread-local arena
//! widened to `i16` and interleaved in *pairs* along `k`, the layout
//! `pmaddwd` wants.
//!
//! # Micro-kernel dispatch
//!
//! The pair-dot micro-kernel comes in three widths, selected once per
//! process by [`KernelKind::auto`] (cpuid via
//! `is_x86_feature_detected!`, overridable with `RHB_I8_KERNEL=
//! scalar|sse2|avx2` for fallback testing):
//!
//! * [`KernelKind::Avx2`] — `_mm256_madd_epi16`, 16-column tiles,
//! * [`KernelKind::Sse2`] — `_mm_madd_epi16`, 8-column tiles (baseline
//!   on x86-64, no detection needed),
//! * [`KernelKind::Scalar`] — portable pair loop, any architecture.
//!
//! `pmaddubsw` (the u8×i8 AVX2 path) is deliberately *not* used: both
//! of our operands are signed steps and `pmaddubsw` saturates its i16
//! intermediate, which would break the exactness contract. Widening to
//! `i16` and using `pmaddwd` keeps every intermediate exact.
//!
//! # Prepacked weights
//!
//! Weights are static per deployed model, so layers cache their packed
//! panels across calls instead of re-packing every forward:
//! [`PackedA`] holds the conv kernel matrix (the `A` operand of
//! `gemm_i8`), [`PackedB`] holds the linear weight matrix (the `Bᵀ`
//! operand of `gemm_i8_nt`), and the `*_pa`/`*_pb` entry points consume
//! them. Packing is pure layout transformation of exact integers, so
//! prepacked products are bit-identical to the pack-on-the-fly path.
//! Cache owners key validity on [`crate::tensor::Tensor::version`] —
//! see `Parameter::generation`.
//!
//! # Determinism
//!
//! Integer accumulation is exact and associative, so any blocking, any
//! packing, any micro-kernel width, and any thread count produce
//! bit-identical `i32` results by construction — a strictly stronger
//! guarantee than the f32 kernels' carefully ordered accumulation.
//!
//! # Overflow
//!
//! Products are bounded by `127·127 = 16129` in magnitude (note
//! `-128·-128` cannot occur on the weight side of a symmetric scheme,
//! but is still safely covered), so a `k`-long dot product stays inside
//! `i32` for every `k ≤` [`MAX_K`]. The public entry points assert this;
//! every layer shape in the repository is orders of magnitude below it.

use std::cell::RefCell;
use std::sync::OnceLock;

/// Register tile height (rows of `C` per micro-kernel call).
const MR: usize = 4;
/// Widest register tile (columns of `C` per AVX2 micro-kernel call);
/// SSE2 and the scalar kernel use half of it.
const NR_MAX: usize = 16;
/// `k`-block: one packed `A`/`B` panel pair stays L1/L2-resident.
const KC: usize = 256;
/// `m`-block per packed `A` panel.
const MC: usize = 64;
/// `n`-block per packed `B` panel.
const NC: usize = 512;

/// Below this many multiply-accumulates (`2·m·n·k`) a product runs
/// serially even on a multi-thread pool. Chosen against BENCH_5's
/// 2-thread regression: the deployed zoo's per-layer products all sit
/// far below any credible cross-thread handoff cost, so only genuinely
/// large products (≥ the 192³ bench scale) may fan out.
pub const PAR_MIN_FLOPS: usize = 1 << 18;

/// Largest inner dimension for which a `k`-long `i8×i8` dot product is
/// guaranteed not to overflow `i32`: `k · 128² ≤ i32::MAX`.
pub const MAX_K: usize = (i32::MAX / (128 * 128)) as usize;

thread_local! {
    /// Per-thread packing arena `(A-panel, B-panel)`, grown monotonically.
    static PACK_I8: RefCell<(Vec<i16>, Vec<i16>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Which pair-dot micro-kernel the blocked core runs.
///
/// All kinds produce bit-identical results (exact integer arithmetic);
/// they differ only in tile width and instruction set. [`auto`] picks
/// the widest one the CPU supports; explicit kinds exist so parity
/// tests can exercise every supported width on any host.
///
/// [`auto`]: KernelKind::auto
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Portable pair loop, any architecture.
    Scalar,
    /// `_mm_madd_epi16`, 8-column tiles (x86-64 baseline).
    Sse2,
    /// `_mm256_madd_epi16`, 16-column tiles (requires AVX2).
    Avx2,
}

impl KernelKind {
    /// Packed `B`-tile width this kernel consumes.
    pub fn nr(self) -> usize {
        match self {
            KernelKind::Scalar | KernelKind::Sse2 => 8,
            KernelKind::Avx2 => NR_MAX,
        }
    }

    /// Whether this kernel can run on the current CPU.
    pub fn is_supported(self) -> bool {
        match self {
            KernelKind::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelKind::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            KernelKind::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }

    /// Every kind the current CPU can run, widest last. Parity suites
    /// iterate this so CI exercises each supported width.
    pub fn all_supported() -> Vec<KernelKind> {
        [KernelKind::Scalar, KernelKind::Sse2, KernelKind::Avx2]
            .into_iter()
            .filter(|k| k.is_supported())
            .collect()
    }

    /// Parses an `RHB_I8_KERNEL` value (`scalar`, `sse2`, `avx2`).
    pub fn parse(s: &str) -> Option<KernelKind> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(KernelKind::Scalar),
            "sse2" => Some(KernelKind::Sse2),
            "avx2" => Some(KernelKind::Avx2),
            _ => None,
        }
    }

    /// The process-wide kernel: the widest supported kind, unless
    /// `RHB_I8_KERNEL` forces a narrower one. Resolved once and cached —
    /// mid-process env changes are ignored, which keeps every packed
    /// panel in the process mutually compatible.
    pub fn auto() -> KernelKind {
        static AUTO: OnceLock<KernelKind> = OnceLock::new();
        *AUTO.get_or_init(|| {
            if let Ok(v) = std::env::var("RHB_I8_KERNEL") {
                match KernelKind::parse(&v) {
                    Some(k) if k.is_supported() => return k,
                    Some(k) => eprintln!(
                        "RHB_I8_KERNEL={v}: {k:?} is not supported on this CPU; auto-selecting"
                    ),
                    None => eprintln!(
                        "RHB_I8_KERNEL={v}: unknown kernel, valid values are scalar|sse2|avx2"
                    ),
                }
            }
            *KernelKind::all_supported()
                .last()
                .expect("the scalar kernel is always supported")
        })
    }
}

fn record_flops(m: usize, k: usize, n: usize) {
    rhb_telemetry::observe!("nn/gemm_i8_flops", (2 * m * n * k) as f64);
}

fn should_parallelize(threads: usize, m: usize, k: usize, n: usize) -> bool {
    threads > 1 && m >= 2 && 2 * m * n * k >= PAR_MIN_FLOPS
}

fn assert_no_overflow(k: usize) {
    assert!(
        k <= MAX_K,
        "int8 GEMM inner dimension {k} could overflow the i32 accumulator (max {MAX_K})"
    );
}

/// `C = A·B` (`A: [m,k]`, `B: [k,n]`, `C: [m,n]`, all row-major).
/// Parallelizes over row blocks of `C`; exact at any pool size.
pub fn gemm_i8(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    assert_no_overflow(k);
    record_flops(m, k, n);
    let pool = rhb_par::pool();
    if !should_parallelize(pool.threads(), m, k, n) {
        return gemm_i8_serial(a, b, c, m, k, n);
    }
    let ranges = rhb_par::split_range(m, pool.threads(), MR);
    let chunks = rhb_par::split_slice_mut(c, &ranges, n);
    let tasks: Vec<rhb_par::Task<'_>> = ranges
        .iter()
        .zip(chunks)
        .map(|(r, c_rows)| {
            let a_rows = &a[r.start * k..r.end * k];
            let rows = r.end - r.start;
            Box::new(move || gemm_i8_serial(a_rows, b, c_rows, rows, k, n)) as rhb_par::Task<'_>
        })
        .collect();
    pool.run(tasks);
}

/// `C = A·Bᵀ` (`A: [m,k]`, `B: [n,k]`, `C: [m,n]`). Row-parallel.
pub fn gemm_i8_nt(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    assert_no_overflow(k);
    record_flops(m, k, n);
    let pool = rhb_par::pool();
    if !should_parallelize(pool.threads(), m, k, n) {
        return gemm_i8_nt_serial(a, b, c, m, k, n);
    }
    let ranges = rhb_par::split_range(m, pool.threads(), 1);
    let chunks = rhb_par::split_slice_mut(c, &ranges, n);
    let tasks: Vec<rhb_par::Task<'_>> = ranges
        .iter()
        .zip(chunks)
        .map(|(r, c_rows)| {
            let a_rows = &a[r.start * k..r.end * k];
            let rows = r.end - r.start;
            Box::new(move || gemm_i8_nt_serial(a_rows, b, c_rows, rows, k, n)) as rhb_par::Task<'_>
        })
        .collect();
    pool.run(tasks);
}

/// How the `B` operand is stored in memory.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BLayout {
    /// Row-major `[k, n]`.
    Nn,
    /// Row-major `[n, k]` (i.e. `Bᵀ` of the product).
    Nt,
}

/// Serial blocked `C = A·B` (`B: [k,n]`). Packs pair-interleaved `i16`
/// panels into the thread-local arena and runs the micro-kernel with
/// `C`-resident `i32` accumulation across `k`-blocks.
pub fn gemm_i8_serial(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    gemm_i8_serial_with_kernel(KernelKind::auto(), a, b, c, m, k, n);
}

/// [`gemm_i8_serial`] with an explicitly chosen micro-kernel. Parity
/// suites use this to prove every supported width produces the same
/// bits; production code should go through the auto-dispatched entry.
///
/// # Panics
///
/// Panics if `kernel` is not supported on this CPU.
pub fn gemm_i8_serial_with_kernel(
    kernel: KernelKind,
    a: &[i8],
    b: &[i8],
    c: &mut [i32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    gemm_i8_blocked(kernel, a, b, c, m, k, n, BLayout::Nn);
}

/// Serial blocked `C = A·Bᵀ` (`B: [n,k]`). Same core as
/// [`gemm_i8_serial`]; only the `B` packing reads transposed.
pub fn gemm_i8_nt_serial(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    gemm_i8_nt_serial_with_kernel(KernelKind::auto(), a, b, c, m, k, n);
}

/// [`gemm_i8_nt_serial`] with an explicitly chosen micro-kernel.
///
/// # Panics
///
/// Panics if `kernel` is not supported on this CPU.
pub fn gemm_i8_nt_serial_with_kernel(
    kernel: KernelKind,
    a: &[i8],
    b: &[i8],
    c: &mut [i32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    gemm_i8_blocked(kernel, a, b, c, m, k, n, BLayout::Nt);
}

#[allow(clippy::too_many_arguments)]
fn gemm_i8_blocked(
    kernel: KernelKind,
    a: &[i8],
    b: &[i8],
    c: &mut [i32],
    m: usize,
    k: usize,
    n: usize,
    layout: BLayout,
) {
    assert!(
        kernel.is_supported(),
        "{kernel:?} micro-kernel is not supported on this CPU"
    );
    assert_no_overflow(k);
    debug_assert_eq!(c.len(), m * n);
    c.fill(0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let nrw = kernel.nr();
    PACK_I8.with(|pack| {
        let mut pack = pack.borrow_mut();
        let (apack, bpack) = &mut *pack;
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                let kc2 = kc.next_multiple_of(2);
                pack_b_panel(b, bpack, k, n, pc, kc, jc, nc, layout, nrw);
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    pack_a_panel(a, apack, k, ic, mc, pc, kc);
                    run_tiles(kernel, apack, bpack, c, n, ic, jc, mc, nc, kc2);
                }
            }
        }
    });
}

/// The register-tile loop over one packed `(A-block, B-block)` pair:
/// `B` tiles are `nr`-wide for the given kernel, `A` tiles `MR`-tall.
#[allow(clippy::too_many_arguments)]
fn run_tiles(
    kernel: KernelKind,
    ablock: &[i16],
    bblock: &[i16],
    c: &mut [i32],
    n: usize,
    ic: usize,
    jc: usize,
    mc: usize,
    nc: usize,
    kc2: usize,
) {
    let nrw = kernel.nr();
    for jr in (0..nc).step_by(nrw) {
        let nr = nrw.min(nc - jr);
        let btile = &bblock[(jr / nrw) * kc2 * nrw..][..kc2 * nrw];
        for ir in (0..mc).step_by(MR) {
            let mr = MR.min(mc - ir);
            let atile = &ablock[(ir / MR) * kc2 * MR..][..kc2 * MR];
            let (row0, col0) = (ic + ir, jc + jr);
            match kernel {
                KernelKind::Scalar => {
                    microkernel_scalar(atile, btile, c, n, row0, col0, mr, nr, kc2, nrw)
                }
                #[cfg(target_arch = "x86_64")]
                KernelKind::Sse2 => microkernel_sse2(atile, btile, c, n, row0, col0, mr, nr, kc2),
                #[cfg(target_arch = "x86_64")]
                // SAFETY: gemm_i8_blocked asserted `kernel.is_supported()`,
                // which for Avx2 means the CPU reports the avx2 feature.
                KernelKind::Avx2 => unsafe {
                    microkernel_avx2(atile, btile, c, n, row0, col0, mr, nr, kc2)
                },
                #[cfg(not(target_arch = "x86_64"))]
                _ => unreachable!("non-scalar kernels are x86-64 only"),
            }
        }
    }
}

/// Packs `A[ic..ic+mc, pc..pc+kc]` into `MR`-row tiles, sign-extending
/// each step to `i16` and interleaving `k` in pairs: within tile `t`,
/// pair `p` stores `[row0 k₂ₚ, row0 k₂ₚ₊₁, row1 k₂ₚ, …]` — so the
/// micro-kernel broadcasts one row's pair with a single 32-bit read.
/// Rows beyond `mc` and the odd trailing `k` are zero-padded (exact:
/// a zero step contributes nothing to an integer dot product). The `A`
/// layout depends only on `MR`, never on the kernel width, so one
/// packing serves every micro-kernel.
fn pack_a_panel(
    a: &[i8],
    apack: &mut Vec<i16>,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let kc2 = kc.next_multiple_of(2);
    let tiles = mc.div_ceil(MR);
    apack.clear();
    apack.resize(tiles * kc2 * MR, 0);
    for t in 0..tiles {
        let dst = &mut apack[t * kc2 * MR..(t + 1) * kc2 * MR];
        let rows = MR.min(mc - t * MR);
        for p in 0..kc2 / 2 {
            for i in 0..rows {
                let row = &a[(ic + t * MR + i) * k + pc..];
                dst[p * MR * 2 + i * 2] = i16::from(row[2 * p]);
                if 2 * p + 1 < kc {
                    dst[p * MR * 2 + i * 2 + 1] = i16::from(row[2 * p + 1]);
                }
            }
        }
    }
}

/// Packs a `kc × nc` block of `B` into `nr`-column tiles, sign-extending
/// to `i16` and interleaving `k` in pairs: within tile `t`, pair `p`
/// stores `[col0 k₂ₚ, col0 k₂ₚ₊₁, col1 k₂ₚ, …]` for all `nr` columns —
/// `2·nr` consecutive `i16`, i.e. exactly the `pmaddwd` operands for an
/// `nr`-wide column tile. Zero-padded like the `A` panel.
#[allow(clippy::too_many_arguments)]
fn pack_b_panel(
    b: &[i8],
    bpack: &mut Vec<i16>,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    layout: BLayout,
    nr: usize,
) {
    let kc2 = kc.next_multiple_of(2);
    let tiles = nc.div_ceil(nr);
    bpack.clear();
    bpack.resize(tiles * kc2 * nr, 0);
    #[cfg(target_arch = "x86_64")]
    let vectorize =
        nr == 16 && matches!(layout, BLayout::Nn) && std::arch::is_x86_feature_detected!("avx2");
    #[cfg(not(target_arch = "x86_64"))]
    let vectorize = false;
    let at = |kk: usize, j: usize| -> i16 {
        match layout {
            BLayout::Nn => i16::from(b[(pc + kk) * n + jc + j]),
            BLayout::Nt => i16::from(b[(jc + j) * k + pc + kk]),
        }
    };
    for t in 0..tiles {
        let dst = &mut bpack[t * kc2 * nr..(t + 1) * kc2 * nr];
        let cols = nr.min(nc - t * nr);
        #[cfg(target_arch = "x86_64")]
        if vectorize && cols == 16 {
            // Full 16-column tile of a row-major B: pair p interleaves
            // two contiguous k-rows, which is exactly one unpack+permute
            // sequence per pair instead of 32 scalar gathers.
            for p in 0..kc / 2 {
                let r0 = (pc + 2 * p) * n + jc + t * nr;
                let r1 = r0 + n;
                // SAFETY: avx2 verified above; both 16-byte loads stay
                // inside their own B row (jc + t·nr + 16 ≤ jc + nc ≤ n)
                // and dst has 32 i16 at offset p·32 (kc2 ≥ 2(p+1)).
                unsafe {
                    pack_pair_avx2(
                        &b[r0..r0 + 16],
                        &b[r1..r1 + 16],
                        &mut dst[p * 32..p * 32 + 32],
                    );
                }
            }
            if kc % 2 == 1 {
                let p = kc / 2;
                for j in 0..16 {
                    dst[p * 32 + j * 2] = at(kc - 1, t * nr + j);
                }
            }
            continue;
        }
        for p in 0..kc2 / 2 {
            for j in 0..cols {
                dst[p * nr * 2 + j * 2] = at(2 * p, t * nr + j);
                if 2 * p + 1 < kc {
                    dst[p * nr * 2 + j * 2 + 1] = at(2 * p + 1, t * nr + j);
                }
            }
        }
    }
}

/// Interleaves two 16-wide `i8` rows into the pair layout `[r0[0],
/// r1[0], r0[1], r1[1], …]` as sign-extended `i16` — one packed pair of
/// a 16-column B tile.
///
/// # Safety
/// Caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pack_pair_avx2(row0: &[i8], row1: &[i8], dst: &mut [i16]) {
    use std::arch::x86_64::*;
    debug_assert!(row0.len() >= 16 && row1.len() >= 16 && dst.len() >= 32);
    let a = _mm256_cvtepi8_epi16(_mm_loadu_si128(row0.as_ptr() as *const __m128i));
    let b = _mm256_cvtepi8_epi16(_mm_loadu_si128(row1.as_ptr() as *const __m128i));
    // unpack interleaves within 128-bit lanes; the cross-lane permutes
    // restore sequential column order: [cols 0..8 | cols 8..16].
    let lo = _mm256_unpacklo_epi16(a, b);
    let hi = _mm256_unpackhi_epi16(a, b);
    let out = dst.as_mut_ptr() as *mut __m256i;
    _mm256_storeu_si256(out, _mm256_permute2x128_si256(lo, hi, 0x20));
    _mm256_storeu_si256(out.add(1), _mm256_permute2x128_si256(lo, hi, 0x31));
}

/// A conv weight matrix (`A` operand of [`gemm_i8`]) packed once into
/// pair-interleaved `MR`-row tiles for *all* `(k-block, m-block)`
/// combinations the blocked loop will visit.
///
/// Weights are static per deployed model, so layers build this once and
/// reuse it every forward call via [`gemm_i8_pa_serial`]; the owner
/// must invalidate it when the underlying parameter's generation
/// changes (see `Parameter::generation`). The layout depends only on
/// `MR`, so one `PackedA` serves every [`KernelKind`].
pub struct PackedA {
    data: Vec<i16>,
    /// Per-`(pc, ic)` block start offset into `data`, row-major over
    /// `(k-blocks, m-blocks)`.
    offsets: Vec<usize>,
    m: usize,
    k: usize,
}

impl PackedA {
    /// Packs the full `[m, k]` matrix.
    pub fn pack(a: &[i8], m: usize, k: usize) -> PackedA {
        assert_eq!(a.len(), m * k, "PackedA operand size mismatch");
        let kblocks = k.div_ceil(KC).max(1);
        let mblocks = m.div_ceil(MC).max(1);
        let mut data = Vec::new();
        let mut offsets = Vec::with_capacity(kblocks * mblocks);
        let mut panel = Vec::new();
        for pc in (0..k.max(1)).step_by(KC) {
            let kc = KC.min(k - pc);
            for ic in (0..m.max(1)).step_by(MC) {
                let mc = MC.min(m - ic);
                offsets.push(data.len());
                pack_a_panel(a, &mut panel, k, ic, mc, pc, kc);
                data.extend_from_slice(&panel);
            }
        }
        PackedA {
            data,
            offsets,
            m,
            k,
        }
    }

    /// Rows of the packed matrix.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Inner dimension of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    fn block(&self, pc_idx: usize, ic_idx: usize) -> &[i16] {
        let mblocks = self.m.div_ceil(MC).max(1);
        let idx = pc_idx * mblocks + ic_idx;
        let start = self.offsets[idx];
        let end = self
            .offsets
            .get(idx + 1)
            .copied()
            .unwrap_or(self.data.len());
        &self.data[start..end]
    }
}

/// Serial blocked `C = A·B` with a prepacked `A` (`B: [k,n]` packed
/// per call into the thread-local arena). Bit-identical to
/// [`gemm_i8_serial`] on the same operands.
pub fn gemm_i8_pa_serial(pa: &PackedA, b: &[i8], c: &mut [i32], n: usize) {
    gemm_i8_pa_serial_with_kernel(KernelKind::auto(), pa, b, c, n);
}

/// [`gemm_i8_pa_serial`] with an explicitly chosen micro-kernel.
///
/// # Panics
///
/// Panics if `kernel` is not supported on this CPU.
pub fn gemm_i8_pa_serial_with_kernel(
    kernel: KernelKind,
    pa: &PackedA,
    b: &[i8],
    c: &mut [i32],
    n: usize,
) {
    assert!(
        kernel.is_supported(),
        "{kernel:?} micro-kernel is not supported on this CPU"
    );
    let (m, k) = (pa.m, pa.k);
    assert_no_overflow(k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    c.fill(0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let nrw = kernel.nr();
    PACK_I8.with(|pack| {
        let mut pack = pack.borrow_mut();
        let (_, bpack) = &mut *pack;
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for (pc_idx, pc) in (0..k).step_by(KC).enumerate() {
                let kc = KC.min(k - pc);
                let kc2 = kc.next_multiple_of(2);
                pack_b_panel(b, bpack, k, n, pc, kc, jc, nc, BLayout::Nn, nrw);
                for (ic_idx, ic) in (0..m).step_by(MC).enumerate() {
                    let mc = MC.min(m - ic);
                    let ablock = pa.block(pc_idx, ic_idx);
                    run_tiles(kernel, ablock, bpack, c, n, ic, jc, mc, nc, kc2);
                }
            }
        }
    });
}

/// A linear weight matrix (`B: [n,k]`, the `Bᵀ` operand of
/// [`gemm_i8_nt`]) packed once into pair-interleaved column tiles for
/// the kernel recorded at pack time.
///
/// Unlike [`PackedA`], the `B` layout depends on the kernel's tile
/// width, so the packing records which [`KernelKind`] it was built for
/// and the consuming GEMM runs that kernel. Owners invalidate on
/// parameter generation change, exactly like `PackedA`.
pub struct PackedB {
    data: Vec<i16>,
    /// Per-`(jc, pc)` block start offset, row-major over
    /// `(n-blocks, k-blocks)`.
    offsets: Vec<usize>,
    n: usize,
    k: usize,
    kernel: KernelKind,
}

impl PackedB {
    /// Packs the full `[n, k]` (transposed-layout) matrix for the
    /// process-wide auto kernel.
    pub fn pack_nt(b: &[i8], n: usize, k: usize) -> PackedB {
        PackedB::pack_nt_with_kernel(KernelKind::auto(), b, n, k)
    }

    /// [`pack_nt`](Self::pack_nt) for an explicit kernel (parity tests).
    pub fn pack_nt_with_kernel(kernel: KernelKind, b: &[i8], n: usize, k: usize) -> PackedB {
        assert_eq!(b.len(), n * k, "PackedB operand size mismatch");
        let nrw = kernel.nr();
        let mut data = Vec::new();
        let mut offsets = Vec::new();
        let mut panel = Vec::new();
        for jc in (0..n.max(1)).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k.max(1)).step_by(KC) {
                let kc = KC.min(k - pc);
                offsets.push(data.len());
                pack_b_panel(b, &mut panel, k, n, pc, kc, jc, nc, BLayout::Nt, nrw);
                data.extend_from_slice(&panel);
            }
        }
        PackedB {
            data,
            offsets,
            n,
            k,
            kernel,
        }
    }

    /// Columns of the logical product (rows of the stored `[n,k]`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Inner dimension of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The kernel this packing was built for.
    pub fn kernel(&self) -> KernelKind {
        self.kernel
    }

    fn block(&self, jc_idx: usize, pc_idx: usize) -> &[i16] {
        let kblocks = self.k.div_ceil(KC).max(1);
        let idx = jc_idx * kblocks + pc_idx;
        let start = self.offsets[idx];
        let end = self
            .offsets
            .get(idx + 1)
            .copied()
            .unwrap_or(self.data.len());
        &self.data[start..end]
    }
}

/// `C = A·Bᵀ` with a prepacked `B`. Row-parallel like [`gemm_i8_nt`];
/// bit-identical to it on the same operands.
pub fn gemm_i8_nt_pb(a: &[i8], pb: &PackedB, c: &mut [i32], m: usize) {
    let (k, n) = (pb.k, pb.n);
    assert_no_overflow(k);
    record_flops(m, k, n);
    let pool = rhb_par::pool();
    if !should_parallelize(pool.threads(), m, k, n) {
        return gemm_i8_nt_pb_serial(a, pb, c, m);
    }
    let ranges = rhb_par::split_range(m, pool.threads(), 1);
    let chunks = rhb_par::split_slice_mut(c, &ranges, n);
    let tasks: Vec<rhb_par::Task<'_>> = ranges
        .iter()
        .zip(chunks)
        .map(|(r, c_rows)| {
            let a_rows = &a[r.start * k..r.end * k];
            let rows = r.end - r.start;
            Box::new(move || gemm_i8_nt_pb_serial(a_rows, pb, c_rows, rows)) as rhb_par::Task<'_>
        })
        .collect();
    pool.run(tasks);
}

/// Serial blocked `C = A·Bᵀ` with a prepacked `B` (`A` packed per call
/// into the thread-local arena).
pub fn gemm_i8_nt_pb_serial(a: &[i8], pb: &PackedB, c: &mut [i32], m: usize) {
    let kernel = pb.kernel;
    assert!(
        kernel.is_supported(),
        "{kernel:?} micro-kernel is not supported on this CPU"
    );
    let (k, n) = (pb.k, pb.n);
    assert_no_overflow(k);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(c.len(), m * n);
    c.fill(0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    PACK_I8.with(|pack| {
        let mut pack = pack.borrow_mut();
        let (apack, _) = &mut *pack;
        for (jc_idx, jc) in (0..n).step_by(NC).enumerate() {
            let nc = NC.min(n - jc);
            for (pc_idx, pc) in (0..k).step_by(KC).enumerate() {
                let kc = KC.min(k - pc);
                let kc2 = kc.next_multiple_of(2);
                let bblock = pb.block(jc_idx, pc_idx);
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    pack_a_panel(a, apack, k, ic, mc, pc, kc);
                    run_tiles(kernel, apack, bblock, c, n, ic, jc, mc, nc, kc2);
                }
            }
        }
    });
}

/// Portable pair-loop micro-kernel: identical pair-interleaved panel
/// layout, identical (exact) integer results at any tile width `nrw`.
/// This is the reference every SIMD kernel is parity-tested against.
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel_scalar(
    atile: &[i16],
    btile: &[i16],
    c: &mut [i32],
    n: usize,
    row0: usize,
    col0: usize,
    mr: usize,
    nr: usize,
    kc2: usize,
    nrw: usize,
) {
    debug_assert!(nrw <= NR_MAX);
    let mut acc = [[0i32; NR_MAX]; MR];
    for p in 0..kc2 / 2 {
        let apair = &atile[p * MR * 2..][..MR * 2];
        let bpair = &btile[p * nrw * 2..][..nrw * 2];
        for i in 0..MR {
            let a0 = i32::from(apair[i * 2]);
            let a1 = i32::from(apair[i * 2 + 1]);
            let acc_row = &mut acc[i];
            for j in 0..nrw {
                acc_row[j] += a0 * i32::from(bpair[j * 2]) + a1 * i32::from(bpair[j * 2 + 1]);
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate().take(mr) {
        let c_row = &mut c[(row0 + i) * n + col0..][..nr];
        for (cv, &v) in c_row.iter_mut().zip(&acc_row[..nr]) {
            *cv += v;
        }
    }
}

/// The `MR×8` register tile over pair-interleaved panels: per `k`-pair,
/// each row's two steps are broadcast and multiply-added against 8
/// columns' pairs — one SSE2 `pmaddwd` + `paddd` per 4 columns. SSE2 is
/// part of the x86-64 baseline, so this needs no feature detection.
/// Integer arithmetic is exact, so the pairwise association changes
/// nothing. The live `mr×nr` corner of `C` is accumulated into at the
/// end (`C`-resident blocking across `k`-blocks).
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel_sse2(
    atile: &[i16],
    btile: &[i16],
    c: &mut [i32],
    n: usize,
    row0: usize,
    col0: usize,
    mr: usize,
    nr: usize,
    kc2: usize,
) {
    use std::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_loadu_si128, _mm_madd_epi16, _mm_set1_epi32, _mm_setzero_si128,
        _mm_storeu_si128,
    };
    const NR8: usize = 8;
    debug_assert!(atile.len() >= kc2 * MR);
    debug_assert!(btile.len() >= kc2 * NR8);
    // SAFETY: SSE2 is part of the x86-64 baseline, so the intrinsics are
    // always available. All reads stay in bounds: pair index `p` ranges
    // over `kc2/2`, so the B loads touch `i16`s `[p·16, p·16+16)` ≤
    // `kc2·8`, and the unaligned 32-bit A read covers `i16`s
    // `p·MR·2 + i·2 + {0,1}` ≤ `kc2·MR` (both debug-asserted above).
    unsafe {
        let mut acc = [[_mm_setzero_si128(); 2]; MR];
        let ap = atile.as_ptr();
        let bp = btile.as_ptr();
        for p in 0..kc2 / 2 {
            let b0 = _mm_loadu_si128(bp.add(p * 16).cast::<__m128i>());
            let b1 = _mm_loadu_si128(bp.add(p * 16 + 8).cast::<__m128i>());
            let abase = ap.add(p * MR * 2);
            for (i, acc_i) in acc.iter_mut().enumerate() {
                let av = _mm_set1_epi32(abase.add(i * 2).cast::<i32>().read_unaligned());
                acc_i[0] = _mm_add_epi32(acc_i[0], _mm_madd_epi16(av, b0));
                acc_i[1] = _mm_add_epi32(acc_i[1], _mm_madd_epi16(av, b1));
            }
        }
        for (i, acc_i) in acc.iter().enumerate().take(mr) {
            let mut lane = [0i32; NR8];
            _mm_storeu_si128(lane.as_mut_ptr().cast::<__m128i>(), acc_i[0]);
            _mm_storeu_si128(lane.as_mut_ptr().add(4).cast::<__m128i>(), acc_i[1]);
            let c_row = &mut c[(row0 + i) * n + col0..][..nr];
            for (cv, &l) in c_row.iter_mut().zip(&lane[..nr]) {
                *cv += l;
            }
        }
    }
}

/// The `MR×16` AVX2 register tile: the same pair-broadcast scheme as
/// the SSE2 kernel at double width — per `k`-pair, one
/// `_mm256_madd_epi16` + `_mm256_add_epi32` covers 8 columns, two cover
/// the full 16-column tile. Widening accumulation is exact: `pmaddwd`
/// sums two `i16×i16` products into `i32` lanes whose running totals
/// stay inside `i32` for every `k ≤` [`MAX_K`], the same guard as every
/// other kernel.
///
/// # Safety
///
/// Caller must ensure the CPU supports AVX2
/// (`KernelKind::Avx2.is_supported()`).
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn microkernel_avx2(
    atile: &[i16],
    btile: &[i16],
    c: &mut [i32],
    n: usize,
    row0: usize,
    col0: usize,
    mr: usize,
    nr: usize,
    kc2: usize,
) {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_loadu_si256, _mm256_madd_epi16, _mm256_set1_epi32,
        _mm256_setzero_si256, _mm256_storeu_si256,
    };
    debug_assert!(atile.len() >= kc2 * MR);
    debug_assert!(btile.len() >= kc2 * NR_MAX);
    // SAFETY: all reads stay in bounds — pair index `p` ranges over
    // `kc2/2`, so the B loads touch `i16`s `[p·32, p·32+32)` ≤
    // `kc2·16`, and the unaligned 32-bit A read covers `i16`s
    // `p·MR·2 + i·2 + {0,1}` ≤ `kc2·MR` (both debug-asserted above).
    unsafe {
        let mut acc = [[_mm256_setzero_si256(); 2]; MR];
        let ap = atile.as_ptr();
        let bp = btile.as_ptr();
        for p in 0..kc2 / 2 {
            let b0 = _mm256_loadu_si256(bp.add(p * 32).cast::<__m256i>());
            let b1 = _mm256_loadu_si256(bp.add(p * 32 + 16).cast::<__m256i>());
            let abase = ap.add(p * MR * 2);
            for (i, acc_i) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_epi32(abase.add(i * 2).cast::<i32>().read_unaligned());
                acc_i[0] = _mm256_add_epi32(acc_i[0], _mm256_madd_epi16(av, b0));
                acc_i[1] = _mm256_add_epi32(acc_i[1], _mm256_madd_epi16(av, b1));
            }
        }
        for (i, acc_i) in acc.iter().enumerate().take(mr) {
            let mut lane = [0i32; NR_MAX];
            _mm256_storeu_si256(lane.as_mut_ptr().cast::<__m256i>(), acc_i[0]);
            _mm256_storeu_si256(lane.as_mut_ptr().add(8).cast::<__m256i>(), acc_i[1]);
            let c_row = &mut c[(row0 + i) * n + col0..][..nr];
            for (cv, &l) in c_row.iter_mut().zip(&lane[..nr]) {
                *cv += l;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(seed: u64, len: usize) -> Vec<i8> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 40) as i8
            })
            .collect()
    }

    fn naive(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
        let mut c = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for kk in 0..k {
                    acc += i64::from(a[i * k + kk]) * i64::from(b[kk * n + j]);
                }
                c[i * n + j] = acc as i32;
            }
        }
        c
    }

    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (3, 5, 7),
        (16, 16, 16),
        (33, 70, 65),
        (4, 300, 9),
        (5, 27, 130),
        (7, 9, 513),
    ];

    #[test]
    fn blocked_matches_naive_for_every_supported_kernel() {
        for kernel in KernelKind::all_supported() {
            for &(m, k, n) in SHAPES {
                let a = fill(m as u64 + 1, m * k);
                let b = fill(n as u64 + 2, k * n);
                let mut c = vec![0i32; m * n];
                gemm_i8_serial_with_kernel(kernel, &a, &b, &mut c, m, k, n);
                assert_eq!(c, naive(&a, &b, m, k, n), "{kernel:?} ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn nt_matches_naive_on_materialized_transpose() {
        for kernel in KernelKind::all_supported() {
            for &(m, k, n) in &[(2, 3, 4), (17, 65, 9), (5, 128, 33)] {
                let a = fill(7, m * k);
                let bt = fill(8, n * k); // stored [n, k]
                let mut b = vec![0i8; k * n];
                for j in 0..n {
                    for kk in 0..k {
                        b[kk * n + j] = bt[j * k + kk];
                    }
                }
                let mut c = vec![0i32; m * n];
                gemm_i8_nt_serial_with_kernel(kernel, &a, &bt, &mut c, m, k, n);
                assert_eq!(c, naive(&a, &b, m, k, n), "{kernel:?} ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn prepacked_a_matches_pack_on_the_fly() {
        for kernel in KernelKind::all_supported() {
            for &(m, k, n) in SHAPES {
                let a = fill(m as u64 + 11, m * k);
                let b = fill(n as u64 + 12, k * n);
                let pa = PackedA::pack(&a, m, k);
                let mut c_pre = vec![0i32; m * n];
                gemm_i8_pa_serial_with_kernel(kernel, &pa, &b, &mut c_pre, n);
                let mut c = vec![0i32; m * n];
                gemm_i8_serial_with_kernel(kernel, &a, &b, &mut c, m, k, n);
                assert_eq!(c_pre, c, "{kernel:?} ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn prepacked_b_matches_pack_on_the_fly() {
        for kernel in KernelKind::all_supported() {
            for &(m, k, n) in &[
                (1, 1, 1),
                (2, 3, 4),
                (17, 65, 9),
                (32, 16, 10),
                (5, 128, 33),
            ] {
                let a = fill(31, m * k);
                let bt = fill(32, n * k);
                let pb = PackedB::pack_nt_with_kernel(kernel, &bt, n, k);
                let mut c_pre = vec![0i32; m * n];
                gemm_i8_nt_pb_serial(&a, &pb, &mut c_pre, m);
                let mut c = vec![0i32; m * n];
                gemm_i8_nt_serial_with_kernel(kernel, &a, &bt, &mut c, m, k, n);
                assert_eq!(c_pre, c, "{kernel:?} ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn parallel_dispatch_is_exact_at_any_thread_count() {
        let (m, k, n) = (64, 96, 80); // above the parallel threshold
        let a = fill(21, m * k);
        let b = fill(22, k * n);
        let bt = fill(23, n * k);
        let mut serial = vec![0i32; m * n];
        gemm_i8_serial(&a, &b, &mut serial, m, k, n);
        let mut c = vec![0i32; m * n];
        gemm_i8(&a, &b, &mut c, m, k, n);
        assert_eq!(serial, c);
        let mut serial_nt = vec![0i32; m * n];
        gemm_i8_nt_serial(&a, &bt, &mut serial_nt, m, k, n);
        let mut c = vec![0i32; m * n];
        gemm_i8_nt(&a, &bt, &mut c, m, k, n);
        assert_eq!(serial_nt, c);
        let pb = PackedB::pack_nt(&bt, n, k);
        let mut c = vec![0i32; m * n];
        gemm_i8_nt_pb(&a, &pb, &mut c, m);
        assert_eq!(serial_nt, c);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        // All operands at the magnitude extremes; k well inside MAX_K.
        let k = 1024;
        let a = vec![-128i8; k];
        let b = vec![-128i8; k];
        for kernel in KernelKind::all_supported() {
            let mut c = vec![0i32; 1];
            gemm_i8_nt_serial_with_kernel(kernel, &a, &b, &mut c, 1, k, 1);
            assert_eq!(c[0], 1024 * 128 * 128, "{kernel:?}");
            let mut c = vec![0i32; 1];
            gemm_i8_serial_with_kernel(kernel, &a, &b, &mut c, 1, k, 1);
            assert_eq!(c[0], 1024 * 128 * 128, "{kernel:?}");
        }
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn oversized_inner_dimension_is_rejected() {
        let a = vec![0i8; 4];
        let b = vec![0i8; 4];
        let mut c = vec![0i32; 1];
        // Lie about k: the guard fires before any indexing.
        gemm_i8(&a, &b, &mut c, 1, MAX_K + 1, 1);
    }

    #[test]
    fn kernel_parse_round_trips_and_rejects_junk() {
        assert_eq!(KernelKind::parse("scalar"), Some(KernelKind::Scalar));
        assert_eq!(KernelKind::parse("SSE2"), Some(KernelKind::Sse2));
        assert_eq!(KernelKind::parse("Avx2"), Some(KernelKind::Avx2));
        assert_eq!(KernelKind::parse("avx512"), None);
    }

    #[test]
    fn scalar_kernel_is_always_a_supported_fallback() {
        assert!(KernelKind::Scalar.is_supported());
        let all = KernelKind::all_supported();
        assert_eq!(all[0], KernelKind::Scalar);
        assert!(all.contains(&KernelKind::auto()));
    }
}
