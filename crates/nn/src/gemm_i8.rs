//! Int8 GEMM kernels: `i8×i8` multiply with exact `i32` accumulation.
//!
//! These are the compute core of the deployed-model inference engine
//! ([`crate::layer::Mode::Int8`]): the weight operand is the raw `i8`
//! step grid of the victim's weight file — the very bytes Rowhammer
//! flips — and the activation operand is the dynamically quantized
//! input. Two variants cover the layer shapes:
//!
//! * [`gemm_i8`] — `C = A·B` with `A: [m,k]`, `B: [k,n]` (conv forward:
//!   quantized kernel × im2col columns),
//! * [`gemm_i8_nt`] — `C = A·Bᵀ` with `B: [n,k]` (linear forward:
//!   quantized input × quantized weight rows).
//!
//! Layout mirrors [`crate::gemm`]: the public entry points record an
//! `nn/gemm_i8_flops` histogram sample and split the `m` rows of `C`
//! across the process-wide [`rhb_par`] pool when the product is large
//! enough, while the `*_serial` kernels do the arithmetic and are what
//! batch-parallel layers call from inside their own tasks. Both serial
//! variants share one blocked core: panels are packed into a
//! thread-local arena widened to `i16` and interleaved in *pairs* along
//! `k`, the layout `pmaddwd` wants — on x86-64 the micro-kernel issues
//! one SSE2 `_mm_madd_epi16` per 8 multiplies (SSE2 is baseline on
//! x86-64, so this path needs no feature detection), and other
//! architectures run an equivalent scalar pair loop.
//!
//! # Determinism
//!
//! Integer accumulation is exact and associative, so any blocking, any
//! packing, and any thread count produce bit-identical `i32` results by
//! construction — a strictly stronger guarantee than the f32 kernels'
//! carefully ordered accumulation.
//!
//! # Overflow
//!
//! Products are bounded by `127·127 = 16129` in magnitude (note
//! `-128·-128` cannot occur on the weight side of a symmetric scheme,
//! but is still safely covered), so a `k`-long dot product stays inside
//! `i32` for every `k ≤` [`MAX_K`]. The public entry points assert this;
//! every layer shape in the repository is orders of magnitude below it.

use std::cell::RefCell;

/// Register tile height (rows of `C` per micro-kernel call).
const MR: usize = 4;
/// Register tile width (columns of `C` per micro-kernel call).
const NR: usize = 8;
/// `k`-block: one packed `A`/`B` panel pair stays L1/L2-resident.
const KC: usize = 256;
/// `m`-block per packed `A` panel.
const MC: usize = 64;
/// `n`-block per packed `B` panel.
const NC: usize = 512;

/// Below this many multiply-accumulates (`2·m·n·k`) a product runs
/// serially even on a multi-thread pool.
const PAR_MIN_FLOPS: usize = 1 << 18;

/// Largest inner dimension for which a `k`-long `i8×i8` dot product is
/// guaranteed not to overflow `i32`: `k · 128² ≤ i32::MAX`.
pub const MAX_K: usize = (i32::MAX / (128 * 128)) as usize;

thread_local! {
    /// Per-thread packing arena `(A-panel, B-panel)`, grown monotonically.
    static PACK_I8: RefCell<(Vec<i16>, Vec<i16>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

fn record_flops(m: usize, k: usize, n: usize) {
    rhb_telemetry::observe!("nn/gemm_i8_flops", (2 * m * n * k) as f64);
}

fn should_parallelize(threads: usize, m: usize, k: usize, n: usize) -> bool {
    threads > 1 && m >= 2 && 2 * m * n * k >= PAR_MIN_FLOPS
}

fn assert_no_overflow(k: usize) {
    assert!(
        k <= MAX_K,
        "int8 GEMM inner dimension {k} could overflow the i32 accumulator (max {MAX_K})"
    );
}

/// `C = A·B` (`A: [m,k]`, `B: [k,n]`, `C: [m,n]`, all row-major).
/// Parallelizes over row blocks of `C`; exact at any pool size.
pub fn gemm_i8(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    assert_no_overflow(k);
    record_flops(m, k, n);
    let pool = rhb_par::pool();
    if !should_parallelize(pool.threads(), m, k, n) {
        return gemm_i8_serial(a, b, c, m, k, n);
    }
    let ranges = rhb_par::split_range(m, pool.threads(), MR);
    let chunks = rhb_par::split_slice_mut(c, &ranges, n);
    let tasks: Vec<rhb_par::Task<'_>> = ranges
        .iter()
        .zip(chunks)
        .map(|(r, c_rows)| {
            let a_rows = &a[r.start * k..r.end * k];
            let rows = r.end - r.start;
            Box::new(move || gemm_i8_serial(a_rows, b, c_rows, rows, k, n)) as rhb_par::Task<'_>
        })
        .collect();
    pool.run(tasks);
}

/// `C = A·Bᵀ` (`A: [m,k]`, `B: [n,k]`, `C: [m,n]`). Row-parallel.
pub fn gemm_i8_nt(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    assert_no_overflow(k);
    record_flops(m, k, n);
    let pool = rhb_par::pool();
    if !should_parallelize(pool.threads(), m, k, n) {
        return gemm_i8_nt_serial(a, b, c, m, k, n);
    }
    let ranges = rhb_par::split_range(m, pool.threads(), 1);
    let chunks = rhb_par::split_slice_mut(c, &ranges, n);
    let tasks: Vec<rhb_par::Task<'_>> = ranges
        .iter()
        .zip(chunks)
        .map(|(r, c_rows)| {
            let a_rows = &a[r.start * k..r.end * k];
            let rows = r.end - r.start;
            Box::new(move || gemm_i8_nt_serial(a_rows, b, c_rows, rows, k, n)) as rhb_par::Task<'_>
        })
        .collect();
    pool.run(tasks);
}

/// How the `B` operand is stored in memory.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BLayout {
    /// Row-major `[k, n]`.
    Nn,
    /// Row-major `[n, k]` (i.e. `Bᵀ` of the product).
    Nt,
}

/// Serial blocked `C = A·B` (`B: [k,n]`). Packs pair-interleaved `i16`
/// panels into the thread-local arena and runs the `MR×NR` micro-kernel
/// with `C`-resident `i32` accumulation across `k`-blocks.
pub fn gemm_i8_serial(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    gemm_i8_blocked(a, b, c, m, k, n, BLayout::Nn);
}

/// Serial blocked `C = A·Bᵀ` (`B: [n,k]`). Same core as
/// [`gemm_i8_serial`]; only the `B` packing reads transposed.
pub fn gemm_i8_nt_serial(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    gemm_i8_blocked(a, b, c, m, k, n, BLayout::Nt);
}

fn gemm_i8_blocked(
    a: &[i8],
    b: &[i8],
    c: &mut [i32],
    m: usize,
    k: usize,
    n: usize,
    layout: BLayout,
) {
    debug_assert_eq!(c.len(), m * n);
    c.fill(0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    PACK_I8.with(|pack| {
        let mut pack = pack.borrow_mut();
        let (apack, bpack) = &mut *pack;
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                let kc2 = kc.next_multiple_of(2);
                pack_b_panel(b, bpack, k, n, pc, kc, jc, nc, layout);
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    pack_a_panel(a, apack, k, ic, mc, pc, kc);
                    for jr in (0..nc).step_by(NR) {
                        let nr = NR.min(nc - jr);
                        let btile = &bpack[(jr / NR) * kc2 * NR..][..kc2 * NR];
                        for ir in (0..mc).step_by(MR) {
                            let mr = MR.min(mc - ir);
                            let atile = &apack[(ir / MR) * kc2 * MR..][..kc2 * MR];
                            microkernel(atile, btile, c, n, ic + ir, jc + jr, mr, nr, kc2);
                        }
                    }
                }
            }
        }
    });
}

/// Packs `A[ic..ic+mc, pc..pc+kc]` into `MR`-row tiles, sign-extending
/// each step to `i16` and interleaving `k` in pairs: within tile `t`,
/// pair `p` stores `[row0 k₂ₚ, row0 k₂ₚ₊₁, row1 k₂ₚ, …]` — so the
/// micro-kernel broadcasts one row's pair with a single 32-bit read.
/// Rows beyond `mc` and the odd trailing `k` are zero-padded (exact:
/// a zero step contributes nothing to an integer dot product).
fn pack_a_panel(
    a: &[i8],
    apack: &mut Vec<i16>,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let kc2 = kc.next_multiple_of(2);
    let tiles = mc.div_ceil(MR);
    apack.clear();
    apack.resize(tiles * kc2 * MR, 0);
    for t in 0..tiles {
        let dst = &mut apack[t * kc2 * MR..(t + 1) * kc2 * MR];
        let rows = MR.min(mc - t * MR);
        for p in 0..kc2 / 2 {
            for i in 0..rows {
                let row = &a[(ic + t * MR + i) * k + pc..];
                dst[p * MR * 2 + i * 2] = i16::from(row[2 * p]);
                if 2 * p + 1 < kc {
                    dst[p * MR * 2 + i * 2 + 1] = i16::from(row[2 * p + 1]);
                }
            }
        }
    }
}

/// Packs a `kc × nc` block of `B` into `NR`-column tiles, sign-extending
/// to `i16` and interleaving `k` in pairs: within tile `t`, pair `p`
/// stores `[col0 k₂ₚ, col0 k₂ₚ₊₁, col1 k₂ₚ, …]` for all `NR` columns —
/// 16 consecutive `i16`, i.e. exactly the two 128-bit `pmaddwd` operands
/// for an 8-wide column tile. Zero-padded like the `A` panel.
#[allow(clippy::too_many_arguments)]
fn pack_b_panel(
    b: &[i8],
    bpack: &mut Vec<i16>,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    layout: BLayout,
) {
    let kc2 = kc.next_multiple_of(2);
    let tiles = nc.div_ceil(NR);
    bpack.clear();
    bpack.resize(tiles * kc2 * NR, 0);
    let at = |kk: usize, j: usize| -> i16 {
        match layout {
            BLayout::Nn => i16::from(b[(pc + kk) * n + jc + j]),
            BLayout::Nt => i16::from(b[(jc + j) * k + pc + kk]),
        }
    };
    for t in 0..tiles {
        let dst = &mut bpack[t * kc2 * NR..(t + 1) * kc2 * NR];
        let cols = NR.min(nc - t * NR);
        for p in 0..kc2 / 2 {
            for j in 0..cols {
                dst[p * NR * 2 + j * 2] = at(2 * p, t * NR + j);
                if 2 * p + 1 < kc {
                    dst[p * NR * 2 + j * 2 + 1] = at(2 * p + 1, t * NR + j);
                }
            }
        }
    }
}

/// The `MR×NR` register tile over pair-interleaved panels: per `k`-pair,
/// each row's two steps are broadcast and multiply-added against 8
/// columns' pairs — one SSE2 `pmaddwd` + `paddd` per 4 columns on
/// x86-64. Integer arithmetic is exact, so the pairwise association
/// changes nothing. The live `mr×nr` corner of `C` is accumulated into
/// at the end (`C`-resident blocking across `k`-blocks).
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel(
    atile: &[i16],
    btile: &[i16],
    c: &mut [i32],
    n: usize,
    row0: usize,
    col0: usize,
    mr: usize,
    nr: usize,
    kc2: usize,
) {
    use std::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_loadu_si128, _mm_madd_epi16, _mm_set1_epi32, _mm_setzero_si128,
        _mm_storeu_si128,
    };
    debug_assert!(atile.len() >= kc2 * MR);
    debug_assert!(btile.len() >= kc2 * NR);
    // SAFETY: SSE2 is part of the x86-64 baseline, so the intrinsics are
    // always available. All reads stay in bounds: pair index `p` ranges
    // over `kc2/2`, so the B loads touch `i16`s `[p·16, p·16+16)` ≤
    // `kc2·NR`, and the unaligned 32-bit A read covers `i16`s
    // `p·MR·2 + i·2 + {0,1}` ≤ `kc2·MR` (both debug-asserted above).
    unsafe {
        let mut acc = [[_mm_setzero_si128(); 2]; MR];
        let ap = atile.as_ptr();
        let bp = btile.as_ptr();
        for p in 0..kc2 / 2 {
            let b0 = _mm_loadu_si128(bp.add(p * 16).cast::<__m128i>());
            let b1 = _mm_loadu_si128(bp.add(p * 16 + 8).cast::<__m128i>());
            let abase = ap.add(p * MR * 2);
            for (i, acc_i) in acc.iter_mut().enumerate() {
                let av = _mm_set1_epi32(abase.add(i * 2).cast::<i32>().read_unaligned());
                acc_i[0] = _mm_add_epi32(acc_i[0], _mm_madd_epi16(av, b0));
                acc_i[1] = _mm_add_epi32(acc_i[1], _mm_madd_epi16(av, b1));
            }
        }
        for (i, acc_i) in acc.iter().enumerate().take(mr) {
            let mut lane = [0i32; NR];
            _mm_storeu_si128(lane.as_mut_ptr().cast::<__m128i>(), acc_i[0]);
            _mm_storeu_si128(lane.as_mut_ptr().add(4).cast::<__m128i>(), acc_i[1]);
            let c_row = &mut c[(row0 + i) * n + col0..][..nr];
            for (cv, &l) in c_row.iter_mut().zip(&lane[..nr]) {
                *cv += l;
            }
        }
    }
}

/// Portable scalar equivalent of the `pmaddwd` micro-kernel: identical
/// pair-interleaved panel layout, identical (exact) integer results.
#[cfg(not(target_arch = "x86_64"))]
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel(
    atile: &[i16],
    btile: &[i16],
    c: &mut [i32],
    n: usize,
    row0: usize,
    col0: usize,
    mr: usize,
    nr: usize,
    kc2: usize,
) {
    let mut acc = [[0i32; NR]; MR];
    for p in 0..kc2 / 2 {
        let apair = &atile[p * MR * 2..][..MR * 2];
        let bpair = &btile[p * NR * 2..][..NR * 2];
        for i in 0..MR {
            let a0 = i32::from(apair[i * 2]);
            let a1 = i32::from(apair[i * 2 + 1]);
            let acc_row = &mut acc[i];
            for j in 0..NR {
                acc_row[j] += a0 * i32::from(bpair[j * 2]) + a1 * i32::from(bpair[j * 2 + 1]);
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate().take(mr) {
        let c_row = &mut c[(row0 + i) * n + col0..][..nr];
        for (cv, &v) in c_row.iter_mut().zip(&acc_row[..nr]) {
            *cv += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(seed: u64, len: usize) -> Vec<i8> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 40) as i8
            })
            .collect()
    }

    fn naive(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
        let mut c = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for kk in 0..k {
                    acc += i64::from(a[i * k + kk]) * i64::from(b[kk * n + j]);
                }
                c[i * n + j] = acc as i32;
            }
        }
        c
    }

    #[test]
    fn blocked_matches_naive() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (16, 16, 16),
            (33, 70, 65),
            (4, 300, 9),
        ] {
            let a = fill(m as u64 + 1, m * k);
            let b = fill(n as u64 + 2, k * n);
            let mut c = vec![0i32; m * n];
            gemm_i8_serial(&a, &b, &mut c, m, k, n);
            assert_eq!(c, naive(&a, &b, m, k, n), "({m},{k},{n})");
        }
    }

    #[test]
    fn nt_matches_naive_on_materialized_transpose() {
        for &(m, k, n) in &[(2, 3, 4), (17, 65, 9), (5, 128, 33)] {
            let a = fill(7, m * k);
            let bt = fill(8, n * k); // stored [n, k]
            let mut b = vec![0i8; k * n];
            for j in 0..n {
                for kk in 0..k {
                    b[kk * n + j] = bt[j * k + kk];
                }
            }
            let mut c = vec![0i32; m * n];
            gemm_i8_nt_serial(&a, &bt, &mut c, m, k, n);
            assert_eq!(c, naive(&a, &b, m, k, n), "({m},{k},{n})");
        }
    }

    #[test]
    fn parallel_dispatch_is_exact_at_any_thread_count() {
        let (m, k, n) = (64, 96, 80); // above the parallel threshold
        let a = fill(21, m * k);
        let b = fill(22, k * n);
        let bt = fill(23, n * k);
        let mut serial = vec![0i32; m * n];
        gemm_i8_serial(&a, &b, &mut serial, m, k, n);
        let mut c = vec![0i32; m * n];
        gemm_i8(&a, &b, &mut c, m, k, n);
        assert_eq!(serial, c);
        let mut serial_nt = vec![0i32; m * n];
        gemm_i8_nt_serial(&a, &bt, &mut serial_nt, m, k, n);
        let mut c = vec![0i32; m * n];
        gemm_i8_nt(&a, &bt, &mut c, m, k, n);
        assert_eq!(serial_nt, c);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        // All operands at the magnitude extremes; k well inside MAX_K.
        let k = 1024;
        let a = vec![-128i8; k];
        let b = vec![-128i8; k];
        let mut c = vec![0i32; 1];
        gemm_i8_nt_serial(&a, &b, &mut c, 1, k, 1);
        assert_eq!(c[0], 1024 * 128 * 128);
        let mut c = vec![0i32; 1];
        gemm_i8_serial(&a, &b, &mut c, 1, k, 1);
        assert_eq!(c[0], 1024 * 128 * 128);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn oversized_inner_dimension_is_rejected() {
        let a = vec![0i8; 4];
        let b = vec![0i8; 4];
        let mut c = vec![0i32; 1];
        // Lie about k: the guard fires before any indexing.
        gemm_i8(&a, &b, &mut c, 1, MAX_K + 1, 1);
    }
}
