//! Cache-blocked, register-tiled f32 GEMM kernels.
//!
//! Every matrix product in the training/attack hot path funnels through
//! the three kernels here:
//!
//! * [`gemm`] — `C = A·B` with `A: [m,k]`, `B: [k,n]` (conv forward,
//!   linear input-gradient),
//! * [`gemm_nt`] — `C = A·Bᵀ` with `B: [n,k]` (linear forward, conv
//!   weight-gradient),
//! * [`gemm_tn`] — `C = Aᵀ·B` with `A: [k,m]` (conv column-gradient,
//!   linear weight-gradient — both previously materialized an explicit
//!   transpose per call).
//!
//! The public entry points record a `nn/gemm_flops` histogram sample,
//! and split the `m` rows of `C` across the process-wide [`rhb_par`]
//! pool when the product is large enough; the `*_serial` kernels do the
//! actual arithmetic and are what batch-parallel layers call from inside
//! their own tasks (one level of parallelism, the outermost, wins).
//!
//! # Determinism contract
//!
//! Each output element is accumulated **in strictly increasing `k`
//! order by exactly one task**, with a single accumulator per element.
//! Cache blocking keeps that order by making the `C` tile resident
//! across `k`-blocks (load tile → accumulate the block in `k` order →
//! store), and row-splitting does not touch it at all. The results are
//! therefore bit-identical to the pre-existing naive kernels (kept as
//! [`matmul_naive`] for the parity suite and the bench baseline) at
//! every thread count, including 1.
//!
//! The naive kernel skipped `a == 0.0` terms; the blocked kernels do
//! not. The skip is bit-invisible: with finite inputs a product with a
//! zero factor is `±0.0`, and IEEE-754 round-to-nearest addition of
//! `±0.0` onto an accumulator that started from `+0.0` can never change
//! its bits (`x + ±0.0 == x`, and exact cancellation yields `+0.0`, so
//! the accumulator is never `-0.0`).

use std::cell::RefCell;

/// Register tile height (rows of `C` per micro-kernel call).
const MR: usize = 4;
/// Register tile width (columns of `C` per micro-kernel call).
const NR: usize = 8;
/// `k`-block: one packed `A`/`B` panel pair stays L1/L2-resident.
const KC: usize = 256;
/// `m`-block per packed `A` panel.
const MC: usize = 64;
/// `n`-block per packed `B` panel.
const NC: usize = 512;

/// Below this many flops (`2·m·n·k`) a product runs serially even on a
/// multi-thread pool: task dispatch would cost more than it saves.
const PAR_MIN_FLOPS: usize = 1 << 18;

thread_local! {
    /// Per-thread packing arena `(A-panel, B-panel)`, grown monotonically.
    static PACK: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// The pre-PR reference kernel: naive `ikj` loop with the historical
/// `a == 0.0` skip. Kept verbatim for the parity suite and as the bench
/// baseline the blocked kernels are measured against.
pub fn matmul_naive(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    c.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut c[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

fn record_flops(m: usize, k: usize, n: usize) {
    rhb_telemetry::observe!("nn/gemm_flops", (2 * m * n * k) as f64);
}

fn should_parallelize(threads: usize, m: usize, k: usize, n: usize) -> bool {
    threads > 1 && m >= 2 && 2 * m * n * k >= PAR_MIN_FLOPS
}

/// `C = A·B` (`A: [m,k]`, `B: [k,n]`, `C: [m,n]`, all row-major).
/// Parallelizes over row blocks of `C`; bit-identical at any pool size.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    record_flops(m, k, n);
    let pool = rhb_par::pool();
    if !should_parallelize(pool.threads(), m, k, n) {
        return gemm_serial(a, b, c, m, k, n);
    }
    let ranges = rhb_par::split_range(m, pool.threads(), MR);
    let chunks = rhb_par::split_slice_mut(c, &ranges, n);
    let tasks: Vec<rhb_par::Task<'_>> = ranges
        .iter()
        .zip(chunks)
        .map(|(r, c_rows)| {
            let a_rows = &a[r.start * k..r.end * k];
            let rows = r.end - r.start;
            Box::new(move || gemm_serial(a_rows, b, c_rows, rows, k, n)) as rhb_par::Task<'_>
        })
        .collect();
    pool.run(tasks);
}

/// `C = A·Bᵀ` (`A: [m,k]`, `B: [n,k]`, `C: [m,n]`). Row-parallel.
pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    record_flops(m, k, n);
    let pool = rhb_par::pool();
    if !should_parallelize(pool.threads(), m, k, n) {
        return gemm_nt_serial(a, b, c, m, k, n);
    }
    let ranges = rhb_par::split_range(m, pool.threads(), 1);
    let chunks = rhb_par::split_slice_mut(c, &ranges, n);
    let tasks: Vec<rhb_par::Task<'_>> = ranges
        .iter()
        .zip(chunks)
        .map(|(r, c_rows)| {
            let a_rows = &a[r.start * k..r.end * k];
            let rows = r.end - r.start;
            Box::new(move || gemm_nt_serial(a_rows, b, c_rows, rows, k, n)) as rhb_par::Task<'_>
        })
        .collect();
    pool.run(tasks);
}

/// `C = Aᵀ·B` (`A: [k,m]`, `B: [k,n]`, `C: [m,n]`). Row-parallel over
/// `C`'s rows (columns of the stored `A`).
pub fn gemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    record_flops(m, k, n);
    let pool = rhb_par::pool();
    if !should_parallelize(pool.threads(), m, k, n) {
        return gemm_tn_serial(a, b, c, m, k, n);
    }
    let ranges = rhb_par::split_range(m, pool.threads(), 1);
    let chunks = rhb_par::split_slice_mut(c, &ranges, n);
    let tasks: Vec<rhb_par::Task<'_>> = ranges
        .iter()
        .zip(chunks)
        .map(|(r, c_rows)| {
            let range = r.clone();
            Box::new(move || gemm_tn_range(a, b, c_rows, m, k, n, range)) as rhb_par::Task<'_>
        })
        .collect();
    pool.run(tasks);
}

/// Serial blocked `C = A·B`. Packs `A`/`B` panels into the thread-local
/// arena and runs the `MR×NR` micro-kernel with `C`-resident
/// accumulation across `k`-blocks (see the module-level determinism
/// contract).
pub fn gemm_serial(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    c.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    PACK.with(|pack| {
        let mut pack = pack.borrow_mut();
        let (apack, bpack) = &mut *pack;
        apack.resize(MC.min(m).div_ceil(MR) * MR * KC.min(k).max(1), 0.0);
        bpack.resize(NC.min(n).div_ceil(NR) * NR * KC.min(k).max(1), 0.0);
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                pack_b_panel(b, bpack, n, pc, kc, jc, nc);
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    pack_a_panel(a, apack, k, ic, mc, pc, kc);
                    for jr in (0..nc).step_by(NR) {
                        let nr = NR.min(nc - jr);
                        let btile = &bpack[(jr / NR) * kc * NR..][..kc * NR];
                        for ir in (0..mc).step_by(MR) {
                            let mr = MR.min(mc - ir);
                            let atile = &apack[(ir / MR) * kc * MR..][..kc * MR];
                            microkernel(atile, btile, c, n, ic + ir, jc + jr, mr, nr, kc);
                        }
                    }
                }
            }
        }
    });
}

/// Packs `A[ic..ic+mc, pc..pc+kc]` into `MR`-row tiles: tile `t` holds
/// rows `ic+t·MR..`, laid out `k`-major (`kk·MR + i`), zero-padded to
/// `MR` so the micro-kernel never branches on the row edge.
fn pack_a_panel(
    a: &[f32],
    apack: &mut Vec<f32>,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let tiles = mc.div_ceil(MR);
    apack.clear();
    apack.resize(tiles * kc * MR, 0.0);
    for t in 0..tiles {
        let dst = &mut apack[t * kc * MR..(t + 1) * kc * MR];
        let rows = MR.min(mc - t * MR);
        for kk in 0..kc {
            for i in 0..rows {
                dst[kk * MR + i] = a[(ic + t * MR + i) * k + pc + kk];
            }
        }
    }
}

/// Packs `B[pc..pc+kc, jc..jc+nc]` into `NR`-column tiles: tile `t`
/// holds columns `jc+t·NR..`, laid out `k`-major (`kk·NR + j`),
/// zero-padded to `NR`.
fn pack_b_panel(
    b: &[f32],
    bpack: &mut Vec<f32>,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let tiles = nc.div_ceil(NR);
    bpack.clear();
    bpack.resize(tiles * kc * NR, 0.0);
    for t in 0..tiles {
        let dst = &mut bpack[t * kc * NR..(t + 1) * kc * NR];
        let cols = NR.min(nc - t * NR);
        for kk in 0..kc {
            let src = &b[(pc + kk) * n + jc + t * NR..][..cols];
            dst[kk * NR..kk * NR + cols].copy_from_slice(src);
        }
    }
}

/// The `MR×NR` register tile: loads the live `mr×nr` corner of `C`,
/// accumulates `kc` rank-1 updates with one accumulator per element
/// (unrolled over the fixed `MR×NR` grid), stores the corner back.
#[allow(clippy::too_many_arguments)]
#[inline]
fn microkernel(
    atile: &[f32],
    btile: &[f32],
    c: &mut [f32],
    n: usize,
    row0: usize,
    col0: usize,
    mr: usize,
    nr: usize,
    kc: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (i, acc_row) in acc.iter_mut().enumerate().take(mr) {
        let c_row = &c[(row0 + i) * n + col0..][..nr];
        acc_row[..nr].copy_from_slice(c_row);
    }
    for kk in 0..kc {
        let av = &atile[kk * MR..kk * MR + MR];
        let bv = &btile[kk * NR..kk * NR + NR];
        for i in 0..MR {
            let ai = av[i];
            let acc_row = &mut acc[i];
            for j in 0..NR {
                acc_row[j] += ai * bv[j];
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate().take(mr) {
        let c_row = &mut c[(row0 + i) * n + col0..][..nr];
        c_row.copy_from_slice(&acc_row[..nr]);
    }
}

/// Serial `C = A·Bᵀ`: each element is one dot product over `k`,
/// evaluated in a fresh accumulator in ascending `k` — the exact order
/// of the pre-PR `matmul_transposed`. A `2×4` register tile amortizes
/// loads of `A` rows without splitting any accumulator.
pub fn gemm_nt_serial(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for kk in 0..k {
                let av = a_row[kk];
                s0 += av * b0[kk];
                s1 += av * b1[kk];
                s2 += av * b2[kk];
                s3 += av * b3[kk];
            }
            c_row[j] = s0;
            c_row[j + 1] = s1;
            c_row[j + 2] = s2;
            c_row[j + 3] = s3;
            j += 4;
        }
        for jj in j..n {
            let b_row = &b[jj * k..(jj + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            c_row[jj] = acc;
        }
    }
}

/// Serial `C = Aᵀ·B` over the full row range.
pub fn gemm_tn_serial(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_tn_range(a, b, c, m, k, n, 0..m);
}

/// `C`-rows `rows` of `Aᵀ·B`, written to `c_rows` (exactly
/// `rows.len()·n` long). `k`-outer loop order: each output element
/// accumulates in ascending `k` — the order the pre-PR code got from
/// materializing `Aᵀ` and running the naive kernel — while streaming
/// `B` rows sequentially.
fn gemm_tn_range(
    a: &[f32],
    b: &[f32],
    c_rows: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    rows: std::ops::Range<usize>,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c_rows.len(), (rows.end - rows.start) * n);
    c_rows.fill(0.0);
    for kk in 0..k {
        let a_row = &a[kk * m..(kk + 1) * m];
        let b_row = &b[kk * n..(kk + 1) * n];
        for (i, c_row) in c_rows.chunks_mut(n).enumerate() {
            let av = a_row[rows.start + i];
            if av == 0.0 {
                continue;
            }
            for (o, &bv) in c_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn blocked_gemm_is_bit_identical_to_naive() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (16, 16, 16),
            (33, 70, 65),
            (4, 300, 9),
        ] {
            let a = fill(m as u64 + 1, m * k);
            let b = fill(n as u64 + 2, k * n);
            let mut c_naive = vec![0.0f32; m * n];
            let mut c_blocked = vec![0.0f32; m * n];
            matmul_naive(&a, &b, &mut c_naive, m, k, n);
            gemm_serial(&a, &b, &mut c_blocked, m, k, n);
            assert_eq!(c_naive, c_blocked, "({m},{k},{n})");
        }
    }

    #[test]
    fn gemm_nt_matches_naive_on_transposed_operand() {
        for &(m, k, n) in &[(2, 3, 4), (17, 65, 9), (5, 128, 33)] {
            let a = fill(7, m * k);
            let bt = fill(8, n * k); // stored [n, k]
                                     // Materialize B = btᵀ for the reference.
            let mut b = vec![0.0f32; k * n];
            for j in 0..n {
                for kk in 0..k {
                    b[kk * n + j] = bt[j * k + kk];
                }
            }
            let mut c_ref = vec![0.0f32; m * n];
            let mut c = vec![0.0f32; m * n];
            // Reference: fresh-accumulator dot products in k order.
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for kk in 0..k {
                        acc += a[i * k + kk] * bt[j * k + kk];
                    }
                    c_ref[i * n + j] = acc;
                }
            }
            gemm_nt_serial(&a, &bt, &mut c, m, k, n);
            assert_eq!(c_ref, c, "({m},{k},{n})");
            let _ = b;
        }
    }

    #[test]
    fn gemm_tn_is_bit_identical_to_naive_on_materialized_transpose() {
        for &(m, k, n) in &[(3, 4, 5), (20, 33, 7), (64, 9, 65)] {
            let at = fill(11, k * m); // stored [k, m]
            let b = fill(12, k * n);
            let mut a = vec![0.0f32; m * k];
            for kk in 0..k {
                for i in 0..m {
                    a[i * k + kk] = at[kk * m + i];
                }
            }
            let mut c_ref = vec![0.0f32; m * n];
            let mut c = vec![0.0f32; m * n];
            matmul_naive(&a, &b, &mut c_ref, m, k, n);
            gemm_tn_serial(&at, &b, &mut c, m, k, n);
            assert_eq!(c_ref, c, "({m},{k},{n})");
        }
    }

    #[test]
    fn parallel_dispatch_is_bit_identical_to_serial() {
        let (m, k, n) = (64, 96, 80); // 2mnk ≈ 983k flops > threshold
        let a = fill(21, m * k);
        let b = fill(22, k * n);
        let bt = fill(23, n * k);
        let at = fill(24, k * m);
        let mut serial = vec![0.0f32; m * n];
        gemm_serial(&a, &b, &mut serial, m, k, n);
        let mut serial_nt = vec![0.0f32; m * n];
        gemm_nt_serial(&a, &bt, &mut serial_nt, m, k, n);
        let mut serial_tn = vec![0.0f32; m * n];
        gemm_tn_serial(&at, &b, &mut serial_tn, m, k, n);
        for threads in [1, 2, 5] {
            let pool = rhb_par::Pool::new(threads);
            let ranges = rhb_par::split_range(m, pool.threads(), 1);
            // Drive the row-split path directly through a local pool (the
            // global pool is shared across the test binary).
            let mut c = vec![0.0f32; m * n];
            let chunks = rhb_par::split_slice_mut(&mut c, &ranges, n);
            let tasks: Vec<rhb_par::Task<'_>> = ranges
                .iter()
                .zip(chunks)
                .map(|(r, c_rows)| {
                    let a_rows = &a[r.start * k..r.end * k];
                    let rows = r.end - r.start;
                    let b = &b;
                    Box::new(move || gemm_serial(a_rows, b, c_rows, rows, k, n))
                        as rhb_par::Task<'_>
                })
                .collect();
            pool.run(tasks);
            assert_eq!(serial, c, "gemm threads={threads}");
        }
        // The public dispatchers run on the global pool; with any size
        // they must reproduce the serial bits.
        let mut c = vec![0.0f32; m * n];
        gemm(&a, &b, &mut c, m, k, n);
        assert_eq!(serial, c);
        let mut c = vec![0.0f32; m * n];
        gemm_nt(&a, &bt, &mut c, m, k, n);
        assert_eq!(serial_nt, c);
        let mut c = vec![0.0f32; m * n];
        gemm_tn(&at, &b, &mut c, m, k, n);
        assert_eq!(serial_tn, c);
    }
}
