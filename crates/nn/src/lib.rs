//! From-scratch neural-network substrate for the `rowhammer-backdoor`
//! reproduction.
//!
//! The paper attacks an 8-bit-quantized convolutional classifier by editing
//! individual bits of its weight file while it sits in DRAM. Everything that
//! the attack needs from a deep-learning framework is implemented here, in
//! pure Rust:
//!
//! * dense [`Tensor`]s with shape/stride bookkeeping ([`tensor`], [`shape`]),
//! * layers with explicit forward/backward passes ([`layer`], [`conv`],
//!   [`linear`], [`norm`], [`pool`], [`activation`]),
//! * a [`Network`](network::Network) trait tying layers into trainable
//!   models, plus an SGD optimizer ([`optim`]),
//! * softmax cross-entropy loss with input gradients ([`loss`]) — the input
//!   gradient is what the paper's FGSM trigger-learning step consumes,
//! * symmetric 8-bit quantization in two's-complement form ([`quant`]),
//!   matching the TensorRT-style scheme of the paper's §IV-C, and a true
//!   int8 inference engine ([`gemm_i8`], [`layer::Mode::Int8`]) that
//!   multiplies those steps directly with `i32` accumulation,
//! * a page-oriented weight-file codec ([`weightfile`]) that lays the
//!   quantized parameters out exactly as they would be mmap'd into 4 KB
//!   pages, and supports bit-level edits at (page, bit-offset) granularity.
//!
//! # Example
//!
//! ```
//! use rhb_nn::tensor::Tensor;
//! use rhb_nn::linear::Linear;
//! use rhb_nn::layer::Layer;
//!
//! let mut layer = Linear::new(4, 2, true, &mut rhb_nn::init::Rng::seed_from(7));
//! let x = Tensor::zeros(&[1, 4]);
//! let y = layer.forward(&x);
//! assert_eq!(y.shape().dims(), &[1, 2]);
//! ```

pub mod activation;
pub mod conv;
pub mod error;
pub mod gemm;
pub mod gemm_i8;
pub mod init;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod network;
pub mod norm;
pub mod optim;
pub mod param;
pub mod pool;
pub mod quant;
pub mod scratch;
pub mod shape;
pub mod tensor;
pub mod weightfile;

pub use error::{NnError, Result};
pub use network::Network;
pub use param::Parameter;
pub use quant::{QuantScheme, QuantizedTensor};
pub use shape::Shape;
pub use tensor::Tensor;
