//! Page-oriented weight-file layout.
//!
//! When a deployed model's weight file is mmap'd, the OS slices it into
//! fixed 4 KB pages. The paper's constraints C1/C2 are expressed in terms of
//! that layout: the network weights form one long byte vector, divided into
//! pages, and Rowhammer can realistically flip about one chosen bit per page.
//!
//! [`WeightFile`] serializes the quantized parameters of a [`Network`] in
//! parameter order into a contiguous byte buffer, exposes the
//! (page, offset, bit) coordinates of every weight, and supports bit-level
//! edits that can be loaded back into the model.

use crate::error::{NnError, Result};
use crate::network::Network;
use crate::quant::QuantizedTensor;
use bytes::{Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Bytes per memory page, matching a standard 4 KB x86-64 page.
pub const PAGE_SIZE: usize = 4096;

/// Bits per memory page.
pub const PAGE_BITS: usize = PAGE_SIZE * 8;

/// Location of one weight byte within the weight file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ByteLocation {
    /// Zero-based page number within the file.
    pub page: usize,
    /// Byte offset within the page (0..4096).
    pub offset: usize,
}

impl ByteLocation {
    /// The flat byte index in the file.
    pub fn flat(&self) -> usize {
        self.page * PAGE_SIZE + self.offset
    }

    /// Builds a location from a flat byte index.
    pub fn from_flat(index: usize) -> Self {
        ByteLocation {
            page: index / PAGE_SIZE,
            offset: index % PAGE_SIZE,
        }
    }
}

/// A specific bit of a specific byte in the weight file, plus the direction
/// the flip would take (needed to match DRAM cells, which flip only one way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitTarget {
    /// The byte holding the bit.
    pub location: ByteLocation,
    /// Bit index within the byte, 0 = LSB.
    pub bit: u8,
    /// `true` for a 0→1 flip, `false` for 1→0.
    pub zero_to_one: bool,
}

impl BitTarget {
    /// The bit offset within the page (0..32768), the coordinate used by
    /// the paper's probability analysis.
    pub fn page_bit_offset(&self) -> usize {
        self.location.offset * 8 + self.bit as usize
    }
}

/// The serialized quantized weight file of a deployed network.
#[derive(Debug, Clone)]
pub struct WeightFile {
    data: BytesMut,
    /// Element counts per parameter tensor, in order.
    param_sizes: Vec<usize>,
    /// Shapes and schemes needed to reconstruct `QuantizedTensor`s.
    param_dims: Vec<Vec<usize>>,
    schemes: Vec<crate::quant::QuantScheme>,
}

impl WeightFile {
    /// Serializes the quantized parameters of a deployed network.
    ///
    /// The byte at flat index *i* is the two's-complement encoding of the
    /// *i*-th weight in parameter order — the exact image the OS would load
    /// into the page cache. The file is padded with zeros to a whole number
    /// of pages.
    ///
    /// # Panics
    ///
    /// Panics if the network is not deployed.
    pub fn from_network(net: &dyn Network) -> Self {
        let images = net.quantized_params();
        Self::from_images(&images)
    }

    /// Serializes quantized images directly.
    pub fn from_images(images: &[QuantizedTensor]) -> Self {
        let total: usize = images.iter().map(|q| q.numel()).sum();
        let padded = total.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mut data = BytesMut::with_capacity(padded);
        for q in images {
            data.extend_from_slice(&q.to_bytes());
        }
        data.resize(padded, 0);
        WeightFile {
            data,
            param_sizes: images.iter().map(|q| q.numel()).collect(),
            param_dims: images.iter().map(|q| q.dims().to_vec()).collect(),
            schemes: images.iter().map(|q| q.scheme()).collect(),
        }
    }

    /// Number of weight bytes (excluding padding).
    pub fn num_weights(&self) -> usize {
        self.param_sizes.iter().sum()
    }

    /// Number of 4 KB pages the file occupies.
    pub fn num_pages(&self) -> usize {
        self.data.len() / PAGE_SIZE
    }

    /// Total bits occupied by weights (the paper's "#Bits" column).
    pub fn num_bits(&self) -> u64 {
        self.num_weights() as u64 * 8
    }

    /// Raw file bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Frozen copy of the file contents.
    pub fn to_bytes(&self) -> Bytes {
        self.data.clone().freeze()
    }

    /// The byte location of flat weight index `w`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::IndexOutOfRange`] if `w` exceeds the weight count.
    pub fn locate_weight(&self, w: usize) -> Result<ByteLocation> {
        if w >= self.num_weights() {
            return Err(NnError::IndexOutOfRange {
                index: w,
                len: self.num_weights(),
                what: "weights",
            });
        }
        Ok(ByteLocation::from_flat(w))
    }

    /// The flat weight index stored at a byte location, if it holds a weight
    /// (rather than padding).
    pub fn weight_at(&self, loc: ByteLocation) -> Option<usize> {
        let flat = loc.flat();
        (flat < self.num_weights()).then_some(flat)
    }

    /// Reads the byte at a location.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::IndexOutOfRange`] past the end of the file.
    pub fn read(&self, loc: ByteLocation) -> Result<u8> {
        let flat = loc.flat();
        self.data
            .get(flat)
            .copied()
            .ok_or(NnError::IndexOutOfRange {
                index: flat,
                len: self.data.len(),
                what: "weight file bytes",
            })
    }

    /// Flips one bit in the file, returning the direction it actually
    /// flipped (`true` = the bit was 0 and became 1).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::IndexOutOfRange`] past the end of the file.
    pub fn flip_bit(&mut self, loc: ByteLocation, bit: u8) -> Result<bool> {
        let flat = loc.flat();
        if flat >= self.data.len() {
            return Err(NnError::IndexOutOfRange {
                index: flat,
                len: self.data.len(),
                what: "weight file bytes",
            });
        }
        let mask = 1u8 << bit;
        let was_zero = self.data[flat] & mask == 0;
        self.data[flat] ^= mask;
        rhb_telemetry::counter!("nn/weightfile_bit_flips", 1);
        Ok(was_zero)
    }

    /// Computes the bit flips needed to transform this file into `target`,
    /// as directional [`BitTarget`]s (the attacker's shopping list for the
    /// DRAM templating step).
    ///
    /// # Panics
    ///
    /// Panics if the files have different sizes.
    pub fn diff(&self, target: &WeightFile) -> Vec<BitTarget> {
        assert_eq!(
            self.data.len(),
            target.data.len(),
            "weight file size mismatch"
        );
        // Chunked scan on the global pool; concatenating per-chunk flip
        // lists in chunk order reproduces the serial byte-order scan.
        let chunks = rhb_par::pool().parallel_map(self.data.len(), 64 * 1024, |range| {
            let mut flips = Vec::new();
            for i in range {
                let (a, b) = (self.data[i], target.data[i]);
                let delta = a ^ b;
                if delta == 0 {
                    continue;
                }
                for bit in 0..8u8 {
                    if delta & (1 << bit) != 0 {
                        flips.push(BitTarget {
                            location: ByteLocation::from_flat(i),
                            bit,
                            zero_to_one: a & (1 << bit) == 0,
                        });
                    }
                }
            }
            flips
        });
        chunks.concat()
    }

    /// Hamming distance to another weight file (the `N_flip` metric).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the files have different
    /// sizes (they describe different architectures).
    pub fn hamming_distance(&self, other: &WeightFile) -> Result<u64> {
        if self.data.len() != other.data.len() {
            return Err(NnError::ShapeMismatch {
                expected: vec![self.data.len()],
                actual: vec![other.data.len()],
                op: "weight file hamming distance",
            });
        }
        // Integer popcount partials: summation order cannot change the
        // result, so any chunking is exact.
        Ok(rhb_par::pool()
            .parallel_map(self.data.len(), 64 * 1024, |range| {
                range
                    .map(|i| (self.data[i] ^ other.data[i]).count_ones() as u64)
                    .sum::<u64>()
            })
            .into_iter()
            .sum())
    }

    /// Decodes the file back into quantized parameter images.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MalformedWeightFile`] if the file is shorter than
    /// the recorded parameter sizes require.
    pub fn to_images(&self) -> Result<Vec<QuantizedTensor>> {
        let mut images = Vec::with_capacity(self.param_sizes.len());
        let mut cursor = 0usize;
        for ((size, dims), scheme) in self
            .param_sizes
            .iter()
            .zip(&self.param_dims)
            .zip(&self.schemes)
        {
            if cursor + size > self.data.len() {
                return Err(NnError::MalformedWeightFile(format!(
                    "parameter of {size} bytes exceeds file length {}",
                    self.data.len()
                )));
            }
            let values: Vec<i8> = self.data[cursor..cursor + size]
                .iter()
                .map(|&b| b as i8)
                .collect();
            // The raw steps are authoritative: wrap them directly, no
            // dequantize/re-quantize round trip.
            images.push(QuantizedTensor::from_raw_steps(dims, values, *scheme)?);
            cursor += size;
        }
        Ok(images)
    }

    /// Loads the (possibly bit-flipped) file contents back into a network.
    ///
    /// # Errors
    ///
    /// Propagates [`WeightFile::to_images`] errors, and returns
    /// [`NnError::MalformedWeightFile`] if the network's parameter
    /// structure (count or per-parameter sizes) does not match the file.
    pub fn load_into(&self, net: &mut dyn Network) -> Result<()> {
        let params = net.params();
        if params.len() != self.param_sizes.len() {
            return Err(NnError::MalformedWeightFile(format!(
                "file describes {} parameters, network has {}",
                self.param_sizes.len(),
                params.len()
            )));
        }
        for (i, (p, &size)) in params.iter().zip(&self.param_sizes).enumerate() {
            if p.numel() != size {
                return Err(NnError::MalformedWeightFile(format!(
                    "parameter {i} ({}) has {} weights, file records {size}",
                    p.name,
                    p.numel()
                )));
            }
        }
        let images = self.to_images()?;
        net.load_quantized(&images);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quant::QuantizedTensor;
    use crate::tensor::Tensor;

    fn images(n_weights: usize) -> Vec<QuantizedTensor> {
        let data: Vec<f32> = (0..n_weights)
            .map(|i| ((i % 255) as f32 - 127.0) / 127.0)
            .collect();
        vec![QuantizedTensor::from_tensor(&Tensor::from_vec(data, &[n_weights])).unwrap()]
    }

    #[test]
    fn file_is_padded_to_whole_pages() {
        let wf = WeightFile::from_images(&images(5000));
        assert_eq!(wf.num_pages(), 2);
        assert_eq!(wf.bytes().len(), 8192);
        assert_eq!(wf.num_weights(), 5000);
    }

    #[test]
    fn locate_weight_matches_page_math() {
        let wf = WeightFile::from_images(&images(10_000));
        let loc = wf.locate_weight(4097).unwrap();
        assert_eq!(loc, ByteLocation { page: 1, offset: 1 });
        assert!(wf.locate_weight(10_000).is_err());
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let mut wf = WeightFile::from_images(&images(100));
        let orig = wf.bytes().to_vec();
        let loc = ByteLocation { page: 0, offset: 3 };
        wf.flip_bit(loc, 6).unwrap();
        let mut diff_count = 0;
        for (a, b) in orig.iter().zip(wf.bytes()) {
            diff_count += (a ^ b).count_ones();
        }
        assert_eq!(diff_count, 1);
    }

    #[test]
    fn diff_reports_direction() {
        let base = WeightFile::from_images(&images(100));
        let mut modified = base.clone();
        let loc = ByteLocation { page: 0, offset: 0 };
        let was_zero = modified.flip_bit(loc, 2).unwrap();
        let flips = base.diff(&modified);
        assert_eq!(flips.len(), 1);
        assert_eq!(flips[0].bit, 2);
        assert_eq!(flips[0].zero_to_one, was_zero);
    }

    #[test]
    fn hamming_distance_equals_diff_len() {
        let base = WeightFile::from_images(&images(300));
        let mut m = base.clone();
        m.flip_bit(ByteLocation { page: 0, offset: 7 }, 0).unwrap();
        m.flip_bit(ByteLocation { page: 0, offset: 7 }, 5).unwrap();
        m.flip_bit(
            ByteLocation {
                page: 0,
                offset: 250,
            },
            3,
        )
        .unwrap();
        assert_eq!(base.hamming_distance(&m).unwrap(), 3);
        assert_eq!(base.diff(&m).len(), 3);
    }

    #[test]
    fn hamming_distance_size_mismatch_is_an_error_not_a_panic() {
        let a = WeightFile::from_images(&images(100));
        let b = WeightFile::from_images(&images(5000));
        let err = a.hamming_distance(&b).unwrap_err();
        assert!(matches!(err, NnError::ShapeMismatch { op, .. } if op.contains("hamming")));
    }

    #[test]
    fn to_images_round_trips_bit_flips() {
        let imgs = images(100);
        let mut wf = WeightFile::from_images(&imgs);
        wf.flip_bit(
            ByteLocation {
                page: 0,
                offset: 10,
            },
            7,
        )
        .unwrap();
        let decoded = wf.to_images().unwrap();
        assert_eq!(imgs[0].hamming_distance(&decoded[0]).unwrap(), 1);
        assert_ne!(imgs[0].values()[10], decoded[0].values()[10]);
    }

    #[test]
    fn to_images_preserves_raw_steps_and_schemes() {
        let imgs = images(300);
        let wf = WeightFile::from_images(&imgs);
        let decoded = wf.to_images().unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].values(), imgs[0].values());
        assert_eq!(decoded[0].dims(), imgs[0].dims());
        assert_eq!(decoded[0].scheme(), imgs[0].scheme());
    }

    #[test]
    fn page_bit_offset_spans_page() {
        let t = BitTarget {
            location: ByteLocation {
                page: 3,
                offset: 4095,
            },
            bit: 7,
            zero_to_one: true,
        };
        assert_eq!(t.page_bit_offset(), PAGE_BITS - 1);
    }
}
