//! Deterministic weight initialization.
//!
//! All randomness in the workspace flows through seeded generators so that
//! "pretrained" models are reproducible across runs — the reproduction's
//! stand-in for downloading fixed checkpoints from a model zoo.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// A seeded random generator wrapper used across the workspace.
///
/// Thin newtype over [`StdRng`] so callers never reach for thread-local
/// entropy by accident.
#[derive(Debug, Clone)]
pub struct Rng(StdRng);

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Rng(StdRng::seed_from_u64(seed))
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.0.gen_range(lo..hi)
    }

    /// Standard normal sample via Box–Muller.
    pub fn normal(&mut self) -> f32 {
        let u1: f32 = self.0.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.0.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.0.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Derives an independent child generator (for parallel workers).
    pub fn fork(&mut self) -> Rng {
        Rng(StdRng::seed_from_u64(self.0.gen()))
    }

    /// Access to the inner rand generator for library interop.
    pub fn inner_mut(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Kaiming/He-normal initialization for a weight tensor with `fan_in` inputs.
pub fn kaiming_normal(dims: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.normal() * std;
    }
    t
}

/// Xavier/Glorot-uniform initialization.
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.uniform(-limit, limit);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = Rng::seed_from(42);
        let mut b = Rng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_variance() {
        let mut rng = Rng::seed_from(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let mut rng = Rng::seed_from(1);
        let wide = kaiming_normal(&[1000], 1000, &mut rng);
        let narrow = kaiming_normal(&[1000], 10, &mut rng);
        assert!(wide.max_abs() < narrow.max_abs());
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = Rng::seed_from(3);
        let t = xavier_uniform(&[512], 64, 64, &mut rng);
        let limit = (6.0f32 / 128.0).sqrt();
        assert!(t.max_abs() <= limit);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng::seed_from(5);
        let mut child = parent.fork();
        // The child must not replay the parent's stream.
        let p: Vec<f32> = (0..8).map(|_| parent.uniform(0.0, 1.0)).collect();
        let c: Vec<f32> = (0..8).map(|_| child.uniform(0.0, 1.0)).collect();
        assert_ne!(p, c);
    }
}
