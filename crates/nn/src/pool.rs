//! Pooling layers.

use crate::layer::{Int8Epilogue, Layer, Mode};
use crate::param::Parameter;
use crate::tensor::Tensor;

/// Global average pooling: `[batch, C, H, W]` → `[batch, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    cached_dims: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { cached_dims: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward_mode(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let dims = input.shape().dims();
        assert_eq!(dims.len(), 4, "pool input must be [batch, C, H, W]");
        let (batch, chans, plane) = (dims[0], dims[1], dims[2] * dims[3]);
        let mut out = vec![0.0f32; batch * chans];
        for b in 0..batch {
            for c in 0..chans {
                let base = (b * chans + c) * plane;
                out[b * chans + c] =
                    input.data()[base..base + plane].iter().sum::<f32>() / plane as f32;
            }
        }
        if mode.caches() {
            self.cached_dims = Some(dims.to_vec());
        }
        Tensor::from_vec(out, &[batch, chans])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let dims = self
            .cached_dims
            .take()
            .expect("backward called without training-mode forward");
        let (batch, chans, plane) = (dims[0], dims[1], dims[2] * dims[3]);
        let mut grad = vec![0.0f32; batch * chans * plane];
        for b in 0..batch {
            for c in 0..chans {
                let g = grad_output.data()[b * chans + c] / plane as f32;
                let base = (b * chans + c) * plane;
                for v in &mut grad[base..base + plane] {
                    *v = g;
                }
            }
        }
        Tensor::from_vec(grad, &dims)
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn describe(&self) -> String {
        "GlobalAvgPool".into()
    }

    fn op_name(&self) -> &'static str {
        "global_avg_pool"
    }
}

/// Non-overlapping max pooling with a square window.
#[derive(Debug)]
pub struct MaxPool2d {
    window: usize,
    cache: Option<MaxCache>,
}

#[derive(Debug)]
struct MaxCache {
    argmax: Vec<usize>,
    in_dims: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given square window (also the stride).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        MaxPool2d {
            window,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward_mode(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        let dims = input.shape().dims();
        assert_eq!(dims.len(), 4, "pool input must be [batch, C, H, W]");
        let (batch, chans, side) = (dims[0], dims[1], dims[2]);
        assert_eq!(dims[2], dims[3], "only square inputs supported");
        if side < self.window {
            // Input already smaller than the window: identity, so deep
            // plans (VGG's five pools) work on scaled-down images.
            if mode.caches() {
                let total = batch * chans * side * side;
                self.cache = Some(MaxCache {
                    argmax: (0..total).collect(),
                    in_dims: dims.to_vec(),
                });
            }
            return input.clone();
        }
        assert_eq!(side % self.window, 0, "input side must divide by window");
        let out_side = side / self.window;
        let mut out = vec![f32::NEG_INFINITY; batch * chans * out_side * out_side];
        let mut argmax = vec![0usize; out.len()];
        for b in 0..batch {
            for c in 0..chans {
                let in_base = (b * chans + c) * side * side;
                let out_base = (b * chans + c) * out_side * out_side;
                for oy in 0..out_side {
                    for ox in 0..out_side {
                        let oi = out_base + oy * out_side + ox;
                        for wy in 0..self.window {
                            for wx in 0..self.window {
                                let iy = oy * self.window + wy;
                                let ix = ox * self.window + wx;
                                let ii = in_base + iy * side + ix;
                                if input.data()[ii] > out[oi] {
                                    out[oi] = input.data()[ii];
                                    argmax[oi] = ii;
                                }
                            }
                        }
                    }
                }
            }
        }
        if mode.caches() {
            self.cache = Some(MaxCache {
                argmax,
                in_dims: dims.to_vec(),
            });
        }
        Tensor::from_vec(out, &[batch, chans, out_side, out_side])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("backward called without training-mode forward");
        let mut grad = vec![0.0f32; cache.in_dims.iter().product()];
        for (oi, &ii) in cache.argmax.iter().enumerate() {
            grad[ii] += grad_output.data()[oi];
        }
        Tensor::from_vec(grad, &cache.in_dims)
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn describe(&self) -> String {
        format!("MaxPool2d({})", self.window)
    }

    fn op_name(&self) -> &'static str {
        "max_pool2d"
    }

    fn int8_epilogue(&self) -> Option<Int8Epilogue> {
        // Requantization (`acc·deq + bias`, `deq > 0`) is monotone, so a
        // window max taken inside the preceding GEMM layer's requantize
        // sweep is bit-identical to pooling its output afterwards. GEMM
        // layers decline the fusion (run unfused) for shapes this layer
        // treats specially, e.g. the `side < window` identity case.
        Some(Int8Epilogue::MaxPool {
            window: self.window,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_avg_pool_averages_planes() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        );
        let y = pool.forward(&x);
        assert_eq!(y.data(), &[2.5, 25.0]);
    }

    #[test]
    fn global_avg_pool_backward_spreads_gradient() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        pool.forward(&x);
        let g = pool.backward(&Tensor::from_vec(vec![8.0], &[1, 1]));
        assert_eq!(g.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn max_pool_selects_window_maximum() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let y = pool.forward(&x);
        assert_eq!(y.data(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax_only() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 9.0], &[1, 1, 2, 2]);
        pool.forward(&x);
        let g = pool.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn max_pool_rejects_indivisible_side() {
        let mut pool = MaxPool2d::new(2);
        pool.forward(&Tensor::zeros(&[1, 1, 3, 3]));
    }
}
