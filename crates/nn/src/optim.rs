//! Stochastic gradient descent with momentum, weight decay, and masked
//! updates.
//!
//! The masked update is the heart of Algorithm 1, Step 3: only the weights
//! selected by `Group_Sort_Select` receive gradient steps; every other
//! coordinate of Δθ stays zero.

use crate::network::Network;
use crate::tensor::Tensor;

/// SGD hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Learning rate η.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay (0 disables).
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
        }
    }
}

/// SGD optimizer state (one velocity buffer per parameter).
#[derive(Debug)]
pub struct Sgd {
    config: SgdConfig,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an optimizer for the given network.
    pub fn new(net: &dyn Network, config: SgdConfig) -> Self {
        let velocity = net
            .params()
            .iter()
            .map(|p| Tensor::zeros(p.value.shape().dims()))
            .collect();
        Sgd { config, velocity }
    }

    /// The current configuration.
    pub fn config(&self) -> SgdConfig {
        self.config
    }

    /// Changes the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Applies one SGD step from accumulated gradients.
    ///
    /// # Panics
    ///
    /// Panics if the network's parameter list changed since construction.
    pub fn step(&mut self, net: &mut dyn Network) {
        let mut params = net.params_mut();
        assert_eq!(params.len(), self.velocity.len(), "parameter list changed");
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            for i in 0..p.value.numel() {
                let mut g = p.grad.data()[i] + self.config.weight_decay * p.value.data()[i];
                if self.config.momentum > 0.0 {
                    let vel = self.config.momentum * v.data()[i] + g;
                    v.data_mut()[i] = vel;
                    g = vel;
                }
                p.value.data_mut()[i] -= self.config.lr * g;
            }
        }
    }

    /// Applies a *masked* step: only flat parameter indices present in
    /// `mask` (a sorted global index set over the concatenated parameter
    /// vector) are updated. No momentum or weight decay is applied — this is
    /// the plain masked gradient rule of Equation (6).
    ///
    /// # Panics
    ///
    /// Panics if any mask index is out of range.
    pub fn step_masked(&mut self, net: &mut dyn Network, mask: &[usize]) {
        let lr = self.config.lr;
        let mut params = net.params_mut();
        let mut cursor = 0usize; // index into mask
        let mut base = 0usize; // flat offset of current parameter
        for p in params.iter_mut() {
            let len = p.value.numel();
            while cursor < mask.len() && mask[cursor] < base + len {
                let local = mask[cursor] - base;
                let g = p.grad.data()[local];
                p.value.data_mut()[local] -= lr * g;
                cursor += 1;
            }
            base += len;
        }
        assert!(
            cursor == mask.len(),
            "mask index {} out of range for {} total weights",
            mask.get(cursor).copied().unwrap_or(0),
            base
        );
    }
}

/// Step-decay learning-rate schedule: `lr * gamma^(epoch / step)`.
#[derive(Debug, Clone, Copy)]
pub struct StepLr {
    /// Initial learning rate.
    pub base_lr: f32,
    /// Epochs between decays.
    pub step: usize,
    /// Multiplicative decay factor.
    pub gamma: f32,
}

impl StepLr {
    /// Learning rate for the given epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.step.max(1)) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Rng;
    use crate::layer::{Layer, Mode, Sequential};
    use crate::linear::Linear;
    use crate::loss::cross_entropy;
    use crate::param::Parameter;

    struct Tiny(Sequential);

    impl Tiny {
        fn new() -> Self {
            let mut rng = Rng::seed_from(17);
            let mut seq = Sequential::new();
            seq.push(Box::new(Linear::new(2, 2, true, &mut rng)));
            Tiny(seq)
        }
    }

    impl Network for Tiny {
        fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
            self.0.forward_mode(input, mode)
        }
        fn backward(&mut self, grad: &Tensor) -> Tensor {
            self.0.backward(grad)
        }
        fn params(&self) -> Vec<&Parameter> {
            self.0.params()
        }
        fn params_mut(&mut self) -> Vec<&mut Parameter> {
            self.0.params_mut()
        }
        fn describe(&self) -> String {
            "tiny".into()
        }
    }

    #[test]
    fn sgd_reduces_loss_on_separable_data() {
        let mut net = Tiny::new();
        let mut opt = Sgd::new(
            &net,
            SgdConfig {
                lr: 0.5,
                momentum: 0.9,
                weight_decay: 0.0,
            },
        );
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let targets = [0usize, 1];
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..50 {
            net.zero_grad();
            let logits = net.forward(&x, Mode::Train);
            let out = cross_entropy(&logits, &targets);
            net.backward(&out.grad_logits);
            opt.step(&mut net);
            first.get_or_insert(out.loss);
            last = out.loss;
        }
        assert!(last < first.unwrap() * 0.1, "loss {last} did not shrink");
    }

    #[test]
    fn masked_step_only_touches_selected_indices() {
        let mut net = Tiny::new();
        let mut opt = Sgd::new(
            &net,
            SgdConfig {
                lr: 1.0,
                momentum: 0.0,
                weight_decay: 0.0,
            },
        );
        // Fill gradients with ones so any unmasked update would be visible.
        for p in net.params_mut() {
            for g in p.grad.data_mut() {
                *g = 1.0;
            }
        }
        let before: Vec<f32> = net
            .params()
            .iter()
            .flat_map(|p| p.value.data().to_vec())
            .collect();
        // weight is 4 values (indices 0..4), bias 2 values (indices 4..6).
        opt.step_masked(&mut net, &[1, 4]);
        let after: Vec<f32> = net
            .params()
            .iter()
            .flat_map(|p| p.value.data().to_vec())
            .collect();
        for i in 0..before.len() {
            if i == 1 || i == 4 {
                assert!(
                    (after[i] - (before[i] - 1.0)).abs() < 1e-6,
                    "index {i} not stepped"
                );
            } else {
                assert_eq!(after[i], before[i], "index {i} must be untouched");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn masked_step_rejects_out_of_range_index() {
        let mut net = Tiny::new();
        let mut opt = Sgd::new(&net, SgdConfig::default());
        opt.step_masked(&mut net, &[1000]);
    }

    #[test]
    fn step_lr_decays_by_gamma() {
        let sched = StepLr {
            base_lr: 0.1,
            step: 10,
            gamma: 0.5,
        };
        assert_eq!(sched.lr_at(0), 0.1);
        assert_eq!(sched.lr_at(10), 0.05);
        assert_eq!(sched.lr_at(25), 0.025);
    }
}
