//! Non-linear activations.

use crate::layer::{Int8Epilogue, Layer, Mode};
use crate::param::Parameter;
use crate::tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)`.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }
}

impl Layer for Relu {
    fn forward_mode(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        if mode.caches() {
            self.mask = Some(input.data().iter().map(|&v| v > 0.0).collect());
        }
        input.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let mask = self
            .mask
            .take()
            .expect("backward called without training-mode forward");
        assert_eq!(mask.len(), grad_output.numel(), "relu mask size mismatch");
        let data = grad_output
            .data()
            .iter()
            .zip(&mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_output.shape().dims())
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    fn describe(&self) -> String {
        "ReLU".into()
    }

    fn op_name(&self) -> &'static str {
        "relu"
    }

    fn int8_epilogue(&self) -> Option<Int8Epilogue> {
        // `max(·, 0)` applied during the preceding GEMM layer's
        // requantize sweep is bit-identical to a separate relu pass.
        Some(Int8Epilogue::Relu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clips_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        let y = relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient_where_input_nonpositive() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.5, 0.0], &[3]);
        relu.forward(&x);
        let g = relu.backward(&Tensor::from_vec(vec![10.0, 10.0, 10.0], &[3]));
        assert_eq!(g.data(), &[0.0, 10.0, 0.0]);
    }

    #[test]
    fn has_no_parameters() {
        assert!(Relu::new().params().is_empty());
    }
}
