//! Reusable scratch buffers for the layer hot paths.
//!
//! The forward/backward passes of [`crate::conv::Conv2d`] and
//! [`crate::linear::Linear`] need several temporaries per call: im2col
//! column matrices, effective (fake-quantized) weight copies, gradient
//! partials. Before this module they were allocated fresh on every call
//! — the im2col columns alone dominated the allocator profile of a
//! training epoch. A [`Scratch`] is owned by the layer, grows
//! monotonically to the high-water mark of the shapes it has seen, and
//! is handed out as plain slices so the kernels stay allocation-free
//! after warm-up.
//!
//! The arena is generic over its element type: the f32 training path
//! uses [`ScratchBuffer`], while the int8 inference engine stages
//! quantized weights/activations in [`ScratchI8`] and its `i32` GEMM
//! accumulators in [`ScratchI32`].

/// A monotonically growing typed arena.
///
/// `zeroed(len)` / `filled(len)` never shrink the backing storage, so a
/// layer that alternates between batch sizes settles at the largest and
/// stops allocating. The buffer deliberately has no `shrink` — layers
/// live as long as training does and the high-water mark is the steady
/// state.
#[derive(Debug)]
pub struct Scratch<T> {
    data: Vec<T>,
}

/// The f32 arena used by the training/fake-quant paths.
pub type ScratchBuffer = Scratch<f32>;

/// Quantized-step arena for the int8 inference engine.
pub type ScratchI8 = Scratch<i8>;

/// `i32` accumulator arena for the int8 inference engine.
pub type ScratchI32 = Scratch<i32>;

impl<T> Default for Scratch<T> {
    fn default() -> Self {
        Scratch { data: Vec::new() }
    }
}

impl<T: Copy + Default> Scratch<T> {
    /// Creates an empty buffer; storage is acquired lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a default-filled (zero for all numeric `T`) slice of
    /// exactly `len` elements.
    pub fn zeroed(&mut self, len: usize) -> &mut [T] {
        self.data.clear();
        self.data.resize(len, T::default());
        &mut self.data[..len]
    }

    /// Returns a slice of exactly `len` elements without clearing prior
    /// contents beyond what `resize` demands. Callers must overwrite
    /// every element before reading.
    pub fn filled(&mut self, len: usize) -> &mut [T] {
        if self.data.len() < len {
            self.data.resize(len, T::default());
        }
        &mut self.data[..len]
    }

    /// Read-only view of the first `len` elements.
    pub fn slice(&self, len: usize) -> &[T] {
        &self.data[..len]
    }

    /// Current backing capacity in elements (the high-water mark).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_clears_previous_contents() {
        let mut buf = ScratchBuffer::new();
        buf.zeroed(4).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert!(buf.zeroed(4).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn capacity_is_monotone() {
        let mut buf = ScratchBuffer::new();
        buf.zeroed(128);
        let high = buf.capacity();
        buf.zeroed(16);
        assert!(buf.capacity() >= high);
        assert_eq!(buf.slice(16).len(), 16);
    }

    #[test]
    fn integer_arenas_zero_with_their_own_zero() {
        let mut q = ScratchI8::new();
        q.filled(3).copy_from_slice(&[1, -2, 3]);
        assert!(q.zeroed(3).iter().all(|&v| v == 0));
        let mut acc = ScratchI32::new();
        assert!(acc.zeroed(5).iter().all(|&v| v == 0));
    }
}
