//! Reusable scratch buffers for the layer hot paths.
//!
//! The forward/backward passes of [`crate::conv::Conv2d`] and
//! [`crate::linear::Linear`] need several temporaries per call: im2col
//! column matrices, effective (fake-quantized) weight copies, gradient
//! partials. Before this module they were allocated fresh on every call
//! — the im2col columns alone dominated the allocator profile of a
//! training epoch. A [`ScratchBuffer`] is owned by the layer, grows
//! monotonically to the high-water mark of the shapes it has seen, and
//! is handed out as plain slices so the kernels stay allocation-free
//! after warm-up.

/// A monotonically growing `f32` arena.
///
/// `zeroed(len)` / `filled(len)` never shrink the backing storage, so a
/// layer that alternates between batch sizes settles at the largest and
/// stops allocating. The buffer deliberately has no `shrink` — layers
/// live as long as training does and the high-water mark is the steady
/// state.
#[derive(Debug, Default)]
pub struct ScratchBuffer {
    data: Vec<f32>,
}

impl ScratchBuffer {
    /// Creates an empty buffer; storage is acquired lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a zero-filled slice of exactly `len` elements.
    pub fn zeroed(&mut self, len: usize) -> &mut [f32] {
        self.data.clear();
        self.data.resize(len, 0.0);
        &mut self.data[..len]
    }

    /// Returns a slice of exactly `len` elements without clearing prior
    /// contents beyond what `resize` demands. Callers must overwrite
    /// every element before reading.
    pub fn filled(&mut self, len: usize) -> &mut [f32] {
        if self.data.len() < len {
            self.data.resize(len, 0.0);
        }
        &mut self.data[..len]
    }

    /// Read-only view of the first `len` elements.
    pub fn slice(&self, len: usize) -> &[f32] {
        &self.data[..len]
    }

    /// Current backing capacity in elements (the high-water mark).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_clears_previous_contents() {
        let mut buf = ScratchBuffer::new();
        buf.zeroed(4).copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert!(buf.zeroed(4).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn capacity_is_monotone() {
        let mut buf = ScratchBuffer::new();
        buf.zeroed(128);
        let high = buf.capacity();
        buf.zeroed(16);
        assert!(buf.capacity() >= high);
        assert_eq!(buf.slice(16).len(), 16);
    }
}
