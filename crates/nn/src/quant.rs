//! Symmetric 8-bit quantization in two's-complement form.
//!
//! The paper's victim models store weights as `N_q`-bit signed integers, as
//! in TensorRT (§IV-C): a float weight matrix `W_fp` is re-encoded as
//! `W_q = round(W_fp / Δw)` with `Δw = max(|W_fp|) / (2^{N_q−1} − 1)`.
//! Weights live in memory in two's-complement bytes — exactly the bytes the
//! Rowhammer attack flips. This module implements the codec, bit-level
//! editing of quantized weights, and the *bit reduction* operation
//! `Floor(θ ⊕ θ*) ⊕ θ` from Algorithm 1, Step 4.

use crate::error::{NnError, Result};
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Number of quantization bits used throughout the reproduction (the paper
/// evaluates 8-bit models).
pub const QUANT_BITS: u32 = 8;

/// Per-tensor symmetric quantization parameters.
///
/// The scale is frozen when the victim model is "deployed": the attacker's
/// weight perturbations are expressed in the same fixed grid, mirroring the
/// paper's setting where the weight file bytes change but the dequantization
/// scale shipped with the model does not.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantScheme {
    /// Dequantization step Δw; `w_fp ≈ w_q * scale`.
    pub scale: f32,
}

impl QuantScheme {
    /// Derives the scheme from the maximum absolute weight of a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Quantization`] if the tensor is all zeros or
    /// contains non-finite values, since no meaningful scale exists.
    pub fn fit(weights: &Tensor) -> Result<Self> {
        let max = weights.max_abs();
        if !max.is_finite() {
            return Err(NnError::Quantization(
                "non-finite weight encountered while fitting scale".into(),
            ));
        }
        if max == 0.0 {
            return Err(NnError::Quantization(
                "cannot fit quantization scale to an all-zero tensor".into(),
            ));
        }
        Ok(QuantScheme {
            scale: max / (i8::MAX as f32),
        })
    }

    /// Quantizes a float to the nearest representable i8 step.
    pub fn quantize(&self, v: f32) -> i8 {
        let q = (v / self.scale).round();
        q.clamp(i8::MIN as f32, i8::MAX as f32) as i8
    }

    /// Dequantizes an i8 step back to float.
    pub fn dequantize(&self, q: i8) -> f32 {
        q as f32 * self.scale
    }

    /// Fake-quantizes a float: quantize then dequantize.
    ///
    /// Used in the forward pass of deployed models so that every effective
    /// weight is exactly representable in the weight file.
    pub fn fake(&self, v: f32) -> f32 {
        self.dequantize(self.quantize(v))
    }

    /// Fits a symmetric scheme to an activation slice — the *dynamic*
    /// per-tensor activation quantization of the int8 inference engine.
    ///
    /// Unlike [`QuantScheme::fit`], this never fails: an all-zero (or
    /// degenerate) activation tensor gets the same unit-range fallback
    /// scale that [`crate::param::Parameter::deploy`] uses, because a
    /// forward pass must always be able to proceed.
    pub fn for_activations(data: &[f32]) -> Self {
        let max = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if max.is_finite() && max > 0.0 {
            max / (i8::MAX as f32)
        } else {
            1.0 / i8::MAX as f32
        };
        QuantScheme { scale }
    }

    /// Quantizes a slice into a pre-sized `i8` destination.
    ///
    /// On AVX2 hosts the bulk of the slice goes through a vectorized
    /// path that is **bit-identical** to the scalar [`quantize`]
    /// (IEEE division is exact in SIMD, and round-half-away-from-zero
    /// is emulated exactly — see `quantize_avx2`); elsewhere, and for
    /// the tail, the scalar loop runs. The per-element division here
    /// used to be a top-three cost of the whole int8 conv forward.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    pub fn quantize_into(&self, src: &[f32], dst: &mut [i8]) {
        assert_eq!(src.len(), dst.len(), "quantize_into length mismatch");
        let mut done = 0;
        #[cfg(target_arch = "x86_64")]
        if src.len() >= 32 && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified.
            done = unsafe { quantize_avx2(self.scale, src, dst) };
        }
        for (d, &v) in dst[done..].iter_mut().zip(&src[done..]) {
            *d = self.quantize(v);
        }
    }
}

/// AVX2 bulk quantization, bit-identical to [`QuantScheme::quantize`]:
/// processes `src` in blocks of 32 and returns how many elements were
/// written (the caller finishes the tail with the scalar loop).
///
/// Exactness argument, lane by lane:
/// * `x = v / scale` uses `vdivps`, which is correctly rounded IEEE
///   division — the same bits as the scalar `/`.
/// * `f32::round` rounds half *away from zero*, but `vcvtps2dq` rounds
///   half to even. The fix: convert, take `d = x − round_even(x)`
///   (exact — both operands are below 2⁹ after the pre-clamp, so the
///   cancellation loses no bits), and when `d == ±0.5` with the sign of
///   `x`, the even-rounding went toward zero where `round` would have
///   gone away — add `±1`. All other values agree.
/// * The pre-clamp to `[-129, 128]` only moves values whose final
///   clamped result is saturated anyway, and keeps `vcvtps2dq` in exact
///   range; the post-clamp to `[-128, 127]` mirrors the scalar `clamp`.
/// * NaN lanes are forced to 0, matching `NaN.clamp(..) as i8 == 0`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_avx2(scale: f32, src: &[f32], dst: &mut [i8]) -> usize {
    use std::arch::x86_64::*;
    let scale_v = _mm256_set1_ps(scale);
    let sign_mask = _mm256_set1_ps(-0.0);
    let half = _mm256_set1_ps(0.5);
    let one = _mm256_set1_ps(1.0);
    let pre_lo = _mm256_set1_ps(-129.0);
    let pre_hi = _mm256_set1_ps(128.0);
    let lo = _mm256_set1_ps(i8::MIN as f32);
    let hi = _mm256_set1_ps(i8::MAX as f32);
    // Restores value order after the lane-interleaving packs below.
    let unshuffle = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
    let blocks = src.len() / 32;
    // Rounds one lane-octet; returns exact integers as i32 lanes.
    let round8 = |v: __m256| -> __m256i {
        let x = _mm256_div_ps(v, scale_v);
        let nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x);
        let xc = _mm256_max_ps(_mm256_min_ps(x, pre_hi), pre_lo);
        let ri = _mm256_cvtps_epi32(xc);
        let rf = _mm256_cvtepi32_ps(ri);
        let d = _mm256_sub_ps(xc, rf);
        let sign = _mm256_and_ps(xc, sign_mask);
        let tie_away = _mm256_cmp_ps::<_CMP_EQ_OQ>(d, _mm256_or_ps(half, sign));
        let fixed = _mm256_add_ps(rf, _mm256_and_ps(tie_away, _mm256_or_ps(one, sign)));
        let clamped = _mm256_max_ps(_mm256_min_ps(fixed, hi), lo);
        _mm256_andnot_si256(_mm256_castps_si256(nan), _mm256_cvtps_epi32(clamped))
    };
    for blk in 0..blocks {
        let p = src.as_ptr().add(blk * 32);
        let r0 = round8(_mm256_loadu_ps(p));
        let r1 = round8(_mm256_loadu_ps(p.add(8)));
        let r2 = round8(_mm256_loadu_ps(p.add(16)));
        let r3 = round8(_mm256_loadu_ps(p.add(24)));
        // i32 → i16 → i8 saturating packs (values already in range),
        // then undo the within-lane interleave.
        let p01 = _mm256_packs_epi32(r0, r1);
        let p23 = _mm256_packs_epi32(r2, r3);
        let bytes = _mm256_packs_epi16(p01, p23);
        let ordered = _mm256_permutevar8x32_epi32(bytes, unshuffle);
        _mm256_storeu_si256(dst.as_mut_ptr().add(blk * 32).cast(), ordered);
    }
    blocks * 32
}

/// A tensor stored as quantized `i8` steps plus its [`QuantScheme`].
///
/// This is the in-memory image of one parameter tensor inside the victim's
/// weight file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedTensor {
    dims: Vec<usize>,
    values: Vec<i8>,
    scheme: QuantScheme,
}

impl QuantizedTensor {
    /// Quantizes a float tensor with a freshly fitted scheme.
    ///
    /// # Errors
    ///
    /// Propagates [`QuantScheme::fit`] errors.
    pub fn from_tensor(t: &Tensor) -> Result<Self> {
        let scheme = QuantScheme::fit(t)?;
        Ok(Self::with_scheme(t, scheme))
    }

    /// Quantizes a float tensor under an existing scheme.
    pub fn with_scheme(t: &Tensor, scheme: QuantScheme) -> Self {
        QuantizedTensor {
            dims: t.shape().dims().to_vec(),
            values: t.data().iter().map(|&v| scheme.quantize(v)).collect(),
            scheme,
        }
    }

    /// Wraps raw quantized steps without any float round trip — the
    /// decode path for weight-file bytes, whose steps are already
    /// authoritative.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `dims` does not describe
    /// exactly `values.len()` elements.
    pub fn from_raw_steps(dims: &[usize], values: Vec<i8>, scheme: QuantScheme) -> Result<Self> {
        let numel: usize = dims.iter().product();
        if numel != values.len() {
            return Err(NnError::ShapeMismatch {
                expected: vec![numel],
                actual: vec![values.len()],
                op: "quantized tensor from raw steps",
            });
        }
        Ok(QuantizedTensor {
            dims: dims.to_vec(),
            values,
            scheme,
        })
    }

    /// The quantization scheme.
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// The quantized steps.
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// Mutable access to the quantized steps (the attack edits these).
    pub fn values_mut(&mut self) -> &mut [i8] {
        &mut self.values
    }

    /// Tensor dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of weights.
    pub fn numel(&self) -> usize {
        self.values.len()
    }

    /// Dequantizes back to a float tensor.
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(
            self.values
                .iter()
                .map(|&q| self.scheme.dequantize(q))
                .collect(),
            &self.dims,
        )
    }

    /// Raw two's-complement bytes as they would appear in the weight file.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.values.iter().map(|&v| v as u8).collect()
    }

    /// Flips bit `bit` (0 = LSB … 7 = MSB) of weight `index`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::IndexOutOfRange`] for a bad weight index and
    /// [`NnError::Quantization`] for a bit outside 0..8.
    pub fn flip_bit(&mut self, index: usize, bit: u8) -> Result<()> {
        if index >= self.values.len() {
            return Err(NnError::IndexOutOfRange {
                index,
                len: self.values.len(),
                what: "quantized weights",
            });
        }
        if u32::from(bit) >= QUANT_BITS {
            return Err(NnError::Quantization(format!(
                "bit {bit} outside the {QUANT_BITS}-bit weight"
            )));
        }
        self.values[index] = (self.values[index] as u8 ^ (1u8 << bit)) as i8;
        Ok(())
    }

    /// Hamming distance to another quantized tensor of the same length.
    ///
    /// This is the per-tensor contribution to the paper's `N_flip` metric.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the lengths differ.
    pub fn hamming_distance(&self, other: &QuantizedTensor) -> Result<u64> {
        if self.values.len() != other.values.len() {
            return Err(NnError::ShapeMismatch {
                expected: vec![self.values.len()],
                actual: vec![other.values.len()],
                op: "quantized tensor hamming distance",
            });
        }
        Ok(self
            .values
            .iter()
            .zip(&other.values)
            .map(|(&a, &b)| ((a as u8) ^ (b as u8)).count_ones() as u64)
            .sum())
    }
}

/// Keeps only the most significant set bit of `x` (the paper's `Floor`).
///
/// `Floor(0b0111) == 0b0100`; `Floor(0) == 0`.
pub fn floor_msb(x: u8) -> u8 {
    if x == 0 {
        0
    } else {
        1u8 << (7 - x.leading_zeros() as u8)
    }
}

/// Bit reduction from Algorithm 1, Step 4: reduce a modified weight `theta_star`
/// so it differs from the original `theta` in exactly one bit — the most
/// significant differing bit — preserving the change's direction and as much
/// of its magnitude as possible.
///
/// Returns `theta` unchanged when the two are equal.
///
/// # Example
///
/// ```
/// use rhb_nn::quant::bit_reduce;
/// // θ = 1101₂, θ* = 1010₂ → xor = 0111₂ → Floor = 0100₂ → θ ⊕ 0100₂ = 1001₂
/// assert_eq!(bit_reduce(0b1101u8 as i8, 0b1010u8 as i8), 0b1001u8 as i8);
/// ```
pub fn bit_reduce(theta: i8, theta_star: i8) -> i8 {
    let diff = (theta as u8) ^ (theta_star as u8);
    ((theta as u8) ^ floor_msb(diff)) as i8
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fit_rejects_zero_tensor() {
        let t = Tensor::zeros(&[4]);
        assert!(QuantScheme::fit(&t).is_err());
    }

    #[test]
    fn max_weight_maps_to_127() {
        let t = Tensor::from_vec(vec![0.5, -0.25, 1.0], &[3]);
        let q = QuantizedTensor::from_tensor(&t).unwrap();
        assert_eq!(q.values(), &[64, -32, 127]);
    }

    #[test]
    fn round_trip_error_is_bounded_by_half_step() {
        let t = Tensor::from_vec(vec![0.31, -0.77, 0.05, 0.999], &[4]);
        let q = QuantizedTensor::from_tensor(&t).unwrap();
        let back = q.to_tensor();
        let half_step = q.scheme().scale / 2.0;
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() <= half_step + 1e-6);
        }
    }

    #[test]
    fn flip_bit_msb_changes_sign_region() {
        let t = Tensor::from_vec(vec![1.0, 0.5], &[2]);
        let mut q = QuantizedTensor::from_tensor(&t).unwrap();
        // 127 = 0b0111_1111; flipping the MSB gives -1 in two's complement.
        q.flip_bit(0, 7).unwrap();
        assert_eq!(q.values()[0], -1);
    }

    #[test]
    fn flip_bit_rejects_bad_indices() {
        let t = Tensor::from_vec(vec![1.0], &[1]);
        let mut q = QuantizedTensor::from_tensor(&t).unwrap();
        assert!(q.flip_bit(5, 0).is_err());
        assert!(q.flip_bit(0, 8).is_err());
    }

    #[test]
    fn floor_msb_examples() {
        assert_eq!(floor_msb(0), 0);
        assert_eq!(floor_msb(0b0111), 0b0100);
        assert_eq!(floor_msb(0b1000_0001), 0b1000_0000);
        assert_eq!(floor_msb(1), 1);
    }

    #[test]
    fn bit_reduce_paper_example() {
        // Worked example from §IV-A3 Step 4 of the paper.
        let theta = 0b1101u8 as i8;
        let theta_star = 0b1010u8 as i8;
        assert_eq!(bit_reduce(theta, theta_star) as u8, 0b1001);
    }

    #[test]
    fn hamming_distance_counts_bits() {
        let a = QuantizedTensor::from_tensor(&Tensor::from_vec(vec![1.0, 0.5], &[2])).unwrap();
        let mut b = a.clone();
        b.flip_bit(0, 0).unwrap();
        b.flip_bit(1, 3).unwrap();
        b.flip_bit(1, 5).unwrap();
        assert_eq!(a.hamming_distance(&b).unwrap(), 3);
    }

    #[test]
    fn hamming_distance_length_mismatch_is_an_error_not_a_panic() {
        let a = QuantizedTensor::from_tensor(&Tensor::from_vec(vec![1.0, 0.5], &[2])).unwrap();
        let b = QuantizedTensor::from_tensor(&Tensor::from_vec(vec![1.0], &[1])).unwrap();
        let err = a.hamming_distance(&b).unwrap_err();
        assert!(matches!(err, NnError::ShapeMismatch { op, .. } if op.contains("hamming")));
    }

    #[test]
    fn from_raw_steps_preserves_bytes_and_checks_shape() {
        let scheme = QuantScheme { scale: 0.5 };
        let q = QuantizedTensor::from_raw_steps(&[2, 2], vec![1, -2, 127, -128], scheme).unwrap();
        assert_eq!(q.values(), &[1, -2, 127, -128]);
        assert_eq!(q.dims(), &[2, 2]);
        assert_eq!(q.scheme(), scheme);
        assert!(QuantizedTensor::from_raw_steps(&[3], vec![0, 0], scheme).is_err());
    }

    #[test]
    fn for_activations_falls_back_on_degenerate_input() {
        let s = QuantScheme::for_activations(&[0.0, 0.0]);
        assert_eq!(s.scale, 1.0 / 127.0);
        let s = QuantScheme::for_activations(&[1.0, -2.0, 0.5]);
        assert_eq!(s.scale, 2.0 / 127.0);
    }

    proptest! {
        #[test]
        fn bit_reduce_is_within_one_bit(theta: i8, theta_star: i8) {
            let reduced = bit_reduce(theta, theta_star);
            let dist = ((theta as u8) ^ (reduced as u8)).count_ones();
            prop_assert!(dist <= 1);
            // Identity exactly when nothing changed.
            prop_assert_eq!(dist == 0, theta == theta_star);
        }

        #[test]
        fn bit_reduce_touches_only_the_msb_difference(theta: i8, theta_star: i8) {
            prop_assume!(theta != theta_star);
            let reduced = bit_reduce(theta, theta_star);
            let applied = (theta as u8) ^ (reduced as u8);
            let expected = floor_msb((theta as u8) ^ (theta_star as u8));
            prop_assert_eq!(applied, expected);
        }

        #[test]
        fn quantize_dequantize_round_trip(v in -10.0f32..10.0) {
            let scheme = QuantScheme { scale: 10.0 / 127.0 };
            let q = scheme.quantize(v);
            let back = scheme.dequantize(q);
            prop_assert!((v - back).abs() <= scheme.scale / 2.0 + 1e-6);
        }

        #[test]
        fn fake_quant_is_idempotent(v in -1.0f32..1.0) {
            let scheme = QuantScheme { scale: 1.0 / 127.0 };
            let once = scheme.fake(v);
            let twice = scheme.fake(once);
            prop_assert_eq!(once, twice);
        }

        /// Grid recovery: re-quantizing a dequantized step returns the
        /// exact step. This is what lets the int8 engine rebuild the
        /// weight-file bytes from deployed (grid-snapped) f32 masters
        /// without materializing f32 weight matrices per layer.
        #[test]
        fn quantize_recovers_grid_steps_exactly(q: i8, scale in 1e-20f32..1e20) {
            let scheme = QuantScheme { scale };
            prop_assert_eq!(scheme.quantize(scheme.dequantize(q)), q);
        }
    }
}

/// Bit reduction restricted to an allowed-bit mask: keeps the most
/// significant differing bit that is *also* in `allowed`, for adaptive
/// attacks that must avoid defended bit positions (e.g. RADAR checksums
/// over weight MSBs — paper §VI-B).
///
/// Returns `theta` unchanged when no allowed bit differs.
pub fn bit_reduce_masked(theta: i8, theta_star: i8, allowed: u8) -> i8 {
    let diff = ((theta as u8) ^ (theta_star as u8)) & allowed;
    ((theta as u8) ^ floor_msb(diff)) as i8
}

#[cfg(test)]
mod masked_tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn full_mask_matches_plain_reduction() {
        for (a, b) in [(3i8, -7i8), (100, 2), (-128, 127)] {
            assert_eq!(bit_reduce_masked(a, b, 0xFF), bit_reduce(a, b));
        }
    }

    #[test]
    fn msb_avoiding_mask_never_touches_bit7() {
        // 0x7F allows bits 0..6 only. A difference confined to bit 7 is
        // untouchable, so the weight stays unchanged.
        let reduced = bit_reduce_masked(0b0000_0001u8 as i8, 0b1000_0001u8 as i8, 0x7F);
        assert_eq!(reduced, 0b0000_0001u8 as i8, "no allowed bit differs");
        // With bits 7 and 6 differing, only bit 6 is eligible.
        let reduced = bit_reduce_masked(0b0000_0001u8 as i8, 0b1100_0000u8 as i8, 0x7F);
        assert_eq!(reduced as u8, 0b0100_0001);
    }

    proptest! {
        #[test]
        fn masked_reduction_stays_within_mask(theta: i8, theta_star: i8, allowed: u8) {
            let reduced = bit_reduce_masked(theta, theta_star, allowed);
            let applied = (theta as u8) ^ (reduced as u8);
            prop_assert_eq!(applied & !allowed, 0, "flip escaped the mask");
            prop_assert!(applied.count_ones() <= 1);
        }
    }
}
