//! Tensor shapes and row-major index arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a dense, row-major tensor.
///
/// A `Shape` is an immutable list of dimension sizes. Rank-0 (scalar) shapes
/// are allowed and have `numel() == 1`.
///
/// # Example
///
/// ```
/// use rhb_nn::shape::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `idx` has the wrong rank or any coordinate
    /// is out of range.
    pub fn flat_index(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.dims.len(), "index rank mismatch");
        let mut flat = 0;
        let mut stride = 1;
        for i in (0..self.dims.len()).rev() {
            debug_assert!(idx[i] < self.dims[i], "index out of range");
            flat += idx[i] * stride;
            stride *= self.dims[i];
        }
        flat
    }

    /// Whether two shapes can be used in an elementwise binary op.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_scalar_is_one() {
        assert_eq!(Shape::new(&[]).numel(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.strides(), vec![6, 2, 1]);
    }

    #[test]
    fn flat_index_round_trips_strides() {
        let s = Shape::new(&[2, 3, 4]);
        let strides = s.strides();
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..4 {
                    let by_strides = a * strides[0] + b * strides[1] + c * strides[2];
                    assert_eq!(s.flat_index(&[a, b, c]), by_strides);
                }
            }
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Shape::new(&[1, 3, 32, 32]).to_string(), "[1x3x32x32]");
    }

    #[test]
    fn zero_dim_yields_zero_numel() {
        assert_eq!(Shape::new(&[5, 0, 2]).numel(), 0);
    }
}
