//! DeepDyve dynamic verification (paper §VI-B).
//!
//! DeepDyve pairs the served model with a small checker model. When the
//! two disagree on an input, the inference is repeated on the original
//! model and that second answer is accepted — sound against *transient*
//! faults, which have vanished by the re-run. Rowhammer flips are
//! persistent: the re-run consults the same corrupted weights, so the
//! backdoored answer stands even when the checker raises an alarm.

use parking_lot::Mutex;
use rhb_nn::layer::Mode;
use rhb_nn::network::Network;
use rhb_nn::tensor::Tensor;

/// Statistics from a batch of dynamically verified inferences.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DyveStats {
    /// Inputs classified.
    pub total: usize,
    /// Checker disagreements (alarms raised).
    pub alarms: usize,
    /// Alarmed inputs whose re-run answer *differed* from the first run —
    /// the only case where verification changed anything. Zero under a
    /// persistent-fault attack.
    pub corrected: usize,
}

/// A served model guarded by a checker.
///
/// Wrapped in mutexes so a service can verify concurrently arriving
/// requests; the guard serializes each model's stateful forward pass.
pub struct DeepDyve {
    main: Mutex<Box<dyn Network>>,
    checker: Mutex<Box<dyn Network>>,
}

impl std::fmt::Debug for DeepDyve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DeepDyve(main + checker)")
    }
}

impl DeepDyve {
    /// Pairs a served model with its checker.
    pub fn new(main: Box<dyn Network>, checker: Box<dyn Network>) -> Self {
        DeepDyve {
            main: Mutex::new(main),
            checker: Mutex::new(checker),
        }
    }

    /// Classifies one `[1, C, H, W]` input under dynamic verification,
    /// returning the accepted label and updating `stats`.
    pub fn classify(&self, input: &Tensor, stats: &mut DyveStats) -> usize {
        let first = argmax_label(&mut **self.main.lock(), input);
        let check = argmax_label(&mut **self.checker.lock(), input);
        stats.total += 1;
        if first == check {
            return first;
        }
        stats.alarms += 1;
        // Alarm: repeat the inference on the original model and accept it.
        let second = argmax_label(&mut **self.main.lock(), input);
        if second != first {
            stats.corrected += 1;
        }
        second
    }

    /// Classifies a batch one input at a time (the verification protocol is
    /// inherently per-query).
    pub fn classify_batch(&self, batch: &Tensor, stats: &mut DyveStats) -> Vec<usize> {
        let dims = batch.shape().dims();
        let image_len: usize = dims[1..].iter().product();
        (0..dims[0])
            .map(|b| {
                let img = Tensor::from_vec(
                    batch.data()[b * image_len..(b + 1) * image_len].to_vec(),
                    &[1, dims[1], dims[2], dims[3]],
                );
                self.classify(&img, stats)
            })
            .collect()
    }

    /// Releases the wrapped models.
    pub fn into_inner(self) -> (Box<dyn Network>, Box<dyn Network>) {
        (self.main.into_inner(), self.checker.into_inner())
    }
}

fn argmax_label(net: &mut dyn Network, input: &Tensor) -> usize {
    let logits = net.forward(input, Mode::Eval);
    logits.argmax() % logits.shape().dim(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhb_models::zoo::{pretrained, Architecture, ZooConfig};

    fn two_models() -> (
        Box<dyn Network>,
        Box<dyn Network>,
        rhb_models::data::Dataset,
    ) {
        let cfg = ZooConfig::tiny();
        let a = pretrained(Architecture::ResNet20, &cfg, 7);
        // The checker must learn the *same task*: same zoo seed (hence the
        // same dataset), different architecture.
        let b = pretrained(Architecture::ResNet32, &cfg, 7);
        (a.net, b.net, a.test_data)
    }

    #[test]
    fn agreeing_models_raise_few_alarms_on_clean_data() {
        let (main, checker, data) = two_models();
        let dyve = DeepDyve::new(main, checker);
        let (batch, _) = data.head(24);
        let mut stats = DyveStats::default();
        dyve.classify_batch(&batch, &mut stats);
        assert_eq!(stats.total, 24);
        // Both models are decent on clean data, so most inputs agree.
        assert!(stats.alarms < 20, "alarms {} of 24", stats.alarms);
    }

    #[test]
    fn persistent_fault_is_never_corrected() {
        let (main, checker, data) = two_models();
        let dyve = DeepDyve::new(main, checker);
        let (batch, _) = data.head(32);
        let mut stats = DyveStats::default();
        dyve.classify_batch(&batch, &mut stats);
        // The re-run consults the same weights; deterministic inference
        // means the "verified" answer always equals the first answer.
        assert_eq!(stats.corrected, 0);
    }

    #[test]
    fn classify_returns_main_model_answer() {
        let (main, checker, data) = two_models();
        let cfg = ZooConfig::tiny();
        let mut reference = pretrained(Architecture::ResNet20, &cfg, 7);
        let dyve = DeepDyve::new(main, checker);
        let (batch, _) = data.head(8);
        let mut stats = DyveStats::default();
        let answers = dyve.classify_batch(&batch, &mut stats);
        let logits = reference.net.forward(&batch, Mode::Eval);
        let classes = logits.shape().dim(1);
        for (b, &a) in answers.iter().enumerate() {
            let row = &logits.data()[b * classes..(b + 1) * classes];
            let mut best = 0;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            assert_eq!(a, best, "input {b}");
        }
    }
}
