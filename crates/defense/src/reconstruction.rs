//! Weight reconstruction recovery (paper §VI-C).
//!
//! Li et al.'s defense exploits weight redundancy: alongside the model it
//! keeps a compact reference encoding from which the high-order content of
//! every weight can be re-derived; after (suspected) corruption each
//! weight is reconstructed toward that reference, redistributing a large
//! corrupted weight's effect instead of letting it dominate. Modeled here
//! as a per-weight reference of the top `protected_bits` two's-complement
//! bits: reconstruction forces those bits back, keeping the low bits. An
//! MSB flip (the unaware attack's favorite, it carries the most magnitude)
//! is repaired, which is why the paper sees ASR fall from ~91 % to ~33 %.
//!
//! The bypass: an attacker *aware* of the defense confines bit reduction
//! to the unprotected low bits
//! ([`WeightReconstruction::aware_attacker_mask`]) and sails straight
//! through — the paper recovers 94 % ASR.

use rhb_nn::network::Network;
use rhb_nn::quant::QuantizedTensor;

/// Reference encoding captured at deployment.
#[derive(Debug, Clone)]
pub struct WeightReconstruction {
    /// Top-bits reference per parameter tensor.
    references: Vec<Vec<u8>>,
    /// How many high-order bits of each weight the encoding can restore.
    pub protected_bits: u8,
}

impl WeightReconstruction {
    /// Captures the reference encoding of a clean deployed model.
    ///
    /// # Panics
    ///
    /// Panics if `protected_bits` is outside 1..=8 or the network is not
    /// deployed.
    pub fn deploy(net: &dyn Network, protected_bits: u8) -> Self {
        assert!((1..=8).contains(&protected_bits), "protected_bits in 1..=8");
        let shift = 8 - protected_bits;
        let references = net
            .quantized_params()
            .iter()
            .map(|q| q.values().iter().map(|&v| (v as u8) >> shift).collect())
            .collect();
        WeightReconstruction {
            references,
            protected_bits,
        }
    }

    /// Reconstructs a (possibly corrupted) model in place, returning how
    /// many weights had their protected bits restored.
    ///
    /// # Panics
    ///
    /// Panics if the model's parameter structure changed since deployment.
    pub fn reconstruct(&self, net: &mut dyn Network) -> usize {
        let shift = 8 - self.protected_bits;
        let low_mask = if shift == 0 {
            0u8
        } else {
            0xFFu8 >> self.protected_bits
        };
        let mut images: Vec<QuantizedTensor> = net.quantized_params();
        assert_eq!(
            images.len(),
            self.references.len(),
            "parameter count changed"
        );
        let mut repaired = 0usize;
        for (img, reference) in images.iter_mut().zip(&self.references) {
            for (v, &r) in img.values_mut().iter_mut().zip(reference) {
                let current = *v as u8;
                let restored = (r << shift) | (current & low_mask);
                if restored != current {
                    *v = restored as i8;
                    repaired += 1;
                }
            }
        }
        net.load_quantized(&images);
        repaired
    }

    /// The bit mask an *aware* attacker passes to
    /// `CftConfig::allowed_bits` so every single-bit change lands in the
    /// unprotected low bits and survives reconstruction.
    pub fn aware_attacker_mask(&self) -> u8 {
        if self.protected_bits >= 8 {
            0
        } else {
            0xFFu8 >> self.protected_bits
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhb_models::zoo::{pretrained, Architecture, ZooConfig};

    #[test]
    fn clean_model_needs_no_repair() {
        let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 14);
        let rec = WeightReconstruction::deploy(model.net.as_ref(), 2);
        assert_eq!(rec.reconstruct(model.net.as_mut()), 0);
    }

    #[test]
    fn msb_flip_is_repaired_exactly() {
        let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 14);
        let rec = WeightReconstruction::deploy(model.net.as_ref(), 2);
        let clean = model.net.quantized_params();
        let mut images = model.net.quantized_params();
        images[0].flip_bit(0, 7).unwrap();
        model.net.load_quantized(&images);
        let repaired = rec.reconstruct(model.net.as_mut());
        assert_eq!(repaired, 1);
        let after = model.net.quantized_params();
        assert_eq!(clean[0].values()[0], after[0].values()[0]);
    }

    #[test]
    fn low_bit_flip_survives_reconstruction() {
        let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 14);
        let rec = WeightReconstruction::deploy(model.net.as_ref(), 2);
        let mut images = model.net.quantized_params();
        images[0].flip_bit(0, 4).unwrap(); // within the unprotected low bits
        let tampered = images[0].values()[0];
        model.net.load_quantized(&images);
        assert_eq!(rec.reconstruct(model.net.as_mut()), 0);
        assert_eq!(model.net.quantized_params()[0].values()[0], tampered);
    }

    #[test]
    fn aware_mask_matches_protection_level() {
        let model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 14);
        let rec = WeightReconstruction::deploy(model.net.as_ref(), 2);
        assert_eq!(rec.aware_attacker_mask(), 0b0011_1111);
        let full = WeightReconstruction::deploy(model.net.as_ref(), 8);
        assert_eq!(full.aware_attacker_mask(), 0);
    }

    #[test]
    fn reconstruction_repairs_many_random_msb_flips() {
        let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 15);
        let rec = WeightReconstruction::deploy(model.net.as_ref(), 1);
        let clean = model.net.quantized_params();
        let mut images = model.net.quantized_params();
        for i in (0..images[0].numel()).step_by(37) {
            images[0].flip_bit(i, 7).unwrap();
        }
        model.net.load_quantized(&images);
        rec.reconstruct(model.net.as_mut());
        let after = model.net.quantized_params();
        assert_eq!(clean[0].hamming_distance(&after[0]).unwrap(), 0);
    }
}
