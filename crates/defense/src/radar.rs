//! RADAR: checksum-based run-time weight-attack detection (paper §VI-B).
//!
//! RADAR groups the weights and stores a checksum of the most significant
//! bits of each group, verified at every inference. Vanilla CFT+BR flips
//! MSBs (they carry the most magnitude) and is caught; the paper's
//! response is the *adaptive* attack: constrain bit reduction to avoid
//! the protected bit positions, which bypasses the checksums entirely.
//! Full-width protection is possible but costs up to 40.11 % inference
//! time on ResNet-20.

use rhb_nn::network::Network;
use serde::{Deserialize, Serialize};

/// A deployed RADAR detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Radar {
    /// Weights per checksum group.
    pub group_size: usize,
    /// How many of the top bits of each weight are checksummed (the paper
    /// uses the MSBs; `protected_bits = 8` is full-width protection).
    pub protected_bits: u8,
    checksums: Vec<u64>,
}

impl Radar {
    /// Snapshots checksums of a deployed network.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero, `protected_bits` is outside 1..=8,
    /// or the network is not deployed.
    pub fn deploy(net: &dyn Network, group_size: usize, protected_bits: u8) -> Self {
        assert!(group_size > 0, "group size must be positive");
        assert!((1..=8).contains(&protected_bits), "protected_bits in 1..=8");
        let checksums = Self::compute(net, group_size, protected_bits);
        Radar {
            group_size,
            protected_bits,
            checksums,
        }
    }

    fn compute(net: &dyn Network, group_size: usize, protected_bits: u8) -> Vec<u64> {
        let mask = 0xFFu8 << (8 - protected_bits);
        let mut sums = Vec::new();
        let mut acc = 0u64;
        let mut count = 0usize;
        for q in net.quantized_params() {
            for &v in q.values() {
                acc = acc.rotate_left(7).wrapping_add(u64::from(v as u8 & mask));
                count += 1;
                if count == group_size {
                    sums.push(acc);
                    acc = 0;
                    count = 0;
                }
            }
        }
        if count > 0 {
            sums.push(acc);
        }
        sums
    }

    /// Verifies the network; `true` means an attack was detected.
    pub fn detect(&self, net: &dyn Network) -> bool {
        Self::compute(net, self.group_size, self.protected_bits) != self.checksums
    }

    /// The bitmask of weight-bit positions an adaptive attacker may flip
    /// without disturbing these checksums (for
    /// [`rhb_core::cft::CftConfig::allowed_bits`]).
    ///
    /// [`rhb_core::cft::CftConfig::allowed_bits`]: rhb_core::cft::CftConfig
    pub fn unprotected_mask(&self) -> u8 {
        if self.protected_bits >= 8 {
            0
        } else {
            0xFFu8 >> self.protected_bits
        }
    }

    /// Inference-time overhead of checking, linear in the protected bit
    /// fraction; the paper reports 40.11 % for full-width protection of
    /// ResNet-20.
    pub fn time_overhead_percent(&self) -> f64 {
        40.11 * f64::from(self.protected_bits) / 8.0
    }

    /// Number of checksum groups stored.
    pub fn num_groups(&self) -> usize {
        self.checksums.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhb_models::zoo::{pretrained, Architecture, ZooConfig};
    use rhb_nn::quant::bit_reduce_masked;

    #[test]
    fn clean_model_passes() {
        let model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 6);
        let radar = Radar::deploy(model.net.as_ref(), 64, 1);
        assert!(!radar.detect(model.net.as_ref()));
    }

    #[test]
    fn msb_flip_is_detected() {
        let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 6);
        let radar = Radar::deploy(model.net.as_ref(), 64, 1);
        let mut images = model.net.quantized_params();
        images[0].flip_bit(3, 7).unwrap();
        model.net.load_quantized(&images);
        assert!(radar.detect(model.net.as_ref()));
    }

    #[test]
    fn low_bit_flip_evades_msb_checksums() {
        let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 6);
        let radar = Radar::deploy(model.net.as_ref(), 64, 1);
        let mut images = model.net.quantized_params();
        images[0].flip_bit(3, 5).unwrap(); // bit 5 < protected MSB
        model.net.load_quantized(&images);
        assert!(!radar.detect(model.net.as_ref()));
    }

    #[test]
    fn full_width_protection_catches_every_bit() {
        let mut model = pretrained(Architecture::ResNet20, &ZooConfig::tiny(), 6);
        let radar = Radar::deploy(model.net.as_ref(), 64, 8);
        assert_eq!(radar.unprotected_mask(), 0);
        let mut images = model.net.quantized_params();
        images[0].flip_bit(0, 0).unwrap();
        model.net.load_quantized(&images);
        assert!(radar.detect(model.net.as_ref()));
        assert!((radar.time_overhead_percent() - 40.11).abs() < 1e-9);
    }

    #[test]
    fn adaptive_mask_composes_with_bit_reduction() {
        // An adaptive attacker reduces within the unprotected mask; the
        // resulting single-bit change never touches a protected bit.
        let radar_mask = Radar {
            group_size: 64,
            protected_bits: 2,
            checksums: Vec::new(),
        }
        .unprotected_mask();
        assert_eq!(radar_mask, 0b0011_1111);
        let reduced = bit_reduce_masked(0b0000_0000u8 as i8, 0b1110_0000u8 as i8, radar_mask);
        assert_eq!(reduced as u8, 0b0010_0000);
    }
}
